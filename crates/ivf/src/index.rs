//! The inverted-file index structure: centroids + contiguous list panels,
//! plus the in-memory mutable tier (per-list append regions and a deletion
//! tombstone set) behind online inserts/deletes and checkpointed compaction.

use vecstore::{kernels, Error, Result, VectorSet};

/// The mutable tail of one inverted list: vectors inserted since the last
/// build/compaction, stored contiguously so the scan streams them through the
/// same batched one-to-many kernel as the panel.
#[derive(Clone, Debug, Default, PartialEq)]
pub(crate) struct AppendList {
    /// Row-major appended vectors (`ids.len() × d` values).
    pub(crate) flat: Vec<f32>,
    /// External id of each appended row, ascending (ids are assigned
    /// monotonically, so append order is id order).
    pub(crate) ids: Vec<u32>,
}

/// Live-id bitmap over the external id space `0..next_id`: bit set = the id
/// is indexed and not deleted.  The complement view is the deletion tombstone
/// set the scan filters against.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct LiveSet {
    words: Vec<u64>,
    live: usize,
}

impl LiveSet {
    /// All of `0..n` live (a fresh build indexes ids densely).
    pub(crate) fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; n.div_ceil(64)];
        if n % 64 != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        Self { words, live: n }
    }

    /// Exactly the given ids live, over an id space of `capacity` bits.
    /// Returns `None` when an id repeats (a corrupt remap).
    pub(crate) fn from_ids(capacity: usize, ids: &[u32]) -> Option<Self> {
        let mut set = Self {
            words: vec![0u64; capacity.div_ceil(64)],
            live: 0,
        };
        for &id in ids {
            let (w, b) = (id as usize / 64, id as usize % 64);
            if set.words[w] & (1 << b) != 0 {
                return None;
            }
            set.words[w] |= 1 << b;
            set.live += 1;
        }
        Some(set)
    }

    #[inline]
    pub(crate) fn get(&self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Grows the id space to `bits` and marks `id` live.
    fn insert(&mut self, id: u32) {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & (1 << b) == 0 {
            self.words[w] |= 1 << b;
            self.live += 1;
        }
    }

    /// Clears `id`; `true` when it was live.
    fn remove(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        match self.words.get_mut(w) {
            Some(word) if *word & (1 << b) != 0 => {
                *word &= !(1 << b);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of live ids.
    #[inline]
    pub(crate) fn count(&self) -> usize {
        self.live
    }
}

/// A cluster-backed inverted-file ANN index.
///
/// Construction re-orders the base vectors into one contiguous row panel per
/// cluster (ascending original id within a list, so layout is deterministic)
/// together with an id remap, which makes every list scan a straight
/// streaming pass — no gather, no indirection — through the batched
/// one-to-many kernels.
///
/// ```
/// use ivf::{IvfIndex, IvfSearchParams};
/// use vecstore::VectorSet;
///
/// // Four 2-d points in two obvious clusters, plus the fitted centroids.
/// let data = VectorSet::from_rows(vec![
///     vec![0.0, 0.0], vec![9.0, 9.0], vec![0.0, 1.0], vec![9.0, 8.0],
/// ]).unwrap();
/// let centroids = VectorSet::from_rows(vec![vec![0.0, 0.5], vec![9.0, 8.5]]).unwrap();
/// let index = IvfIndex::build(&data, &centroids, &[0, 1, 0, 1]).unwrap();
///
/// let hits = index.search(&[8.8, 8.9], 1, IvfSearchParams::default().nprobe(1));
/// assert_eq!(hits[0].id, 1); // the original id, not the panel position
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct IvfIndex {
    /// `k × d` coarse level: the fitted centroids, row `c` owning list `c`.
    pub(crate) centroids: VectorSet,
    /// `k + 1` prefix offsets: list `c` occupies panel rows
    /// `offsets[c]..offsets[c + 1]`.
    pub(crate) offsets: Vec<usize>,
    /// `n × d` re-ordered base vectors, each list contiguous.
    pub(crate) panel: VectorSet,
    /// Panel row → original base row (`ids[p]` is the id reported for panel
    /// row `p`).
    pub(crate) ids: Vec<u32>,
    /// Mutable tier: one append region per list, holding vectors inserted
    /// since the last build/compaction (empty on a clean index).
    pub(crate) appends: Vec<AppendList>,
    /// Live-id bitmap; its complement over `0..next_id` is the deletion
    /// tombstone set.
    pub(crate) live: LiveSet,
    /// Deletions since the last build/compaction — when zero, the scan skips
    /// the tombstone filter entirely.
    pub(crate) tombstoned: usize,
    /// Next external id to assign (ids are monotone: every appended id is
    /// larger than every id already in the panel).
    pub(crate) next_id: u32,
    /// Sequence number of the last journalled mutation applied to this
    /// in-memory state (persisted at checkpoints so recovery knows where in
    /// the WAL to resume).
    pub(crate) applied_seq: u64,
    /// Optional SQ8 serving tier: per-list `u8` code panels mirroring the
    /// `f32` panel and append regions (`None` until
    /// [`IvfIndex::quantize`] — the `f32` path is always available).
    pub(crate) sq8: Option<crate::sq8::Sq8Panels>,
}

impl IvfIndex {
    /// Builds an index from a clustering result: the base vectors, the fitted
    /// `k × d` centroids and one label per base row (`labels[i] ∈ 0..k`).
    ///
    /// Any of the workspace's fitters produces suitable inputs — e.g. a
    /// `baselines::common::Clustering` via its `centroids`/`labels` fields,
    /// or a GK-means outcome.  Empty clusters are fine (their lists are
    /// empty); `k` need not be smaller than `n`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when data and centroids disagree on `d`;
    /// * [`Error::EmptyInput`] when there are no centroids;
    /// * [`Error::InvalidParameter`] when the label count differs from the
    ///   row count, a label is out of range, or `n` exceeds `u32::MAX`
    ///   (ids are stored as `u32`).
    pub fn build(data: &VectorSet, centroids: &VectorSet, labels: &[usize]) -> Result<Self> {
        if centroids.is_empty() {
            return Err(Error::EmptyInput(
                "IVF index requires at least one centroid",
            ));
        }
        if data.dim() != centroids.dim() {
            return Err(Error::DimensionMismatch {
                expected: centroids.dim(),
                found: data.dim(),
            });
        }
        if labels.len() != data.len() {
            return Err(Error::InvalidParameter(format!(
                "{} labels for {} base rows",
                labels.len(),
                data.len()
            )));
        }
        if data.len() > u32::MAX as usize {
            return Err(Error::InvalidParameter(format!(
                "{} base rows exceed the u32 id space",
                data.len()
            )));
        }
        let k = centroids.len();
        let d = data.dim();

        // Counting sort by label, stable in ascending original id: cluster
        // sizes → prefix offsets → one placement sweep.
        let mut sizes = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            if l >= k {
                return Err(Error::InvalidParameter(format!(
                    "label {l} of row {i} is out of range for k = {k}"
                )));
            }
            sizes[l] += 1;
        }
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        for &s in &sizes {
            offsets.push(offsets.last().expect("non-empty") + s);
        }

        let mut panel_flat = vec![0.0f32; data.len() * d];
        let mut ids = vec![0u32; data.len()];
        let mut cursor = offsets[..k].to_vec();
        for (i, &l) in labels.iter().enumerate() {
            let p = cursor[l];
            cursor[l] += 1;
            panel_flat[p * d..(p + 1) * d].copy_from_slice(data.row(i));
            ids[p] = i as u32;
        }
        let panel = VectorSet::from_flat(panel_flat, d)?;

        Ok(Self {
            centroids: centroids.clone(),
            offsets,
            panel,
            live: LiveSet::full(ids.len()),
            next_id: ids.len() as u32,
            ids,
            appends: vec![AppendList::default(); k],
            tombstoned: 0,
            applied_seq: 0,
            sq8: None,
        })
    }

    /// Number of inverted lists (the clustering's `k`).
    #[inline]
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality of the indexed vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.centroids.dim()
    }

    /// Number of vectors in the contiguous panel (excluding append regions;
    /// see [`IvfIndex::live_len`] for the serving count).
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no vectors are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of vectors in list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    #[inline]
    pub fn list_len(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// The contiguous vector panel and original ids of list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    pub fn list(&self, c: usize) -> (&[f32], &[u32]) {
        let d = self.dim();
        let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
        (&self.panel.as_flat()[lo * d..hi * d], &self.ids[lo..hi])
    }

    /// The append-region vectors and ids of list `c` — rows inserted since
    /// the last build/compaction, contiguous and ascending by id.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    pub fn append_list(&self, c: usize) -> (&[f32], &[u32]) {
        let a = &self.appends[c];
        (&a.flat, &a.ids)
    }

    /// The coarse level: the fitted centroids.
    #[inline]
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// The number of lists a search with the requested `nprobe` actually
    /// probes: the value clamped to `1..=nlist`.  The single source of truth
    /// for the clamp — the scan loop, the evaluation report and the CLI all
    /// derive the effective value from here.
    #[inline]
    pub fn effective_nprobe(&self, requested: usize) -> usize {
        requested.clamp(1, self.nlist())
    }

    // ---- the quantized tier -----------------------------------------------

    /// Fits and attaches the SQ8 serving tier: per-list per-dim min/max
    /// parameters over the list's current rows (panel **and** append
    /// region), plus `u8` code shadows of both.  Idempotent in effect —
    /// re-quantizing re-fits from the same `f32` rows.  The `f32` panel
    /// stays authoritative: quantization adds a tier, it never replaces the
    /// exact path (re-ranking depends on it).
    pub fn quantize(&mut self) {
        let d = self.dim();
        let k = self.nlist();
        let panel = self.panel.as_flat();
        let mut mins = Vec::with_capacity(k * d);
        let mut scales = Vec::with_capacity(k * d);
        let mut codes = Vec::with_capacity(self.ids.len() * d);
        let mut append_codes = Vec::with_capacity(k);
        for c in 0..k {
            let rows = &panel[self.offsets[c] * d..self.offsets[c + 1] * d];
            let tail = self.appends[c].flat.as_slice();
            let (m, s) = crate::sq8::fit_list(&[rows, tail], d);
            for row in rows.chunks_exact(d) {
                crate::sq8::encode_row_into(row, &m, &s, &mut codes);
            }
            let mut shadow = Vec::with_capacity(tail.len());
            for row in tail.chunks_exact(d) {
                crate::sq8::encode_row_into(row, &m, &s, &mut shadow);
            }
            append_codes.push(shadow);
            mins.extend_from_slice(&m);
            scales.extend_from_slice(&s);
        }
        self.sq8 = Some(crate::sq8::Sq8Panels {
            dim: d,
            mins,
            scales,
            codes,
            append_codes,
        });
    }

    /// `true` when the index carries the SQ8 serving tier.
    #[inline]
    pub fn is_quantized(&self) -> bool {
        self.sq8.is_some()
    }

    /// The SQ8 tier, when attached.
    #[inline]
    pub fn sq8(&self) -> Option<&crate::sq8::Sq8Panels> {
        self.sq8.as_ref()
    }

    // ---- the mutable tier -------------------------------------------------

    /// Number of **live** vectors: indexed (panel or append region) and not
    /// tombstoned.  Equals [`IvfIndex::len`] on a clean index.
    #[inline]
    pub fn live_len(&self) -> usize {
        self.live.count()
    }

    /// Vectors sitting in append regions, waiting for the next compaction.
    pub fn pending_appends(&self) -> usize {
        self.appends.iter().map(|a| a.ids.len()).sum()
    }

    /// Deletions recorded since the last build/compaction.
    #[inline]
    pub fn tombstoned(&self) -> usize {
        self.tombstoned
    }

    /// `true` when the index carries un-compacted mutations (non-empty
    /// append regions or tombstones).  A dirty index cannot be saved — it
    /// must be compacted into a clean generation first (the checkpoint
    /// protocol of [`crate::store::MutableStore`]).
    pub fn is_dirty(&self) -> bool {
        self.tombstoned > 0 || self.appends.iter().any(|a| !a.ids.is_empty())
    }

    /// The external id the next [`IvfIndex::insert`] will assign.
    #[inline]
    pub fn next_id(&self) -> u32 {
        self.next_id
    }

    /// Sequence number of the last journalled mutation applied to this
    /// in-memory state.
    #[inline]
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// `true` when external id `id` is indexed and not deleted.
    #[inline]
    pub fn is_live(&self, id: u32) -> bool {
        self.live.get(id)
    }

    /// Inserts `vector`, assigning the next monotone external id and routing
    /// it to the nearest centroid's append region (by `(distance, list id)` —
    /// the same total order as the coarse routing at search time).  Returns
    /// the assigned id.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when `vector.len() != self.dim()`;
    /// * [`Error::InvalidParameter`] when the `u32` id space is exhausted.
    pub fn insert(&mut self, vector: &[f32]) -> Result<u32> {
        let id = self.next_id;
        if id == u32::MAX {
            return Err(Error::InvalidParameter(
                "u32 id space exhausted; compact and re-shard".to_string(),
            ));
        }
        self.apply_insert(id, vector)?;
        Ok(id)
    }

    /// Replay-path insert: applies an insert journalled under a specific
    /// `id`.  The id must be at or above [`IvfIndex::next_id`] (ids are
    /// monotone); `next_id` advances past it.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] on a wrong-length vector;
    /// * [`Error::InvalidParameter`] when `id` is below `next_id` (a replay
    ///   ordering violation) or at `u32::MAX`.
    pub fn apply_insert(&mut self, id: u32, vector: &[f32]) -> Result<()> {
        if vector.len() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                found: vector.len(),
            });
        }
        if id < self.next_id {
            return Err(Error::InvalidParameter(format!(
                "insert id {id} is below the next monotone id {}",
                self.next_id
            )));
        }
        if id == u32::MAX {
            return Err(Error::InvalidParameter(
                "u32 id space exhausted; compact and re-shard".to_string(),
            ));
        }
        // Route to the nearest centroid under the same total order the
        // search-time coarse tile uses (the kernel tiling invariant keeps
        // the one-to-many and many-to-many forms bit-identical).
        let mut dists = vec![0.0f32; self.nlist()];
        kernels::l2_sq_one_to_many(vector, self.centroids.as_flat(), &mut dists);
        let mut best = 0usize;
        for (c, &dist) in dists.iter().enumerate() {
            if dist < dists[best] {
                best = c;
            }
        }
        let list = &mut self.appends[best];
        list.flat.extend_from_slice(vector);
        list.ids.push(id);
        // Shadow the append in the quantized tier under the list's frozen
        // affine map (components outside the fitted range clamp; compaction
        // re-fits from the live f32 set).
        if let Some(sq8) = self.sq8.as_mut() {
            let d = sq8.dim;
            let mins = &sq8.mins[best * d..(best + 1) * d];
            let scales = &sq8.scales[best * d..(best + 1) * d];
            let shadow = &mut sq8.append_codes[best];
            for ((&v, &lo), &s) in vector.iter().zip(mins).zip(scales) {
                shadow.push(crate::sq8::encode_component(v, lo, s));
            }
        }
        self.live.insert(id);
        self.next_id = id + 1;
        Ok(())
    }

    /// Deletes external id `id` by tombstoning it: the scan filters it out
    /// immediately; the next compaction reclaims the space.  Returns `true`
    /// when the id was live (idempotent: a repeat delete returns `false`).
    pub fn delete(&mut self, id: u32) -> bool {
        if self.live.remove(id) {
            self.tombstoned += 1;
            true
        } else {
            false
        }
    }

    /// Rebuilds contiguous per-list panels from the live set, producing a
    /// **clean** next generation: empty append regions, no tombstones, same
    /// centroids, same external ids, same list membership.
    ///
    /// Within each list the surviving panel rows (already ascending by id)
    /// are followed by the surviving appended rows (also ascending, and all
    /// above every panel id because ids are assigned monotonically) — so the
    /// compacted panel is ascending-id per list, exactly the layout
    /// [`IvfIndex::build`] produces.  Search over the compacted index is
    /// bit-identical to a fresh build over the live set (pinned by the
    /// property suite).
    ///
    /// # Errors
    ///
    /// Returns an error only on an internal shape violation (impossible for
    /// an index produced by this crate's own constructors).
    pub fn compact(&self) -> Result<IvfIndex> {
        let d = self.dim();
        let k = self.nlist();
        let n_live = self.live.count();
        let panel = self.panel.as_flat();
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        let mut flat = Vec::with_capacity(n_live * d);
        let mut ids = Vec::with_capacity(n_live);
        for c in 0..k {
            let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
            for p in lo..hi {
                let id = self.ids[p];
                if !self.live.get(id) {
                    continue;
                }
                flat.extend_from_slice(&panel[p * d..(p + 1) * d]);
                ids.push(id);
            }
            let ap = &self.appends[c];
            for (j, &id) in ap.ids.iter().enumerate() {
                if !self.live.get(id) {
                    continue;
                }
                flat.extend_from_slice(&ap.flat[j * d..(j + 1) * d]);
                ids.push(id);
            }
            offsets.push(ids.len());
        }
        let panel = VectorSet::from_flat(flat, d)?;
        let mut next = IvfIndex {
            centroids: self.centroids.clone(),
            offsets,
            panel,
            ids,
            appends: vec![AppendList::default(); k],
            live: self.live.clone(),
            tombstoned: 0,
            next_id: self.next_id,
            applied_seq: self.applied_seq,
            sq8: None,
        };
        // A quantized source re-quantizes the next generation from its live
        // f32 rows: frozen-parameter drift from post-fit appends is repaired
        // at every checkpoint.
        if self.sq8.is_some() {
            next.quantize();
        }
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (VectorSet, VectorSet, Vec<usize>) {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![9.0, 8.0],
        ])
        .unwrap();
        let centroids =
            VectorSet::from_rows(vec![vec![0.0, 0.5], vec![5.0, 5.0], vec![9.0, 8.5]]).unwrap();
        let labels = vec![0usize, 2, 0, 1, 2];
        (data, centroids, labels)
    }

    #[test]
    fn build_remaps_rows_into_contiguous_lists() {
        let (data, centroids, labels) = sample();
        let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        assert_eq!(index.nlist(), 3);
        assert_eq!(index.len(), 5);
        assert_eq!(index.dim(), 2);
        assert_eq!(index.list_len(0), 2);
        assert_eq!(index.list_len(1), 1);
        assert_eq!(index.list_len(2), 2);

        // within a list, ascending original id; panel rows match the remap
        let (rows0, ids0) = index.list(0);
        assert_eq!(ids0, &[0, 2]);
        assert_eq!(rows0, &[0.0, 0.0, 0.0, 1.0]);
        let (rows2, ids2) = index.list(2);
        assert_eq!(ids2, &[1, 4]);
        assert_eq!(rows2, &[9.0, 9.0, 9.0, 8.0]);
    }

    #[test]
    fn build_allows_empty_lists_and_empty_data() {
        let data = VectorSet::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0], vec![1.5], vec![9.0]]).unwrap();
        let index = IvfIndex::build(&data, &centroids, &[1, 1]).unwrap();
        assert_eq!(index.list_len(0), 0);
        assert_eq!(index.list_len(1), 2);
        assert_eq!(index.list_len(2), 0);

        let empty = VectorSet::zeros(0, 1).unwrap();
        let index = IvfIndex::build(&empty, &centroids, &[]).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.nlist(), 3);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let (data, centroids, labels) = sample();
        // wrong label count
        assert!(matches!(
            IvfIndex::build(&data, &centroids, &labels[..3]).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        // out-of-range label
        assert!(matches!(
            IvfIndex::build(&data, &centroids, &[0, 1, 2, 3, 0]).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        // dim mismatch
        let wrong_d = VectorSet::from_rows(vec![vec![0.0, 0.5, 1.0]]).unwrap();
        assert!(matches!(
            IvfIndex::build(&data, &wrong_d, &[0, 0, 0, 0, 0]).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
        // no centroids
        let no_c = VectorSet::zeros(0, 2).unwrap();
        assert!(matches!(
            IvfIndex::build(&data, &no_c, &labels).unwrap_err(),
            Error::EmptyInput(_)
        ));
    }

    #[test]
    fn insert_routes_to_nearest_centroid_with_monotone_ids() {
        let (data, centroids, labels) = sample();
        let mut index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        assert!(!index.is_dirty());
        assert_eq!(index.live_len(), 5);
        assert_eq!(index.next_id(), 5);

        let id = index.insert(&[0.1, 0.4]).unwrap();
        assert_eq!(id, 5);
        let id = index.insert(&[8.9, 8.6]).unwrap();
        assert_eq!(id, 6);
        assert!(index.is_dirty());
        assert_eq!(index.pending_appends(), 2);
        assert_eq!(index.live_len(), 7);
        // near (0, 0.5) → list 0; near (9, 8.5) → list 2
        assert_eq!(index.appends[0].ids, vec![5]);
        assert_eq!(index.appends[2].ids, vec![6]);

        // wrong dimensionality and replay-ordering violations are typed
        assert!(matches!(
            index.insert(&[1.0]).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
        assert!(matches!(
            index.apply_insert(3, &[0.0, 0.0]).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        // replay with a gap is allowed; next_id jumps past it
        index.apply_insert(10, &[5.0, 5.1]).unwrap();
        assert_eq!(index.next_id(), 11);
    }

    #[test]
    fn delete_is_idempotent_and_tracks_liveness() {
        let (data, centroids, labels) = sample();
        let mut index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        assert!(index.is_live(3));
        assert!(index.delete(3));
        assert!(!index.is_live(3));
        assert!(!index.delete(3), "repeat delete must be a no-op");
        assert!(!index.delete(99), "unknown id must be a no-op");
        assert_eq!(index.tombstoned(), 1);
        assert_eq!(index.live_len(), 4);
        assert!(index.is_dirty());
        // deleting a freshly appended vector works too
        let id = index.insert(&[4.9, 5.2]).unwrap();
        assert!(index.delete(id));
        assert_eq!(index.live_len(), 4);
    }

    #[test]
    fn compact_produces_a_clean_equal_serving_generation() {
        let (data, centroids, labels) = sample();
        let mut index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        index.delete(1);
        let a = index.insert(&[0.2, 0.3]).unwrap();
        let b = index.insert(&[9.1, 8.4]).unwrap();
        index.delete(a);

        let compacted = index.compact().unwrap();
        assert!(!compacted.is_dirty());
        assert_eq!(compacted.live_len(), index.live_len());
        assert_eq!(compacted.len(), 5); // 5 original - 1 deleted - 1 deleted append + 2 inserts - ... = live set
        assert_eq!(compacted.next_id(), index.next_id());
        // external ids survive; within-list order stays ascending
        let (_, ids2) = compacted.list(2);
        assert_eq!(ids2, &[4, b]);
        for c in 0..compacted.nlist() {
            let (_, ids) = compacted.list(c);
            assert!(
                ids.windows(2).all(|w| w[0] < w[1]),
                "list {c} not ascending"
            );
        }
        // compacting a clean index is the identity
        let again = compacted.compact().unwrap();
        assert_eq!(again, compacted);
    }
}
