//! The inverted-file index structure: centroids + contiguous list panels.

use vecstore::{Error, Result, VectorSet};

/// A cluster-backed inverted-file ANN index.
///
/// Construction re-orders the base vectors into one contiguous row panel per
/// cluster (ascending original id within a list, so layout is deterministic)
/// together with an id remap, which makes every list scan a straight
/// streaming pass — no gather, no indirection — through the batched
/// one-to-many kernels.
///
/// ```
/// use ivf::{IvfIndex, IvfSearchParams};
/// use vecstore::VectorSet;
///
/// // Four 2-d points in two obvious clusters, plus the fitted centroids.
/// let data = VectorSet::from_rows(vec![
///     vec![0.0, 0.0], vec![9.0, 9.0], vec![0.0, 1.0], vec![9.0, 8.0],
/// ]).unwrap();
/// let centroids = VectorSet::from_rows(vec![vec![0.0, 0.5], vec![9.0, 8.5]]).unwrap();
/// let index = IvfIndex::build(&data, &centroids, &[0, 1, 0, 1]).unwrap();
///
/// let hits = index.search(&[8.8, 8.9], 1, IvfSearchParams::default().nprobe(1));
/// assert_eq!(hits[0].id, 1); // the original id, not the panel position
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct IvfIndex {
    /// `k × d` coarse level: the fitted centroids, row `c` owning list `c`.
    pub(crate) centroids: VectorSet,
    /// `k + 1` prefix offsets: list `c` occupies panel rows
    /// `offsets[c]..offsets[c + 1]`.
    pub(crate) offsets: Vec<usize>,
    /// `n × d` re-ordered base vectors, each list contiguous.
    pub(crate) panel: VectorSet,
    /// Panel row → original base row (`ids[p]` is the id reported for panel
    /// row `p`).
    pub(crate) ids: Vec<u32>,
}

impl IvfIndex {
    /// Builds an index from a clustering result: the base vectors, the fitted
    /// `k × d` centroids and one label per base row (`labels[i] ∈ 0..k`).
    ///
    /// Any of the workspace's fitters produces suitable inputs — e.g. a
    /// `baselines::common::Clustering` via its `centroids`/`labels` fields,
    /// or a GK-means outcome.  Empty clusters are fine (their lists are
    /// empty); `k` need not be smaller than `n`.
    ///
    /// # Errors
    ///
    /// * [`Error::DimensionMismatch`] when data and centroids disagree on `d`;
    /// * [`Error::EmptyInput`] when there are no centroids;
    /// * [`Error::InvalidParameter`] when the label count differs from the
    ///   row count, a label is out of range, or `n` exceeds `u32::MAX`
    ///   (ids are stored as `u32`).
    pub fn build(data: &VectorSet, centroids: &VectorSet, labels: &[usize]) -> Result<Self> {
        if centroids.is_empty() {
            return Err(Error::EmptyInput(
                "IVF index requires at least one centroid",
            ));
        }
        if data.dim() != centroids.dim() {
            return Err(Error::DimensionMismatch {
                expected: centroids.dim(),
                found: data.dim(),
            });
        }
        if labels.len() != data.len() {
            return Err(Error::InvalidParameter(format!(
                "{} labels for {} base rows",
                labels.len(),
                data.len()
            )));
        }
        if data.len() > u32::MAX as usize {
            return Err(Error::InvalidParameter(format!(
                "{} base rows exceed the u32 id space",
                data.len()
            )));
        }
        let k = centroids.len();
        let d = data.dim();

        // Counting sort by label, stable in ascending original id: cluster
        // sizes → prefix offsets → one placement sweep.
        let mut sizes = vec![0usize; k];
        for (i, &l) in labels.iter().enumerate() {
            if l >= k {
                return Err(Error::InvalidParameter(format!(
                    "label {l} of row {i} is out of range for k = {k}"
                )));
            }
            sizes[l] += 1;
        }
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        for &s in &sizes {
            offsets.push(offsets.last().expect("non-empty") + s);
        }

        let mut panel_flat = vec![0.0f32; data.len() * d];
        let mut ids = vec![0u32; data.len()];
        let mut cursor = offsets[..k].to_vec();
        for (i, &l) in labels.iter().enumerate() {
            let p = cursor[l];
            cursor[l] += 1;
            panel_flat[p * d..(p + 1) * d].copy_from_slice(data.row(i));
            ids[p] = i as u32;
        }
        let panel = VectorSet::from_flat(panel_flat, d)?;

        Ok(Self {
            centroids: centroids.clone(),
            offsets,
            panel,
            ids,
        })
    }

    /// Number of inverted lists (the clustering's `k`).
    #[inline]
    pub fn nlist(&self) -> usize {
        self.centroids.len()
    }

    /// Dimensionality of the indexed vectors.
    #[inline]
    pub fn dim(&self) -> usize {
        self.centroids.dim()
    }

    /// Number of indexed base vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when no vectors are indexed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of vectors in list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    #[inline]
    pub fn list_len(&self, c: usize) -> usize {
        self.offsets[c + 1] - self.offsets[c]
    }

    /// The contiguous vector panel and original ids of list `c`.
    ///
    /// # Panics
    ///
    /// Panics when `c >= self.nlist()`.
    pub fn list(&self, c: usize) -> (&[f32], &[u32]) {
        let d = self.dim();
        let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
        (&self.panel.as_flat()[lo * d..hi * d], &self.ids[lo..hi])
    }

    /// The coarse level: the fitted centroids.
    #[inline]
    pub fn centroids(&self) -> &VectorSet {
        &self.centroids
    }

    /// The number of lists a search with the requested `nprobe` actually
    /// probes: the value clamped to `1..=nlist`.  The single source of truth
    /// for the clamp — the scan loop, the evaluation report and the CLI all
    /// derive the effective value from here.
    #[inline]
    pub fn effective_nprobe(&self, requested: usize) -> usize {
        requested.clamp(1, self.nlist())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (VectorSet, VectorSet, Vec<usize>) {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 1.0],
            vec![5.0, 5.0],
            vec![9.0, 8.0],
        ])
        .unwrap();
        let centroids =
            VectorSet::from_rows(vec![vec![0.0, 0.5], vec![5.0, 5.0], vec![9.0, 8.5]]).unwrap();
        let labels = vec![0usize, 2, 0, 1, 2];
        (data, centroids, labels)
    }

    #[test]
    fn build_remaps_rows_into_contiguous_lists() {
        let (data, centroids, labels) = sample();
        let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        assert_eq!(index.nlist(), 3);
        assert_eq!(index.len(), 5);
        assert_eq!(index.dim(), 2);
        assert_eq!(index.list_len(0), 2);
        assert_eq!(index.list_len(1), 1);
        assert_eq!(index.list_len(2), 2);

        // within a list, ascending original id; panel rows match the remap
        let (rows0, ids0) = index.list(0);
        assert_eq!(ids0, &[0, 2]);
        assert_eq!(rows0, &[0.0, 0.0, 0.0, 1.0]);
        let (rows2, ids2) = index.list(2);
        assert_eq!(ids2, &[1, 4]);
        assert_eq!(rows2, &[9.0, 9.0, 9.0, 8.0]);
    }

    #[test]
    fn build_allows_empty_lists_and_empty_data() {
        let data = VectorSet::from_rows(vec![vec![1.0], vec![2.0]]).unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0], vec![1.5], vec![9.0]]).unwrap();
        let index = IvfIndex::build(&data, &centroids, &[1, 1]).unwrap();
        assert_eq!(index.list_len(0), 0);
        assert_eq!(index.list_len(1), 2);
        assert_eq!(index.list_len(2), 0);

        let empty = VectorSet::zeros(0, 1).unwrap();
        let index = IvfIndex::build(&empty, &centroids, &[]).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.nlist(), 3);
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let (data, centroids, labels) = sample();
        // wrong label count
        assert!(matches!(
            IvfIndex::build(&data, &centroids, &labels[..3]).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        // out-of-range label
        assert!(matches!(
            IvfIndex::build(&data, &centroids, &[0, 1, 2, 3, 0]).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        // dim mismatch
        let wrong_d = VectorSet::from_rows(vec![vec![0.0, 0.5, 1.0]]).unwrap();
        assert!(matches!(
            IvfIndex::build(&data, &wrong_d, &[0, 0, 0, 0, 0]).unwrap_err(),
            Error::DimensionMismatch { .. }
        ));
        // no centroids
        let no_c = VectorSet::zeros(0, 2).unwrap();
        assert!(matches!(
            IvfIndex::build(&data, &no_c, &labels).unwrap_err(),
            Error::EmptyInput(_)
        ));
    }
}
