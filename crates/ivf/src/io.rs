//! Index persistence: the IVF index as a chunked-section file.
//!
//! The on-disk form is `vecstore::io`'s checksummed sectioned container
//! ([`vecstore::io::write_sections_to`], GKSC v2) holding four sections:
//!
//! | tag        | payload |
//! |------------|---------|
//! | `IVFCENTR` | the `k × d` centroid matrix, native [`vecstore::VectorSet`] encoding |
//! | `IVFOFFS`  | `k + 1` little-endian `u64` prefix list offsets |
//! | `IVFIDS`   | `n` little-endian `u32` panel-row → original-id entries |
//! | `IVFPANEL` | the `n × d` re-ordered vector panel, native encoding |
//! | `IVFMUT`   | mutation cursor: `next_id` and `applied_seq`, little-endian `u64` each |
//! | `IVFSQ`    | SQ8 parameters: `k × d` little-endian `f32` mins, then `k × d` scales |
//! | `IVFPNL8`  | the `n × d` SQ8 code panel, one `u8` per component, panel-row order |
//!
//! (`IVFPNL8` is the u8-panel — "IVFPANEL8" — section; tags are capped at
//! 8 bytes by the container framing.)
//!
//! `IVFSQ`/`IVFPNL8` are optional and must appear **together**: a file
//! carrying one without the other cannot describe a servable quantized tier
//! and is rejected as an invariant violation.  Both are CRC-covered like
//! every other section, their lengths are pinned exactly (`2·k·d·4` and
//! `n·d` bytes), and the scales must be finite and non-negative — a NaN or
//! negative scale would silently poison every asymmetric distance.
//!
//! `IVFMUT` ties a checkpoint to its WAL ([`vecstore::wal`]): `applied_seq`
//! is the sequence number *after* the last journalled mutation folded into
//! the panels, so recovery replays exactly the WAL records at or beyond it —
//! a crash between checkpoint publication and WAL truncation cannot
//! double-apply.  Files written before the mutable tier lack the section and
//! load with `next_id = max(id) + 1`, `applied_seq = 0`.  Only **clean**
//! indexes are saved: un-compacted append regions or tombstones are an
//! error, because a checkpoint *is* a compacted generation by definition.
//!
//! [`IvfIndex::save`] writes atomically (temp file + fsync + rename via
//! [`vecstore::io::atomic_write`]), so a crash mid-save always leaves the
//! previous index loadable.  Readers verify every container checksum and
//! then the cross-section invariants (monotonic offsets covering exactly the
//! panel, matching dimensionalities); all corruption surfaces as the typed
//! [`StoreError`] taxonomy, so a corrupted file fails loudly — with the
//! section and byte offset — instead of serving wrong neighbours.  Legacy
//! unchecksummed (v1) files still load; [`IvfIndex::load_strict`] rejects
//! them.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::File;
use std::io::{BufReader, Read, Write};
use std::path::Path;

use vecstore::io::{
    atomic_write, read_sections_from, read_sections_strict_from, vector_set_from_bytes,
    vector_set_to_bytes, write_sections_to, Section,
};
use vecstore::{Error, Result, StoreError};

use crate::index::IvfIndex;

pub(crate) const TAG_CENTROIDS: &str = "IVFCENTR";
pub(crate) const TAG_OFFSETS: &str = "IVFOFFS";
pub(crate) const TAG_IDS: &str = "IVFIDS";
pub(crate) const TAG_PANEL: &str = "IVFPANEL";
pub(crate) const TAG_MUT: &str = "IVFMUT";
pub(crate) const TAG_SQ: &str = "IVFSQ";
pub(crate) const TAG_PANEL8: &str = "IVFPNL8";

/// Shorthand for a cross-section invariant violation in `section`.
fn invariant(section: &str, detail: String) -> Error {
    StoreError::Invariant {
        section: section.to_string(),
        detail,
    }
    .into()
}

fn u64s_to_bytes(values: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

fn u64s_from_bytes(bytes: &[u8], what: &str) -> Result<Vec<usize>> {
    if bytes.len() % 8 != 0 {
        return Err(invariant(
            what,
            format!("payload of {} bytes is not whole u64 values", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            u64::from_le_bytes(a) as usize
        })
        .collect())
}

fn f32s_to_bytes(values: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn f32s_from_bytes(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(4)
        .map(|c| {
            let mut a = [0u8; 4];
            a.copy_from_slice(c);
            f32::from_le_bytes(a)
        })
        .collect()
}

fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u32s_from_bytes(bytes: &[u8], what: &str) -> Result<Vec<u32>> {
    if bytes.len() % 4 != 0 {
        return Err(invariant(
            what,
            format!("payload of {} bytes is not whole u32 values", bytes.len()),
        ));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| {
            let mut a = [0u8; 4];
            a.copy_from_slice(c);
            u32::from_le_bytes(a)
        })
        .collect())
}

impl IvfIndex {
    /// Writes the index to `path` **atomically** (see the module docs for the
    /// layout): the bytes go to a temp file in the same directory, are
    /// fsynced, and are renamed over `path` — a crash at any point leaves
    /// the previous index untouched and loadable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] for underlying I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        atomic_write(path, |w| self.write_to(&mut *w))
    }

    /// Writes the index to an arbitrary writer (checksummed v2 framing).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when the index is dirty (pending
    /// append regions or tombstones): a persisted index is a *checkpoint*,
    /// and a checkpoint is by definition a compacted generation — call
    /// [`IvfIndex::compact`] first.
    pub fn write_to(&self, writer: impl Write) -> Result<()> {
        if self.is_dirty() {
            return Err(Error::InvalidParameter(format!(
                "refusing to persist a dirty index ({} pending appends, {} tombstones): \
                 compact into a clean generation first",
                self.pending_appends(),
                self.tombstoned()
            )));
        }
        let mut mut_payload = Vec::with_capacity(16);
        mut_payload.extend_from_slice(&u64::from(self.next_id).to_le_bytes());
        mut_payload.extend_from_slice(&self.applied_seq.to_le_bytes());
        let mut sections = vec![
            Section::new(TAG_CENTROIDS, vector_set_to_bytes(&self.centroids)),
            Section::new(TAG_OFFSETS, u64s_to_bytes(&self.offsets)),
            Section::new(TAG_IDS, u32s_to_bytes(&self.ids)),
            Section::new(TAG_PANEL, vector_set_to_bytes(&self.panel)),
            Section::new(TAG_MUT, mut_payload),
        ];
        // The quantized tier persists as a parameter block plus the code
        // panel.  A clean index has empty append regions (enforced above),
        // so the code shadows of the appends never reach disk.
        if let Some(sq8) = &self.sq8 {
            let mut params = f32s_to_bytes(&sq8.mins);
            params.extend_from_slice(&f32s_to_bytes(&sq8.scales));
            sections.push(Section::new(TAG_SQ, params));
            sections.push(Section::new(TAG_PANEL8, sq8.codes.clone()));
        }
        write_sections_to(writer, &sections)
    }

    /// Reads an index written by [`IvfIndex::save`].  Checksummed (v2) files
    /// have every checksum verified; legacy v1 files load without checksums —
    /// use [`IvfIndex::load_strict`] to reject those.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Store`] carrying the [`StoreError`] corruption class
    /// (truncation, checksum mismatch, violated cross-section invariant, …)
    /// and [`Error::Io`] for underlying I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        Self::read_from(BufReader::new(file))
    }

    /// Like [`IvfIndex::load`], but refuses unchecksummed (v1) files with
    /// [`StoreError::Unchecksummed`] — for deployments that must rule out
    /// silent bit-rot.
    pub fn load_strict(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        Self::read_strict_from(BufReader::new(file))
    }

    /// Reads an index from an arbitrary reader (lenient: v1 and v2).
    pub fn read_from(reader: impl Read) -> Result<Self> {
        Self::from_sections(read_sections_from(reader)?)
    }

    /// Reads an index from an arbitrary reader, rejecting unchecksummed (v1)
    /// framing.
    pub fn read_strict_from(reader: impl Read) -> Result<Self> {
        Self::from_sections(read_sections_strict_from(reader)?)
    }

    fn from_sections(sections: Vec<Section>) -> Result<Self> {
        let find = |tag: &str| -> Result<&Section> {
            sections
                .iter()
                .find(|s| s.has_tag(tag))
                .ok_or_else(|| invariant(tag, "section is missing".to_string()))
        };
        let centroids = vector_set_from_bytes(&find(TAG_CENTROIDS)?.payload)?;
        let offsets = u64s_from_bytes(&find(TAG_OFFSETS)?.payload, TAG_OFFSETS)?;
        let ids = u32s_from_bytes(&find(TAG_IDS)?.payload, TAG_IDS)?;
        let panel = vector_set_from_bytes(&find(TAG_PANEL)?.payload)?;

        // Cross-section invariants: a violated one means the file cannot
        // describe a well-formed index, whatever the individual sections say.
        if centroids.is_empty() {
            return Err(invariant(
                TAG_CENTROIDS,
                "index holds no centroids".to_string(),
            ));
        }
        if panel.dim() != centroids.dim() {
            return Err(invariant(
                TAG_PANEL,
                format!(
                    "panel dimensionality {} does not match centroids' {}",
                    panel.dim(),
                    centroids.dim()
                ),
            ));
        }
        if offsets.len() != centroids.len() + 1 {
            return Err(invariant(
                TAG_OFFSETS,
                format!(
                    "{} offsets for {} lists (expected k + 1)",
                    offsets.len(),
                    centroids.len()
                ),
            ));
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets[offsets.len() - 1] != panel.len()
        {
            return Err(invariant(
                TAG_OFFSETS,
                "list offsets are not a monotone prefix covering the panel".to_string(),
            ));
        }
        if ids.len() != panel.len() {
            return Err(invariant(
                TAG_IDS,
                format!(
                    "{} id remap entries for {} panel rows",
                    ids.len(),
                    panel.len()
                ),
            ));
        }

        // Mutation cursor: absent on pre-mutable-tier files, where the id
        // space is dense and nothing was ever journalled.
        let (next_id, applied_seq) = match sections.iter().find(|s| s.has_tag(TAG_MUT)) {
            Some(s) => {
                if s.payload.len() != 16 {
                    return Err(invariant(
                        TAG_MUT,
                        format!("payload of {} bytes (expected 16)", s.payload.len()),
                    ));
                }
                let mut a = [0u8; 8];
                a.copy_from_slice(&s.payload[..8]);
                let next_id = u64::from_le_bytes(a);
                a.copy_from_slice(&s.payload[8..]);
                let applied_seq = u64::from_le_bytes(a);
                if next_id > u64::from(u32::MAX) {
                    return Err(invariant(
                        TAG_MUT,
                        format!("next_id {next_id} exceeds the u32 id space"),
                    ));
                }
                (next_id as u32, applied_seq)
            }
            None => (ids.iter().max().map(|&m| m + 1).unwrap_or(0), 0),
        };
        if let Some(&beyond) = ids.iter().find(|&&id| id >= next_id) {
            return Err(invariant(
                TAG_MUT,
                format!("panel id {beyond} is at or beyond next_id {next_id}"),
            ));
        }
        let live = crate::index::LiveSet::from_ids(next_id as usize, &ids)
            .ok_or_else(|| invariant(TAG_IDS, "id remap contains a duplicate id".to_string()))?;
        let appends = vec![crate::index::AppendList::default(); centroids.len()];

        // The optional SQ8 tier: parameters and code panel must appear
        // together, with exactly pinned lengths, and the affine maps must be
        // servable (finite mins, finite non-negative scales).
        let sq_section = sections.iter().find(|s| s.has_tag(TAG_SQ));
        let panel8_section = sections.iter().find(|s| s.has_tag(TAG_PANEL8));
        let sq8 = match (sq_section, panel8_section) {
            (None, None) => None,
            (Some(_), None) => {
                return Err(invariant(
                    TAG_PANEL8,
                    format!("{TAG_SQ} present without its code panel"),
                ));
            }
            (None, Some(_)) => {
                return Err(invariant(
                    TAG_SQ,
                    format!("{TAG_PANEL8} present without its parameter block"),
                ));
            }
            (Some(sq), Some(p8)) => {
                let k = centroids.len();
                let d = centroids.dim();
                if sq.payload.len() != 2 * k * d * 4 {
                    return Err(invariant(
                        TAG_SQ,
                        format!(
                            "payload of {} bytes (expected {} for k = {k}, d = {d})",
                            sq.payload.len(),
                            2 * k * d * 4
                        ),
                    ));
                }
                if p8.payload.len() != panel.len() * d {
                    return Err(invariant(
                        TAG_PANEL8,
                        format!(
                            "{} code bytes for {} panel rows of dim {d}",
                            p8.payload.len(),
                            panel.len()
                        ),
                    ));
                }
                let mins = f32s_from_bytes(&sq.payload[..k * d * 4]);
                let scales = f32s_from_bytes(&sq.payload[k * d * 4..]);
                if mins.iter().any(|m| !m.is_finite()) {
                    return Err(invariant(
                        TAG_SQ,
                        "a quantization min is not finite".to_string(),
                    ));
                }
                if scales.iter().any(|s| !s.is_finite() || *s < 0.0) {
                    return Err(invariant(
                        TAG_SQ,
                        "a quantization scale is negative or not finite".to_string(),
                    ));
                }
                Some(crate::sq8::Sq8Panels {
                    dim: d,
                    mins,
                    scales,
                    codes: p8.payload.clone(),
                    append_codes: vec![Vec::new(); k],
                })
            }
        };

        Ok(Self {
            centroids,
            offsets,
            panel,
            ids,
            appends,
            live,
            tombstoned: 0,
            next_id,
            applied_seq,
            sq8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IvfSearchParams;
    use vecstore::VectorSet;

    fn sample_index() -> IvfIndex {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 1.0],
            vec![9.0, 8.0],
        ])
        .unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.5], vec![9.0, 8.5]]).unwrap();
        IvfIndex::build(&data, &centroids, &[0, 1, 0, 1]).unwrap()
    }

    #[test]
    fn round_trip_preserves_index_and_answers() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let back = IvfIndex::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, index);
        let params = IvfSearchParams::default().nprobe(2).threads(1);
        assert_eq!(
            back.search(&[8.5, 8.5], 2, params),
            index.search(&[8.5, 8.5], 2, params)
        );
        // New files are checksummed, so strict reading accepts them too.
        assert_eq!(IvfIndex::read_strict_from(buf.as_slice()).unwrap(), index);
    }

    #[test]
    fn round_trip_with_empty_lists_and_empty_panel() {
        let centroids = VectorSet::from_rows(vec![vec![0.0], vec![5.0]]).unwrap();
        let empty = VectorSet::zeros(0, 1).unwrap();
        let index = IvfIndex::build(&empty, &centroids, &[]).unwrap();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        assert_eq!(IvfIndex::read_from(buf.as_slice()).unwrap(), index);
    }

    #[test]
    fn legacy_v1_files_load_leniently_but_fail_strict() {
        let index = sample_index();
        let sections = vec![
            Section::new(TAG_CENTROIDS, vector_set_to_bytes(&index.centroids)),
            Section::new(TAG_OFFSETS, u64s_to_bytes(&index.offsets)),
            Section::new(TAG_IDS, u32s_to_bytes(&index.ids)),
            Section::new(TAG_PANEL, vector_set_to_bytes(&index.panel)),
        ];
        let mut v1 = Vec::new();
        vecstore::io::write_sections_v1_to(&mut v1, &sections).unwrap();
        assert_eq!(IvfIndex::read_from(v1.as_slice()).unwrap(), index);
        assert!(matches!(
            IvfIndex::read_strict_from(v1.as_slice()).unwrap_err(),
            Error::Store(StoreError::Unchecksummed { version: 1 })
        ));
    }

    #[test]
    fn load_rejects_missing_sections_and_broken_invariants() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();

        // drop the ids section
        let sections: Vec<Section> = read_sections_from(buf.as_slice())
            .unwrap()
            .into_iter()
            .filter(|s| !s.has_tag(TAG_IDS))
            .collect();
        let mut missing = Vec::new();
        write_sections_to(&mut missing, &sections).unwrap();
        assert!(matches!(
            IvfIndex::read_from(missing.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_IDS
        ));

        // corrupt the offsets so they no longer cover the panel
        let mut sections = read_sections_from(buf.as_slice()).unwrap();
        for s in &mut sections {
            if s.has_tag(TAG_OFFSETS) {
                s.payload = u64s_to_bytes(&[0, 1, 999]);
            }
        }
        let mut broken = Vec::new();
        write_sections_to(&mut broken, &sections).unwrap();
        assert!(matches!(
            IvfIndex::read_from(broken.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_OFFSETS
        ));
    }

    #[test]
    fn bit_flips_in_the_file_are_detected_as_checksum_mismatches() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        // A flip anywhere — header, framing, payload — must be caught.
        for byte in [0usize, 9, 21, 40, buf.len() / 2, buf.len() - 1] {
            let mut corrupt = buf.clone();
            corrupt[byte] ^= 0x10;
            let err = IvfIndex::read_from(corrupt.as_slice()).unwrap_err();
            assert!(matches!(err, Error::Store(_)), "byte {byte}: got {err}");
        }
    }

    #[test]
    fn sq8_round_trip_preserves_the_quantized_tier() {
        let mut index = sample_index();
        index.quantize();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let back = IvfIndex::read_from(buf.as_slice()).unwrap();
        assert!(back.is_quantized());
        assert_eq!(back, index);
        assert_eq!(IvfIndex::read_strict_from(buf.as_slice()).unwrap(), index);
    }

    #[test]
    fn sq8_sections_must_appear_together_with_sane_payloads() {
        let mut index = sample_index();
        index.quantize();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();

        let rewrite = |filter: &dyn Fn(&mut Vec<Section>)| -> Vec<u8> {
            let mut sections = read_sections_from(buf.as_slice()).unwrap();
            filter(&mut sections);
            let mut out = Vec::new();
            write_sections_to(&mut out, &sections).unwrap();
            out
        };

        // one section without the other
        let no_codes = rewrite(&|ss| ss.retain(|s| !s.has_tag(TAG_PANEL8)));
        assert!(matches!(
            IvfIndex::read_from(no_codes.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_PANEL8
        ));
        let no_params = rewrite(&|ss| ss.retain(|s| !s.has_tag(TAG_SQ)));
        assert!(matches!(
            IvfIndex::read_from(no_params.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_SQ
        ));

        // wrong parameter-block length
        let short_params = rewrite(&|ss| {
            for s in ss.iter_mut() {
                if s.has_tag(TAG_SQ) {
                    s.payload.truncate(s.payload.len() - 4);
                }
            }
        });
        assert!(matches!(
            IvfIndex::read_from(short_params.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_SQ
        ));

        // wrong code-panel length
        let short_codes = rewrite(&|ss| {
            for s in ss.iter_mut() {
                if s.has_tag(TAG_PANEL8) {
                    s.payload.pop();
                }
            }
        });
        assert!(matches!(
            IvfIndex::read_from(short_codes.as_slice()).unwrap_err(),
            Error::Store(StoreError::Invariant { section, .. }) if section == TAG_PANEL8
        ));

        // a poisoned scale (negative, then NaN) is rejected
        for bad in [-1.0f32, f32::NAN] {
            let poisoned = rewrite(&|ss| {
                for s in ss.iter_mut() {
                    if s.has_tag(TAG_SQ) {
                        let at = s.payload.len() - 4; // last scale value
                        s.payload[at..].copy_from_slice(&bad.to_le_bytes());
                    }
                }
            });
            assert!(matches!(
                IvfIndex::read_from(poisoned.as_slice()).unwrap_err(),
                Error::Store(StoreError::Invariant { section, .. }) if section == TAG_SQ
            ));
        }
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("ivf-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.ivf");
        let index = sample_index();
        index.save(&path).unwrap();
        assert_eq!(IvfIndex::load(&path).unwrap(), index);
        assert_eq!(IvfIndex::load_strict(&path).unwrap(), index);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_is_atomic_over_an_existing_index() {
        let dir = std::env::temp_dir().join(format!("ivf-atomic-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serving.ivf");
        let index = sample_index();
        index.save(&path).unwrap();
        // A failed overwrite (simulated by a directory collision on the
        // final rename target being impossible here, so instead verify the
        // temp-file protocol directly): writing again must leave a loadable
        // index at every observable moment — after save, the old or new
        // content is fully present, never a torn mix.
        index.save(&path).unwrap();
        assert_eq!(IvfIndex::load(&path).unwrap(), index);
        // No temp files linger.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
