//! Index persistence: the IVF index as a chunked-section file.
//!
//! The on-disk form is `vecstore::io`'s sectioned container
//! ([`vecstore::io::write_sections_to`]) holding four sections:
//!
//! | tag        | payload |
//! |------------|---------|
//! | `IVFCENTR` | the `k × d` centroid matrix, native [`vecstore::VectorSet`] encoding |
//! | `IVFOFFS`  | `k + 1` little-endian `u64` prefix list offsets |
//! | `IVFIDS`   | `n` little-endian `u32` panel-row → original-id entries |
//! | `IVFPANEL` | the `n × d` re-ordered vector panel, native encoding |
//!
//! Readers validate the cross-section invariants (monotonic offsets covering
//! exactly the panel, matching dimensionalities) so a corrupted file fails
//! loudly instead of serving wrong neighbours.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use vecstore::io::{
    read_sections_from, vector_set_from_bytes, vector_set_to_bytes, write_sections_to, Section,
};
use vecstore::{Error, Result};

use crate::index::IvfIndex;

const TAG_CENTROIDS: &str = "IVFCENTR";
const TAG_OFFSETS: &str = "IVFOFFS";
const TAG_IDS: &str = "IVFIDS";
const TAG_PANEL: &str = "IVFPANEL";

fn u64s_to_bytes(values: &[usize]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&(v as u64).to_le_bytes());
    }
    out
}

fn u64s_from_bytes(bytes: &[u8], what: &str) -> Result<Vec<usize>> {
    if bytes.len() % 8 != 0 {
        return Err(Error::MalformedFile(format!(
            "{what} payload of {} bytes is not whole u64 values",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")) as usize)
        .collect())
}

fn u32s_to_bytes(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn u32s_from_bytes(bytes: &[u8], what: &str) -> Result<Vec<u32>> {
    if bytes.len() % 4 != 0 {
        return Err(Error::MalformedFile(format!(
            "{what} payload of {} bytes is not whole u32 values",
            bytes.len()
        )));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect())
}

impl IvfIndex {
    /// Writes the index to `path` (see the module docs for the layout).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] for underlying I/O failures.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::create(path)?;
        self.write_to(BufWriter::new(file))
    }

    /// Writes the index to an arbitrary writer.
    pub fn write_to(&self, writer: impl Write) -> Result<()> {
        let sections = vec![
            Section::new(TAG_CENTROIDS, vector_set_to_bytes(&self.centroids)),
            Section::new(TAG_OFFSETS, u64s_to_bytes(&self.offsets)),
            Section::new(TAG_IDS, u32s_to_bytes(&self.ids)),
            Section::new(TAG_PANEL, vector_set_to_bytes(&self.panel)),
        ];
        write_sections_to(writer, &sections)
    }

    /// Reads an index written by [`IvfIndex::save`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::MalformedFile`] when a section is missing, malformed
    /// or the cross-section invariants do not hold, and [`Error::Io`] for
    /// underlying I/O failures.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        Self::read_from(BufReader::new(file))
    }

    /// Reads an index from an arbitrary reader.
    pub fn read_from(reader: impl Read) -> Result<Self> {
        let sections = read_sections_from(reader)?;
        let find = |tag: &str| -> Result<&Section> {
            sections
                .iter()
                .find(|s| s.has_tag(tag))
                .ok_or_else(|| Error::MalformedFile(format!("missing `{tag}` section")))
        };
        let centroids = vector_set_from_bytes(&find(TAG_CENTROIDS)?.payload)?;
        let offsets = u64s_from_bytes(&find(TAG_OFFSETS)?.payload, TAG_OFFSETS)?;
        let ids = u32s_from_bytes(&find(TAG_IDS)?.payload, TAG_IDS)?;
        let panel = vector_set_from_bytes(&find(TAG_PANEL)?.payload)?;

        // Cross-section invariants: a violated one means the file cannot
        // describe a well-formed index, whatever the individual sections say.
        if centroids.is_empty() {
            return Err(Error::MalformedFile("index holds no centroids".into()));
        }
        if panel.dim() != centroids.dim() {
            return Err(Error::MalformedFile(format!(
                "panel dimensionality {} does not match centroids' {}",
                panel.dim(),
                centroids.dim()
            )));
        }
        if offsets.len() != centroids.len() + 1 {
            return Err(Error::MalformedFile(format!(
                "{} offsets for {} lists (expected k + 1)",
                offsets.len(),
                centroids.len()
            )));
        }
        if offsets[0] != 0
            || offsets.windows(2).any(|w| w[0] > w[1])
            || *offsets.last().expect("k + 1 >= 2 entries") != panel.len()
        {
            return Err(Error::MalformedFile(
                "list offsets are not a monotone prefix covering the panel".into(),
            ));
        }
        if ids.len() != panel.len() {
            return Err(Error::MalformedFile(format!(
                "{} id remap entries for {} panel rows",
                ids.len(),
                panel.len()
            )));
        }
        Ok(Self {
            centroids,
            offsets,
            panel,
            ids,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IvfSearchParams;
    use vecstore::VectorSet;

    fn sample_index() -> IvfIndex {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 1.0],
            vec![9.0, 8.0],
        ])
        .unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.5], vec![9.0, 8.5]]).unwrap();
        IvfIndex::build(&data, &centroids, &[0, 1, 0, 1]).unwrap()
    }

    #[test]
    fn round_trip_preserves_index_and_answers() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let back = IvfIndex::read_from(buf.as_slice()).unwrap();
        assert_eq!(back, index);
        let params = IvfSearchParams::default().nprobe(2).threads(1);
        assert_eq!(
            back.search(&[8.5, 8.5], 2, params),
            index.search(&[8.5, 8.5], 2, params)
        );
    }

    #[test]
    fn round_trip_with_empty_lists_and_empty_panel() {
        let centroids = VectorSet::from_rows(vec![vec![0.0], vec![5.0]]).unwrap();
        let empty = VectorSet::zeros(0, 1).unwrap();
        let index = IvfIndex::build(&empty, &centroids, &[]).unwrap();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        assert_eq!(IvfIndex::read_from(buf.as_slice()).unwrap(), index);
    }

    #[test]
    fn load_rejects_missing_sections_and_broken_invariants() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();

        // drop the ids section
        let sections: Vec<Section> = read_sections_from(buf.as_slice())
            .unwrap()
            .into_iter()
            .filter(|s| !s.has_tag(TAG_IDS))
            .collect();
        let mut missing = Vec::new();
        write_sections_to(&mut missing, &sections).unwrap();
        assert!(matches!(
            IvfIndex::read_from(missing.as_slice()).unwrap_err(),
            Error::MalformedFile(_)
        ));

        // corrupt the offsets so they no longer cover the panel
        let mut sections = read_sections_from(buf.as_slice()).unwrap();
        for s in &mut sections {
            if s.has_tag(TAG_OFFSETS) {
                s.payload = u64s_to_bytes(&[0, 1, 999]);
            }
        }
        let mut broken = Vec::new();
        write_sections_to(&mut broken, &sections).unwrap();
        assert!(IvfIndex::read_from(broken.as_slice()).is_err());
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("ivf-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("x.ivf");
        let index = sample_index();
        index.save(&path).unwrap();
        assert_eq!(IvfIndex::load(&path).unwrap(), index);
        std::fs::remove_dir_all(&dir).ok();
    }
}
