//! Crash-consistent mutable index: checkpoint (GKSC) + journal (GKSL).
//!
//! A [`MutableStore`] pairs an in-memory [`IvfIndex`] with a write-ahead log
//! so that **every acknowledged mutation is durable before it is applied**:
//!
//! 1. the mutation is encoded and appended to the journal;
//! 2. the journal is fsynced ([`vecstore::wal::WalWriter::sync`] — batches
//!    share one sync, the group commit the `mutate_throughput` bench
//!    measures);
//! 3. only then is it applied to the in-memory index and acknowledged.
//!
//! A crash at any point loses *at most* unacknowledged work.  Recovery loads
//! the last checkpoint and replays the journal's valid prefix; the
//! checkpoint's `applied_seq` cursor (the `IVFMUT` section) says where to
//! resume, so a crash **between** checkpoint publication and journal
//! truncation merely re-reads already-folded records and skips them — no
//! double apply, no loss.
//!
//! Checkpointed compaction ([`MutableStore::compact`]) turns the mutable
//! state into the next clean generation: rebuild contiguous panels from the
//! live set, atomically publish the new GKSC file, then truncate the journal
//! (itself an atomic replacement).  The crash matrix is in ARCHITECTURE §7.
//!
//! # Journal record encoding
//!
//! The WAL body (after the sequence number the segment format carries) is:
//!
//! ```text
//! insert: 0x01 | id u32 LE | d × f32 LE
//! delete: 0x02 | id u32 LE
//! ```
//!
//! Inserts journal the id they *will* assign, so replay reproduces the exact
//! id assignment; deletes are idempotent on replay.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::ffi::OsString;
use std::path::{Path, PathBuf};

use vecstore::wal::{WalObs, WalWriter, MAX_WAL_RECORD};
use vecstore::{Error, Result, StoreError, VectorSet};

use crate::index::IvfIndex;

/// Store-level side-channel instruments (all-disabled until
/// [`MutableStore::set_obs`]).
#[derive(Clone, Default)]
struct StoreObs {
    compact_nanos: obs::HistogramHandle,
    tombstoned: obs::GaugeHandle,
    append_rows: obs::GaugeHandle,
    live_rows: obs::GaugeHandle,
}

impl std::fmt::Debug for StoreObs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("StoreObs { .. }")
    }
}

const OP_INSERT: u8 = 1;
const OP_DELETE: u8 = 2;
const RECORD_SECTION: &str = "GKSL record";

/// One decoded journal operation.
#[derive(Clone, Debug, PartialEq)]
pub enum MutationOp {
    /// Insert `vector` under external id `id`.
    Insert {
        /// External id the insert assigns.
        id: u32,
        /// The inserted vector (`dim` values).
        vector: Vec<f32>,
    },
    /// Tombstone external id `id` (idempotent).
    Delete {
        /// External id to tombstone.
        id: u32,
    },
}

/// Encodes a mutation into a journal record body.
pub fn encode_op(op: &MutationOp) -> Vec<u8> {
    match op {
        MutationOp::Insert { id, vector } => {
            let mut out = Vec::with_capacity(5 + vector.len() * 4);
            out.push(OP_INSERT);
            out.extend_from_slice(&id.to_le_bytes());
            for v in vector {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }
        MutationOp::Delete { id } => {
            let mut out = Vec::with_capacity(5);
            out.push(OP_DELETE);
            out.extend_from_slice(&id.to_le_bytes());
            out
        }
    }
}

/// Decodes a journal record body, validating shape against `dim`.
///
/// # Errors
///
/// Returns [`StoreError::Invariant`] (corruption class) on an unknown opcode
/// or a payload whose length disagrees with the declared dimensionality —
/// the journal passed its CRCs but cannot describe a real mutation.
pub fn decode_op(body: &[u8], dim: usize) -> Result<MutationOp> {
    let invariant = |detail: String| -> Error {
        StoreError::Invariant {
            section: RECORD_SECTION.to_string(),
            detail,
        }
        .into()
    };
    if body.is_empty() {
        return Err(invariant("empty mutation body".to_string()));
    }
    match body[0] {
        OP_INSERT => {
            let want = 5 + dim * 4;
            if body.len() != want {
                return Err(invariant(format!(
                    "insert body of {} bytes (expected {want} for dim {dim})",
                    body.len()
                )));
            }
            let mut a = [0u8; 4];
            a.copy_from_slice(&body[1..5]);
            let id = u32::from_le_bytes(a);
            let vector = body[5..]
                .chunks_exact(4)
                .map(|c| {
                    let mut a = [0u8; 4];
                    a.copy_from_slice(c);
                    f32::from_le_bytes(a)
                })
                .collect();
            Ok(MutationOp::Insert { id, vector })
        }
        OP_DELETE => {
            if body.len() != 5 {
                return Err(invariant(format!(
                    "delete body of {} bytes (expected 5)",
                    body.len()
                )));
            }
            let mut a = [0u8; 4];
            a.copy_from_slice(&body[1..5]);
            Ok(MutationOp::Delete {
                id: u32::from_le_bytes(a),
            })
        }
        op => Err(invariant(format!("unknown mutation opcode {op:#04x}"))),
    }
}

/// What [`MutableStore::open`] found and did during recovery.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed onto the checkpoint.
    pub replayed: usize,
    /// Records skipped because the checkpoint had already folded them in
    /// (a crash landed between checkpoint publication and WAL truncation).
    pub skipped: usize,
    /// `true` when a torn tail (an unacknowledged partial append) was
    /// dropped and truncated away.
    pub torn_tail_dropped: bool,
}

/// The path of the journal that rides shotgun with an index checkpoint:
/// the checkpoint path with `.wal` appended (`serving.ivf` → `serving.ivf.wal`).
pub fn wal_path(index_path: impl AsRef<Path>) -> PathBuf {
    let mut os: OsString = index_path.as_ref().as_os_str().to_os_string();
    os.push(".wal");
    PathBuf::from(os)
}

/// A crash-consistent, mutable IVF index: checkpoint + write-ahead log.
///
/// All mutation methods follow journal → fsync → apply; see the module docs.
/// The store owns the in-memory index — search through [`MutableStore::index`].
#[derive(Debug)]
pub struct MutableStore {
    index: IvfIndex,
    wal: WalWriter,
    index_path: PathBuf,
    obs: StoreObs,
}

impl MutableStore {
    /// Publishes `index` as a fresh checkpoint at `index_path` (atomically)
    /// with a fresh, empty journal beside it, and opens the pair.
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidParameter`] when `index` is dirty (a checkpoint is
    ///   a compacted generation by definition);
    /// * I/O and store errors from writing either file.
    pub fn create(index_path: impl AsRef<Path>, index: IvfIndex) -> Result<MutableStore> {
        let index_path = index_path.as_ref().to_path_buf();
        index.save(&index_path)?;
        let wal = WalWriter::create(wal_path(&index_path), index.dim() as u32, index.applied_seq)?;
        Ok(MutableStore {
            index,
            wal,
            index_path,
            obs: StoreObs::default(),
        })
    }

    /// Opens the checkpoint at `index_path` and replays its journal's valid
    /// prefix: torn tail dropped (and truncated), already-applied records
    /// skipped, the rest re-applied in sequence order.
    ///
    /// # Errors
    ///
    /// * checkpoint corruption via [`IvfIndex::load`]'s typed taxonomy;
    /// * journal corruption via [`vecstore::wal::replay_wal`];
    /// * [`StoreError::Invariant`] when the journal starts *beyond* the
    ///   checkpoint's `applied_seq` cursor — journalled records are missing,
    ///   so the pair cannot reconstruct an acknowledged state.
    pub fn open(index_path: impl AsRef<Path>) -> Result<(MutableStore, RecoveryReport)> {
        let index_path = index_path.as_ref().to_path_buf();
        let mut index = IvfIndex::load(&index_path)?;
        let (replay, wal) =
            WalWriter::recover(wal_path(&index_path), index.dim() as u32, index.applied_seq)?;
        if replay.start_seq > index.applied_seq {
            return Err(StoreError::Invariant {
                section: "GKSL header".to_string(),
                detail: format!(
                    "journal starts at sequence {} but the checkpoint only covers up to {} — \
                     journalled mutations are missing",
                    replay.start_seq, index.applied_seq
                ),
            }
            .into());
        }
        let mut report = RecoveryReport {
            torn_tail_dropped: replay.torn,
            ..RecoveryReport::default()
        };
        let dim = index.dim();
        for record in &replay.records {
            if record.seq < index.applied_seq {
                report.skipped += 1;
                continue;
            }
            match decode_op(&record.body, dim)? {
                MutationOp::Insert { id, vector } => index.apply_insert(id, &vector)?,
                MutationOp::Delete { id } => {
                    index.delete(id);
                }
            }
            index.applied_seq = record.seq + 1;
            report.replayed += 1;
        }
        Ok((
            MutableStore {
                index,
                wal,
                index_path,
                obs: StoreObs::default(),
            },
            report,
        ))
    }

    /// Attaches observability instruments: WAL append/fsync latency and
    /// journal depth (via [`vecstore::wal::WalObs`]), compaction duration,
    /// and live/tombstone/append-region gauges.  A metrics side channel
    /// only — mutation behaviour, journal bytes and sync points are
    /// identical with or without it.
    pub fn set_obs(&mut self, handle: &obs::ObsHandle) {
        self.wal.set_obs(WalObs::register(handle));
        self.obs = StoreObs {
            compact_nanos: handle.histogram(
                "compaction_nanos",
                "Duration of one checkpointed compaction (rebuild + publish + truncate)",
            ),
            tombstoned: handle.gauge(
                "index_tombstoned_rows",
                "Tombstoned rows awaiting compaction",
            ),
            append_rows: handle.gauge(
                "index_append_rows",
                "Rows living in the mutable append regions",
            ),
            live_rows: handle.gauge("index_live_rows", "Live rows the index serves"),
        };
        self.refresh_gauges();
    }

    /// Re-publishes the index-shape gauges after a mutation or compaction.
    fn refresh_gauges(&self) {
        self.obs.tombstoned.set(self.index.tombstoned() as i64);
        self.obs
            .append_rows
            .set(self.index.pending_appends() as i64);
        self.obs.live_rows.set(self.index.live_len() as i64);
    }

    /// The served index.  Searches read this; it already reflects every
    /// acknowledged mutation.
    #[inline]
    pub fn index(&self) -> &IvfIndex {
        &self.index
    }

    /// Path of the checkpoint file.
    pub fn path(&self) -> &Path {
        &self.index_path
    }

    /// Sequence number the next journalled mutation will carry.
    pub fn next_seq(&self) -> u64 {
        self.wal.next_seq()
    }

    /// Inserts one vector: journal, fsync, apply.  Returns the assigned id,
    /// which is durable by the time the call returns.
    pub fn insert(&mut self, vector: &[f32]) -> Result<u32> {
        Ok(self.insert_batch_rows(&[vector])?[0])
    }

    /// Inserts a batch under **one** fsync (group commit): every row is
    /// journalled, the journal is synced once, then all rows are applied.
    /// Returns the assigned ids in row order.
    pub fn insert_batch(&mut self, vectors: &VectorSet) -> Result<Vec<u32>> {
        let rows: Vec<&[f32]> = vectors.rows().collect();
        self.insert_batch_rows(&rows)
    }

    fn insert_batch_rows(&mut self, rows: &[&[f32]]) -> Result<Vec<u32>> {
        let dim = self.index.dim();
        for row in rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    found: row.len(),
                });
            }
        }
        let span = rows.len() as u64;
        if u64::from(self.index.next_id) + span > u64::from(u32::MAX) {
            return Err(Error::InvalidParameter(
                "u32 id space exhausted; compact and re-shard".to_string(),
            ));
        }
        debug_assert!(5 + dim as u64 * 4 <= MAX_WAL_RECORD);
        // Journal every row first …
        let mut ids = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            let id = self.index.next_id + i as u32;
            self.wal.append(&encode_op(&MutationOp::Insert {
                id,
                vector: row.to_vec(),
            }))?;
            ids.push(id);
        }
        // … make the whole batch durable with one fsync …
        self.wal.sync()?;
        // … and only then apply (acknowledged = durable).
        for (&id, row) in ids.iter().zip(rows) {
            self.index.apply_insert(id, row)?;
            self.index.applied_seq += 1;
        }
        self.refresh_gauges();
        Ok(ids)
    }

    /// Tombstones one id: journal, fsync, apply.  Returns `true` when the id
    /// was live.
    pub fn delete(&mut self, id: u32) -> Result<bool> {
        Ok(self.delete_batch(&[id])?[0])
    }

    /// Tombstones a batch of ids under one fsync.  Every request is
    /// journalled (deletes are idempotent on replay, so journalling a no-op
    /// is harmless); the returned flags say which ids were actually live.
    pub fn delete_batch(&mut self, ids: &[u32]) -> Result<Vec<bool>> {
        for &id in ids {
            self.wal.append(&encode_op(&MutationOp::Delete { id }))?;
        }
        self.wal.sync()?;
        let mut was_live = Vec::with_capacity(ids.len());
        for &id in ids {
            was_live.push(self.index.delete(id));
            self.index.applied_seq += 1;
        }
        self.refresh_gauges();
        Ok(was_live)
    }

    /// Checkpointed compaction: folds the mutable tier into the next clean
    /// generation, atomically publishes it, then truncates the journal.
    /// Returns the new generation (the caller hot-swaps its serving handle).
    ///
    /// Crash safety: the checkpoint save is atomic (old or new generation,
    /// never torn) and carries the `applied_seq` cursor; the journal
    /// truncation is an atomic replacement.  A crash between the two leaves
    /// the *new* checkpoint with the *old* journal — recovery skips every
    /// record below the cursor, so nothing double-applies.
    pub fn compact(&mut self) -> Result<()> {
        let started = self
            .obs
            .compact_nanos
            .is_enabled()
            .then(std::time::Instant::now);
        let mut next = self.index.compact()?;
        // Everything journalled so far is applied (journal → fsync → apply
        // is synchronous), so the cursor is exactly the next sequence.
        debug_assert_eq!(self.index.applied_seq, self.wal.next_seq());
        next.applied_seq = self.index.applied_seq;
        next.save(&self.index_path)?;
        self.wal.reset(next.applied_seq)?;
        self.index = next;
        if let Some(t) = started {
            self.obs.compact_nanos.record_duration(t.elapsed());
        }
        self.refresh_gauges();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IvfSearchParams;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gkm-store-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn small_index() -> IvfIndex {
        let data = VectorSet::from_rows(vec![
            vec![0.0, 0.0],
            vec![9.0, 9.0],
            vec![0.0, 1.0],
            vec![9.0, 8.0],
        ])
        .unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.5], vec![9.0, 8.5]]).unwrap();
        IvfIndex::build(&data, &centroids, &[0, 1, 0, 1]).unwrap()
    }

    #[test]
    fn op_encoding_round_trips_and_rejects_garbage() {
        let ops = vec![
            MutationOp::Insert {
                id: 7,
                vector: vec![1.5, -2.0],
            },
            MutationOp::Delete { id: 3 },
        ];
        for op in &ops {
            assert_eq!(&decode_op(&encode_op(op), 2).unwrap(), op);
        }
        assert!(decode_op(&[], 2).unwrap_err().is_corruption());
        assert!(decode_op(&[9, 0, 0, 0, 0], 2).unwrap_err().is_corruption());
        // insert body sized for the wrong dim
        let body = encode_op(&ops[0]);
        assert!(decode_op(&body, 3).unwrap_err().is_corruption());
    }

    #[test]
    fn acknowledged_mutations_survive_reopen() {
        let dir = tempdir("reopen");
        let path = dir.join("serving.ivf");
        let mut store = MutableStore::create(&path, small_index()).unwrap();
        let a = store.insert(&[0.2, 0.8]).unwrap();
        let ids = store
            .insert_batch(&VectorSet::from_rows(vec![vec![8.8, 8.8], vec![0.1, 0.1]]).unwrap())
            .unwrap();
        assert_eq!((a, ids.as_slice()), (4, &[5, 6][..]));
        assert!(store.delete(1).unwrap());
        assert!(!store.delete(1).unwrap());
        let live = store.index().live_len();
        drop(store);

        let (store, report) = MutableStore::open(&path).unwrap();
        assert_eq!(report.replayed, 5); // 3 inserts + 2 deletes
        assert_eq!(report.skipped, 0);
        assert!(!report.torn_tail_dropped);
        assert_eq!(store.index().live_len(), live);
        assert!(store.index().is_live(a));
        assert!(!store.index().is_live(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compact_truncates_journal_and_preserves_answers() {
        let dir = tempdir("compact");
        let path = dir.join("serving.ivf");
        let mut store = MutableStore::create(&path, small_index()).unwrap();
        store.insert(&[0.2, 0.8]).unwrap();
        store.delete(0).unwrap();
        let params = IvfSearchParams::default().nprobe(2).threads(1);
        let before = store.index().search(&[0.0, 0.5], 3, params);

        store.compact().unwrap();
        assert!(!store.index().is_dirty());
        assert_eq!(store.index().search(&[0.0, 0.5], 3, params), before);

        // Reopen: the journal is empty, the checkpoint carries everything.
        drop(store);
        let (store, report) = MutableStore::open(&path).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(store.index().search(&[0.0, 0.5], 3, params), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_between_checkpoint_and_truncation_does_not_double_apply() {
        let dir = tempdir("cursor");
        let path = dir.join("serving.ivf");
        let mut store = MutableStore::create(&path, small_index()).unwrap();
        store.insert(&[0.2, 0.8]).unwrap();
        store.delete(3).unwrap();
        // Simulate the crash window: keep the pre-truncation journal bytes,
        // compact (checkpoint + truncate), then put the old journal back.
        let old_journal = std::fs::read(wal_path(&path)).unwrap();
        store.compact().unwrap();
        let expected_live = store.index().live_len();
        let expected_next = store.index().next_id();
        drop(store);
        std::fs::write(wal_path(&path), &old_journal).unwrap();

        let (store, report) = MutableStore::open(&path).unwrap();
        assert_eq!(report.replayed, 0, "cursor must skip folded records");
        assert_eq!(report.skipped, 2);
        assert_eq!(store.index().live_len(), expected_live);
        assert_eq!(store.index().next_id(), expected_next);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn instruments_track_wal_mutations_and_compaction() {
        let dir = tempdir("obs");
        let path = dir.join("serving.ivf");
        let handle = obs::ObsHandle::enabled();
        let mut store = MutableStore::create(&path, small_index()).unwrap();
        store.set_obs(&handle);

        store
            .insert_batch(&VectorSet::from_rows(vec![vec![0.5, 0.5], vec![8.5, 8.5]]).unwrap())
            .unwrap();
        store.delete(0).unwrap();

        let gauge = |snap: &obs::RegistrySnapshot, name: &str| match snap.get(name) {
            Some(e) => match e.value {
                obs::MetricValue::Gauge(v) => v,
                _ => panic!("{name} has the wrong kind"),
            },
            None => panic!("{name} not registered"),
        };
        let snap = handle.snapshot().unwrap();
        // 2 inserts + 1 delete journalled, one fsync per mutation call.
        assert_eq!(snap.histogram("wal_append_nanos").unwrap().count(), 3);
        assert_eq!(snap.histogram("wal_fsync_nanos").unwrap().count(), 2);
        assert_eq!(gauge(&snap, "wal_unsynced_records"), 0, "all acked");
        assert_eq!(gauge(&snap, "index_append_rows"), 2);
        assert_eq!(gauge(&snap, "index_tombstoned_rows"), 1);
        assert_eq!(gauge(&snap, "index_live_rows"), 5);

        store.compact().unwrap();
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.histogram("compaction_nanos").unwrap().count(), 1);
        assert_eq!(gauge(&snap, "index_append_rows"), 0, "folded into panels");
        assert_eq!(gauge(&snap, "index_tombstoned_rows"), 0, "reclaimed");
        assert_eq!(gauge(&snap, "index_live_rows"), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_from_the_future_is_rejected() {
        let dir = tempdir("future");
        let path = dir.join("serving.ivf");
        let store = MutableStore::create(&path, small_index()).unwrap();
        drop(store);
        // Replace the journal with one that starts beyond the checkpoint.
        let mut w = WalWriter::create(wal_path(&path), 2, 40).unwrap();
        w.append(&encode_op(&MutationOp::Delete { id: 0 })).unwrap();
        w.sync().unwrap();
        drop(w);
        let err = MutableStore::open(&path).unwrap_err();
        assert!(err.is_corruption(), "unexpected class: {err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_after_acked_writes_loses_nothing_acknowledged() {
        let dir = tempdir("torn");
        let path = dir.join("serving.ivf");
        let mut store = MutableStore::create(&path, small_index()).unwrap();
        store.insert(&[0.3, 0.3]).unwrap(); // acked
        drop(store);
        // A torn unacknowledged append at the tail.
        let wal_file = wal_path(&path);
        let mut bytes = std::fs::read(&wal_file).unwrap();
        bytes.extend_from_slice(&[42u8; 5]);
        std::fs::write(&wal_file, &bytes).unwrap();

        let (store, report) = MutableStore::open(&path).unwrap();
        assert!(report.torn_tail_dropped);
        assert_eq!(report.replayed, 1);
        assert!(store.index().is_live(4));
        std::fs::remove_dir_all(&dir).ok();
    }
}
