//! Multi-probe IVF search: tiled coarse routing + streaming list scans,
//! batched over the persistent worker pool.

use knn_graph::Neighbor;
use vecstore::kernels;
use vecstore::parallel::{effective_threads, run_blocks_checked, threads_from_env};
use vecstore::{Error, Result, VectorSet};

use crate::index::IvfIndex;

/// Query rows per fixed batch block.
///
/// The block is both the routing-tile height (64 queries against all `k`
/// centroids per [`kernels::l2_sq_many_to_many`] call) and the unit of work
/// the worker pool schedules.  The boundary depends only on the query count,
/// never on the thread count — the structural rule behind the bit-identical
/// guarantee.
pub const QUERY_BLOCK: usize = 64;

/// Search-time parameters of the IVF index.
#[derive(Clone, Copy, Debug)]
pub struct IvfSearchParams {
    /// Number of closest lists each query probes.  Clamped to `1..=nlist`;
    /// `nprobe = nlist` is an exhaustive (exact) scan.
    pub nprobe: usize,
    /// Worker threads for the batched API (`None` = the `GKM_THREADS`
    /// environment default, like every other engine knob).  Results are
    /// bit-identical at any thread count; threads change wall-clock only.
    pub threads: Option<usize>,
    /// Serve from the SQ8 quantized tier: probed lists stream their `u8`
    /// code panels into an enlarged top-`(r · overfetch)` pool, whose
    /// survivors are re-ranked through the exact `f32` pair kernel.
    /// Requires a quantized index ([`crate::IvfIndex::quantize`]); the
    /// checked batch API reports [`Error::InvalidParameter`] otherwise.
    pub sq8: bool,
    /// Overfetch factor of the SQ8 candidate stage (ignored on the `f32`
    /// path).  Clamped to ≥ 1.  Recall@R is non-decreasing in `overfetch`
    /// (larger pools retain supersets under one total order); when the pool
    /// covers every scanned candidate the re-ranked result is bit-identical
    /// to the exact `f32` search.
    pub overfetch: usize,
    /// Measure per-stage wall-clock time (coarse routing vs list scan vs
    /// re-rank) into [`IvfSearchStats`].  Pay-for-what-you-touch: when
    /// `false` (the default) the search takes no clock readings at all;
    /// when `true` it adds a handful of monotonic-clock reads per query.
    /// Timing never influences results — the bit-identical-at-any-thread-
    /// count guarantee holds with timings on or off.
    pub timings: bool,
}

impl Default for IvfSearchParams {
    fn default() -> Self {
        Self {
            nprobe: 8,
            threads: threads_from_env(),
            sq8: false,
            overfetch: 4,
            timings: false,
        }
    }
}

impl IvfSearchParams {
    /// Sets the number of probed lists.
    #[must_use]
    pub fn nprobe(mut self, nprobe: usize) -> Self {
        self.nprobe = nprobe.max(1);
        self
    }

    /// Sets the worker-thread count of the batched API.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Enables or disables serving from the SQ8 quantized tier.
    #[must_use]
    pub fn sq8(mut self, sq8: bool) -> Self {
        self.sq8 = sq8;
        self
    }

    /// Sets the SQ8 overfetch factor (clamped to ≥ 1).
    #[must_use]
    pub fn overfetch(mut self, overfetch: usize) -> Self {
        self.overfetch = overfetch.max(1);
        self
    }

    /// Enables or disables per-stage timing (see [`IvfSearchParams::timings`]).
    #[must_use]
    pub fn timings(mut self, timings: bool) -> Self {
        self.timings = timings;
        self
    }
}

/// Aggregate cost counters of a (batch) search.
#[derive(Clone, Copy, Debug, Default)]
pub struct IvfSearchStats {
    /// Total distance evaluations: `nlist` coarse evaluations per query plus
    /// every scanned list row (on the SQ8 path: every code row scanned plus
    /// every survivor re-ranked exactly).
    pub distance_evals: u64,
    /// Bytes streamed from the vector panels and append regions: `4·d` per
    /// `f32` row scanned, `d` per SQ8 code row scanned plus `4·d` per
    /// re-ranked survivor **wherever its exact row lives** — panel and
    /// append-region survivors cost the same `4·d` exact-row read and are
    /// counted identically (pinned by the instrumented-scan regression
    /// test).  Coarse routing (centroid) traffic is excluded — it is
    /// identical on both paths.  This is the counter the quantized tier
    /// exists to shrink.
    pub panel_bytes: u64,
    /// Wall-clock nanoseconds spent in coarse routing (centroid tile +
    /// probe selection).  Zero unless [`IvfSearchParams::timings`] is set.
    /// Under a threaded batch the per-block times sum, so this is CPU-ish
    /// time, not elapsed time.
    pub route_nanos: u64,
    /// Wall-clock nanoseconds spent streaming inverted lists (f32 panels or
    /// SQ8 codes, including append regions).  Zero unless timings are on.
    pub scan_nanos: u64,
    /// Wall-clock nanoseconds spent re-ranking SQ8 survivors exactly (zero
    /// on the f32 path).  Zero unless timings are on.
    pub rerank_nanos: u64,
}

impl IvfSearchStats {
    /// Folds another stats record into this one (counters and stage times
    /// add; used to merge per-block stats in block order).
    pub fn merge(&mut self, other: &IvfSearchStats) {
        self.distance_evals += other.distance_evals;
        self.panel_bytes += other.panel_bytes;
        self.route_nanos += other.route_nanos;
        self.scan_nanos += other.scan_nanos;
        self.rerank_nanos += other.rerank_nanos;
    }
}

/// Starts a stage stopwatch when `enabled` (the disabled path takes no
/// clock reading at all — the pay-for-what-you-touch contract).
#[inline]
fn tick(enabled: bool) -> Option<std::time::Instant> {
    if enabled {
        Some(std::time::Instant::now())
    } else {
        None
    }
}

/// Adds the elapsed time since `t` into `slot` and re-arms the stopwatch,
/// so consecutive laps partition one query's wall clock between stages.
#[inline]
fn lap(slot: &mut u64, t: &mut Option<std::time::Instant>) {
    if let Some(prev) = t {
        let now = std::time::Instant::now();
        *slot += now.duration_since(*prev).as_nanos() as u64;
        *t = Some(now);
    }
}

/// Inserts into an ascending pool bounded to `cap` entries, ordered by
/// `(dist, id)` — a total order, so the retained top-`cap` set is independent
/// of insertion order (what makes `nprobe = nlist` exactly brute force).
///
/// Deliberately *not* shared with the similar helpers in `anns`/`knn-graph`:
/// those reject an at-capacity candidate on a distance tie (`cand.dist >=
/// worst.dist`), which is fine for approximate pools but would make the
/// retained set depend on scan order here and break the exactness invariant.
/// This one applies the full `(dist, id)` order on the rejection path too.
fn insert_bounded(pool: &mut Vec<Neighbor>, cand: Neighbor, cap: usize) {
    if pool.len() >= cap {
        if let Some(worst) = pool.last() {
            if (cand.dist, cand.id) >= (worst.dist, worst.id) {
                return;
            }
        }
    }
    let pos = pool.partition_point(|n| (n.dist, n.id) < (cand.dist, cand.id));
    pool.insert(pos, cand);
    if pool.len() > cap {
        pool.pop();
    }
}

/// One SQ8 overfetch-pool entry: the approximate `(dist, id)` key plus where
/// the candidate's exact `f32` row lives, so the re-rank stage can fetch it
/// without an id → row lookup structure.  `list == u32::MAX` marks a panel
/// row (`row` is the panel position); otherwise `row` indexes the append
/// region of list `list`.
#[derive(Clone, Copy, Debug)]
struct ScanCand {
    nb: Neighbor,
    list: u32,
    row: u32,
}

/// Panel-row marker for [`ScanCand::list`] (an index never holds `u32::MAX`
/// lists — the id space itself is capped below that).
const CAND_PANEL: u32 = u32::MAX;

/// [`insert_bounded`] over SQ8 overfetch candidates: the same full
/// `(dist, id)` total order on both the insertion and rejection paths, so
/// the retained overfetch set is independent of scan order — which is what
/// makes recall monotone in `overfetch` and the full-overfetch re-rank
/// bit-identical to the exact scan.
fn insert_bounded_cand(pool: &mut Vec<ScanCand>, cand: ScanCand, cap: usize) {
    if pool.len() >= cap {
        if let Some(worst) = pool.last() {
            if (cand.nb.dist, cand.nb.id) >= (worst.nb.dist, worst.nb.id) {
                return;
            }
        }
    }
    let pos = pool.partition_point(|n| (n.nb.dist, n.nb.id) < (cand.nb.dist, cand.nb.id));
    pool.insert(pos, cand);
    if pool.len() > cap {
        pool.pop();
    }
}

impl IvfIndex {
    /// Returns the (approximate) `r` nearest indexed vectors of `query`,
    /// ascending by `(distance, id)` with original base ids.
    ///
    /// Equivalent to a one-query batch; see [`IvfIndex::batch_search`] for
    /// the throughput-oriented form.
    ///
    /// # Panics
    ///
    /// Panics when `query.len() != self.dim()`.
    pub fn search(&self, query: &[f32], r: usize, params: IvfSearchParams) -> Vec<Neighbor> {
        self.search_with_stats(query, r, params).0
    }

    /// [`IvfIndex::search`] plus cost counters.
    pub fn search_with_stats(
        &self,
        query: &[f32],
        r: usize,
        params: IvfSearchParams,
    ) -> (Vec<Neighbor>, IvfSearchStats) {
        assert_eq!(
            query.len(),
            self.dim(),
            "query dimensionality {} does not match the index's {}",
            query.len(),
            self.dim()
        );
        assert!(
            !params.sq8 || self.is_quantized(),
            "sq8 search requested on an unquantized index; call quantize() first"
        );
        let mut results = Vec::with_capacity(1);
        let stats = self.search_block(query, r, params, &mut results);
        (results.pop().unwrap_or_default(), stats)
    }

    /// Batched multi-probe search: every query row of `queries` is answered
    /// with its `r` nearest indexed vectors (ascending by `(distance, id)`,
    /// original base ids).
    ///
    /// Queries are cut into fixed [`QUERY_BLOCK`]-row blocks executed on the
    /// process-wide [`vecstore::parallel::WorkerPool`] and merged in block
    /// order.  Per-query work is independent and the routing tile is
    /// bit-identical across blockings (the kernel tiling invariant), so the
    /// output equals a sequential per-query loop **bit for bit** at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics when `queries.dim() != self.dim()` (unless `queries` is empty)
    /// and re-raises a contained worker panic as a structured panic; see
    /// [`IvfIndex::batch_search_with_stats`].  Serving callers use
    /// [`IvfIndex::try_batch_search`], which reports both as typed errors.
    pub fn batch_search(
        &self,
        queries: &VectorSet,
        r: usize,
        params: IvfSearchParams,
    ) -> Vec<Vec<Neighbor>> {
        self.batch_search_with_stats(queries, r, params).0
    }

    /// [`IvfIndex::batch_search`] plus aggregate cost counters.
    ///
    /// A thin panicking wrapper over [`IvfIndex::try_batch_search_with_stats`]
    /// — both APIs share one executor loop, so the checked path is the *only*
    /// path and the serving guarantees (pool stays healthy after a contained
    /// worker panic) hold for every caller.  Serving code should call the
    /// `try_` form directly and map the error to a typed response instead.
    ///
    /// # Panics
    ///
    /// Panics when `queries.dim() != self.dim()` (unless `queries` is
    /// empty), or when a worker panic was contained by the pool (the
    /// [`Error::Internal`] case of the checked API).
    pub fn batch_search_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        params: IvfSearchParams,
    ) -> (Vec<Vec<Neighbor>>, IvfSearchStats) {
        match self.try_batch_search_with_stats(queries, r, params) {
            Ok(out) => out,
            Err(Error::DimensionMismatch { expected, found }) => {
                panic!("query dimensionality {found} does not match the index's {expected}")
            }
            Err(e) => panic!("ivf batch search failed: {e}"),
        }
    }

    /// Non-panicking flavour of [`IvfIndex::batch_search`] for serving
    /// callers that must not unwind: a query-dimensionality mismatch becomes
    /// [`Error::DimensionMismatch`] and a contained worker-pool panic becomes
    /// [`Error::Internal`], leaving both the index and the pool usable.  The
    /// `Ok` results are bit-identical to [`IvfIndex::batch_search`].
    pub fn try_batch_search(
        &self,
        queries: &VectorSet,
        r: usize,
        params: IvfSearchParams,
    ) -> Result<Vec<Vec<Neighbor>>> {
        Ok(self.try_batch_search_with_stats(queries, r, params)?.0)
    }

    /// [`IvfIndex::try_batch_search`] plus aggregate cost counters.
    pub fn try_batch_search_with_stats(
        &self,
        queries: &VectorSet,
        r: usize,
        params: IvfSearchParams,
    ) -> Result<(Vec<Vec<Neighbor>>, IvfSearchStats)> {
        if queries.is_empty() {
            return Ok((Vec::new(), IvfSearchStats::default()));
        }
        if queries.dim() != self.dim() {
            return Err(Error::DimensionMismatch {
                expected: self.dim(),
                found: queries.dim(),
            });
        }
        if params.sq8 && !self.is_quantized() {
            return Err(Error::InvalidParameter(
                "sq8 search requested on an unquantized index; quantize (or rebuild with --sq8) \
                 before serving the quantized tier"
                    .to_string(),
            ));
        }
        let nq = queries.len();
        let d = self.dim();
        let n_blocks = nq.div_ceil(QUERY_BLOCK);
        let threads = effective_threads(params.threads);
        let flat = queries.as_flat();
        let per_block = run_blocks_checked(threads, n_blocks, |b| {
            let lo = b * QUERY_BLOCK;
            let hi = ((b + 1) * QUERY_BLOCK).min(nq);
            let mut results = Vec::with_capacity(hi - lo);
            let counters = self.search_block(&flat[lo * d..hi * d], r, params, &mut results);
            (results, counters)
        })?;
        let mut results = Vec::with_capacity(nq);
        let mut stats = IvfSearchStats::default();
        for (block_results, block_stats) in per_block {
            results.extend(block_results);
            stats.merge(&block_stats);
        }
        Ok((results, stats))
    }

    /// Answers one block of queries (`qs` holding whole rows of `self.dim()`
    /// values): routes the block through one `m × k` centroid tile, then
    /// streams each probed list into a bounded pool — on the `f32` path
    /// directly into the top-`r` pool through the batched one-to-many
    /// kernel; on the SQ8 path through the asymmetric code kernel into a
    /// top-`(r · overfetch)` pool whose survivors are re-ranked exactly.
    /// Appends one result vector per query to `results` and returns the
    /// block's cost counters (plus stage times when
    /// [`IvfSearchParams::timings`] is set).
    fn search_block(
        &self,
        qs: &[f32],
        r: usize,
        params: IvfSearchParams,
        results: &mut Vec<Vec<Neighbor>>,
    ) -> IvfSearchStats {
        let d = self.dim();
        let m = qs.len() / d;
        let k = self.nlist();
        let nprobe = self.effective_nprobe(params.nprobe);
        let mut stats = IvfSearchStats::default();
        if r == 0 {
            results.extend(std::iter::repeat_with(Vec::new).take(m));
            return stats;
        }
        let sq8 = if params.sq8 {
            match self.sq8.as_ref() {
                Some(tier) => Some(tier),
                // Both public entry points check before dispatching blocks.
                None => panic!("sq8 search requested on an unquantized index"),
            }
        } else {
            None
        };
        let overfetch_cap = r.saturating_mul(params.overfetch.max(1));

        // Coarse routing: one register-blocked distance tile for the whole
        // block (for m = 1 this is bit-identical to the blocked form, so the
        // per-query loop and the batched API agree exactly).
        let mut clock = tick(params.timings);
        let mut tile = vec![0.0f32; m * k];
        kernels::l2_sq_many_to_many(qs, self.centroids.as_flat(), d, &mut tile);
        lap(&mut stats.route_nanos, &mut clock);
        stats.distance_evals += (m as u64) * (k as u64);

        let panel = self.panel.as_flat();
        // Tombstone filtering costs a bitmap probe per candidate; skip it
        // entirely on the (common) tombstone-free index.
        let filtering = self.tombstoned > 0;
        let mut probes: Vec<Neighbor> = Vec::with_capacity(nprobe + 1);
        let mut dists: Vec<f32> = Vec::new();
        let mut aq: Vec<f32> = vec![0.0; d];
        let mut cands: Vec<ScanCand> = Vec::new();
        for (q, tile_row) in tile.chunks_exact(k).enumerate() {
            // `nprobe` closest lists by (distance, list id) — a total order,
            // so the probe set is independent of the fold order.
            probes.clear();
            for (c, &dist) in tile_row.iter().enumerate() {
                insert_bounded(&mut probes, Neighbor::new(c as u32, dist), nprobe);
            }
            lap(&mut stats.route_nanos, &mut clock);

            let query = &qs[q * d..(q + 1) * d];
            let mut pool: Vec<Neighbor> = Vec::with_capacity(r + 1);
            if let Some(tier) = sq8 {
                // Approximate stage: stream the probed lists' u8 code rows
                // through the asymmetric kernel into the overfetch pool,
                // remembering where each survivor's exact f32 row lives.
                cands.clear();
                for probe in &probes {
                    let c = probe.id as usize;
                    let mins = tier.list_mins(c);
                    let scales = tier.list_scales(c);
                    for (slot, (&qv, &lo)) in aq.iter_mut().zip(query.iter().zip(mins)) {
                        *slot = qv - lo;
                    }
                    let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
                    if lo < hi {
                        dists.resize(hi - lo, 0.0);
                        kernels::l2_sq_sq8_one_to_many(
                            &aq,
                            scales,
                            &tier.codes[lo * d..hi * d],
                            &mut dists,
                        );
                        stats.distance_evals += (hi - lo) as u64;
                        stats.panel_bytes += ((hi - lo) * d) as u64;
                        for (p, &dist) in (lo..hi).zip(&dists) {
                            let id = self.ids[p];
                            if filtering && !self.live.get(id) {
                                continue;
                            }
                            let cand = ScanCand {
                                nb: Neighbor::new(id, dist),
                                list: CAND_PANEL,
                                row: p as u32,
                            };
                            insert_bounded_cand(&mut cands, cand, overfetch_cap);
                        }
                    }
                    let ap = &self.appends[c];
                    if !ap.ids.is_empty() {
                        let codes = &tier.append_codes[c];
                        dists.resize(ap.ids.len(), 0.0);
                        kernels::l2_sq_sq8_one_to_many(&aq, scales, codes, &mut dists);
                        stats.distance_evals += ap.ids.len() as u64;
                        stats.panel_bytes += codes.len() as u64;
                        for (j, (&id, &dist)) in ap.ids.iter().zip(&dists).enumerate() {
                            if filtering && !self.live.get(id) {
                                continue;
                            }
                            let cand = ScanCand {
                                nb: Neighbor::new(id, dist),
                                list: c as u32,
                                row: j as u32,
                            };
                            insert_bounded_cand(&mut cands, cand, overfetch_cap);
                        }
                    }
                }
                lap(&mut stats.scan_nanos, &mut clock);
                // Exact stage: re-rank every survivor through the pairwise
                // kernel — the same arithmetic the f32 scan applies per row,
                // so at full overfetch the result is bit-identical to it.
                for cand in &cands {
                    let row = if cand.list == CAND_PANEL {
                        let p = cand.row as usize;
                        &panel[p * d..(p + 1) * d]
                    } else {
                        let ap = &self.appends[cand.list as usize];
                        let j = cand.row as usize;
                        &ap.flat[j * d..(j + 1) * d]
                    };
                    let exact = vecstore::distance::l2_sq(query, row);
                    insert_bounded(&mut pool, Neighbor::new(cand.nb.id, exact), r);
                }
                // Every survivor costs one exact-row read, whether its f32
                // row lives in the contiguous panel or an append region —
                // both are d × 4 bytes.
                stats.distance_evals += cands.len() as u64;
                stats.panel_bytes += (cands.len() * d * 4) as u64;
                lap(&mut stats.rerank_nanos, &mut clock);
            } else {
                for probe in &probes {
                    let c = probe.id as usize;
                    let (lo, hi) = (self.offsets[c], self.offsets[c + 1]);
                    if lo < hi {
                        dists.resize(hi - lo, 0.0);
                        kernels::l2_sq_one_to_many(query, &panel[lo * d..hi * d], &mut dists);
                        stats.distance_evals += (hi - lo) as u64;
                        stats.panel_bytes += ((hi - lo) * d * 4) as u64;
                        for (p, &dist) in (lo..hi).zip(&dists) {
                            let id = self.ids[p];
                            if filtering && !self.live.get(id) {
                                continue;
                            }
                            insert_bounded(&mut pool, Neighbor::new(id, dist), r);
                        }
                    }
                    // The list's append region — vectors inserted since the
                    // last compaction — streams through the same kernel into
                    // the same pool: one total order over panel + appends, so
                    // every exactness/monotonicity property survives
                    // mutation.
                    let ap = &self.appends[c];
                    if !ap.ids.is_empty() {
                        dists.resize(ap.ids.len(), 0.0);
                        kernels::l2_sq_one_to_many(query, &ap.flat, &mut dists);
                        stats.distance_evals += ap.ids.len() as u64;
                        stats.panel_bytes += (ap.ids.len() * d * 4) as u64;
                        for (&id, &dist) in ap.ids.iter().zip(&dists) {
                            if filtering && !self.live.get(id) {
                                continue;
                            }
                            insert_bounded(&mut pool, Neighbor::new(id, dist), r);
                        }
                    }
                }
                lap(&mut stats.scan_nanos, &mut clock);
            }
            results.push(pool);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use vecstore::distance::l2_sq;
    use vecstore::sample::rng_from_seed;

    /// Integer-lattice corpus: distances are exact small integers in f32, so
    /// every kernel tier agrees bit for bit and brute-force comparisons are
    /// exact rather than tolerance-based.
    fn lattice(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            rows.push((0..dim).map(|_| rng.gen_range(0..7) as f32).collect());
        }
        VectorSet::from_rows(rows).unwrap()
    }

    /// Exhaustive top-`r` by `(dist, id)` through the pairwise kernel.
    fn brute_top_r(data: &VectorSet, query: &[f32], r: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = data
            .rows()
            .enumerate()
            .map(|(i, row)| Neighbor::new(i as u32, l2_sq(query, row)))
            .collect();
        all.sort_by(|a, b| (a.dist, a.id).partial_cmp(&(b.dist, b.id)).unwrap());
        all.truncate(r);
        all
    }

    /// A small fitted index: k lists over a lattice corpus, labels from a
    /// nearest-centroid assignment so lists have real locality.
    fn fitted_index(n: usize, dim: usize, k: usize, seed: u64) -> (VectorSet, IvfIndex) {
        let data = lattice(n, dim, seed);
        let centroids = data.gather(&(0..k).collect::<Vec<_>>()).unwrap();
        let labels: Vec<usize> = data
            .rows()
            .map(|row| {
                brute_top_r(&centroids, row, 1)
                    .first()
                    .map(|n| n.id as usize)
                    .unwrap()
            })
            .collect();
        let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
        (data, index)
    }

    #[test]
    fn full_probe_equals_brute_force_exactly() {
        let (data, index) = fitted_index(120, 4, 9, 3);
        let queries = lattice(17, 4, 77);
        let params = IvfSearchParams::default().nprobe(index.nlist()).threads(1);
        let results = index.batch_search(&queries, 5, params);
        for (q, query) in queries.rows().enumerate() {
            let truth = brute_top_r(&data, query, 5);
            assert_eq!(results[q], truth, "query {q}");
        }
    }

    #[test]
    fn batched_equals_per_query_loop_bit_for_bit() {
        let (_, index) = fitted_index(150, 3, 8, 5);
        let queries = lattice(70, 3, 99); // > QUERY_BLOCK with a short tail
        let params = IvfSearchParams::default().nprobe(3).threads(1);
        let batched = index.batch_search(&queries, 4, params);
        for (q, query) in queries.rows().enumerate() {
            assert_eq!(batched[q], index.search(query, 4, params), "query {q}");
        }
    }

    #[test]
    fn results_are_sorted_with_original_ids_and_exact_distances() {
        let (data, index) = fitted_index(90, 5, 6, 8);
        let q = data.row(31).to_vec();
        let (res, stats) = index.search_with_stats(&q, 7, IvfSearchParams::default().nprobe(2));
        assert!(!res.is_empty());
        assert_eq!(res[0].id, 31, "the query point itself must win");
        assert_eq!(res[0].dist, 0.0);
        for w in res.windows(2) {
            assert!((w[0].dist, w[0].id) <= (w[1].dist, w[1].id));
        }
        for nb in &res {
            assert_eq!(nb.dist, l2_sq(&q, data.row(nb.id as usize)));
        }
        // routing cost (nlist) plus at least one scanned row
        assert!(stats.distance_evals > index.nlist() as u64);
    }

    #[test]
    fn degenerate_inputs() {
        let (_, index) = fitted_index(40, 3, 5, 11);
        // r = 0
        assert!(index
            .search(&[0.0, 0.0, 0.0], 0, IvfSearchParams::default())
            .is_empty());
        // no queries
        let empty = VectorSet::zeros(0, 3).unwrap();
        assert!(index
            .batch_search(&empty, 3, IvfSearchParams::default())
            .is_empty());
        // r larger than the probed candidate count still returns what exists
        let res = index.search(
            &[1.0, 1.0, 1.0],
            1000,
            IvfSearchParams::default().nprobe(index.nlist()),
        );
        assert_eq!(res.len(), index.len());
        // empty index: routing works, every result list is empty
        let data = VectorSet::zeros(0, 2).unwrap();
        let centroids = VectorSet::from_rows(vec![vec![0.0, 0.0]]).unwrap();
        let idx = IvfIndex::build(&data, &centroids, &[]).unwrap();
        assert!(idx
            .search(&[1.0, 2.0], 3, IvfSearchParams::default())
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn mismatched_query_dim_panics() {
        let (_, index) = fitted_index(20, 3, 4, 13);
        let _ = index.search(&[0.0, 0.0], 1, IvfSearchParams::default());
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn mismatched_batch_query_dim_panics_via_checked_path() {
        // batch_search is a wrapper over the checked executor; the legacy
        // panic contract (message included) must survive the delegation.
        let (_, index) = fitted_index(20, 3, 4, 13);
        let queries = lattice(3, 2, 1);
        let _ = index.batch_search(&queries, 1, IvfSearchParams::default());
    }

    #[test]
    fn try_batch_search_matches_batch_search_and_reports_errors() {
        let (_, index) = fitted_index(150, 3, 8, 5);
        let queries = lattice(70, 3, 99);
        for threads in [1usize, 4] {
            let params = IvfSearchParams::default().nprobe(3).threads(threads);
            let (checked, stats) = index
                .try_batch_search_with_stats(&queries, 4, params)
                .unwrap();
            let (plain, plain_stats) = index.batch_search_with_stats(&queries, 4, params);
            assert_eq!(checked, plain, "threads={threads}");
            assert_eq!(stats.distance_evals, plain_stats.distance_evals);
        }
        // Dimension mismatch is an error, not a panic.
        let bad = lattice(3, 2, 1);
        assert!(matches!(
            index
                .try_batch_search(&bad, 2, IvfSearchParams::default())
                .unwrap_err(),
            Error::DimensionMismatch {
                expected: 3,
                found: 2
            }
        ));
        // Empty query set short-circuits.
        let empty = VectorSet::zeros(0, 3).unwrap();
        assert!(index
            .try_batch_search(&empty, 2, IvfSearchParams::default())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn nprobe_is_clamped() {
        let (_, index) = fitted_index(30, 2, 4, 17);
        let q = [1.0f32, 2.0];
        // nprobe far above nlist behaves as an exhaustive scan
        let a = index.search(&q, 3, IvfSearchParams::default().nprobe(10_000));
        let b = index.search(&q, 3, IvfSearchParams::default().nprobe(index.nlist()));
        assert_eq!(a, b);
    }
}
