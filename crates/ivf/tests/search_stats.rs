//! `IvfSearchStats` accounting and stage-timing properties (ISSUE 10):
//!
//! * **instrumented-scan regression** — `panel_bytes` must equal a
//!   from-first-principles byte count of every stage, with survivors drawn
//!   from append regions, under tombstones and at partial `nprobe` (the
//!   audit of the claimed SQ8 re-rank under-report: panel and append
//!   survivors both cost `4·d` and must be counted identically);
//! * **pay-for-what-you-touch** — timings off ⇒ zero stage nanos and no
//!   behavioural difference; timings on ⇒ stages are populated and results
//!   stay bit-identical at threads ∈ {1, 2, 4, 7}.

use baselines::common::KMeansConfig;
use baselines::lloyd::LloydKMeans;
use ivf::{IvfIndex, IvfSearchParams};
use rand::Rng;
use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let g = (i % 10) as f32 * 1.3;
        rows.push((0..dim).map(|_| g + rng.gen_range(-1.0..1.0)).collect());
    }
    VectorSet::from_rows(rows).unwrap()
}

/// A quantized index with real append regions and tombstones, plus the
/// centroid set the test keeps for its own instrumented routing.
fn mutated_quantized_index(seed: u64) -> (IvfIndex, VectorSet) {
    let base = clustered(500, 6, seed);
    let fit = LloydKMeans::new(KMeansConfig::with_k(12).max_iters(15).seed(seed)).fit(&base);
    let mut index = IvfIndex::build(&base, &fit.centroids, &fit.labels).unwrap();
    index.quantize();
    // Appends across many lists so overfetch survivors come from them...
    let mut rng = rng_from_seed(seed ^ 0xa11);
    let n0 = index.len() as u32;
    for i in 0..80u32 {
        let g = (i % 10) as f32 * 1.3;
        let v: Vec<f32> = (0..6).map(|_| g + rng.gen_range(-1.0..1.0)).collect();
        index.apply_insert(n0 + i, &v).unwrap();
    }
    // ...and tombstones in both the panel and the append regions.
    for id in [3u32, 57, 110, 433, n0 + 5, n0 + 41] {
        assert!(index.delete(id));
    }
    (index, fit.centroids)
}

/// Instrumented scan: recomputes, from first principles, the bytes every
/// stage of a search streams — the probe sets from an independent routing
/// pass, the code/panel bytes from the probed lists' row counts, and the
/// re-rank bytes from the number of **live** scanned candidates capped by
/// the overfetch pool.
fn expected_stats(
    index: &IvfIndex,
    centroids: &VectorSet,
    queries: &VectorSet,
    r: usize,
    nprobe: usize,
    sq8: bool,
    overfetch: usize,
) -> (u64, u64) {
    let d = index.dim();
    let mut evals = 0u64;
    let mut bytes = 0u64;
    for query in queries.rows() {
        // Independent coarse routing: nprobe smallest (distance, list id).
        let mut by_dist: Vec<(f32, usize)> = centroids
            .rows()
            .enumerate()
            .map(|(c, row)| (l2_sq(query, row), c))
            .collect();
        by_dist.sort_by(|a, b| a.partial_cmp(b).unwrap());
        evals += centroids.len() as u64;
        let mut scanned = 0u64; // all scanned rows (tombstoned included)
        let mut live_scanned = 0u64; // rows eligible for the candidate pool
        for &(_, c) in by_dist.iter().take(nprobe.min(centroids.len())) {
            let (_, panel_ids) = index.list(c);
            let (_, append_ids) = index.append_list(c);
            scanned += (panel_ids.len() + append_ids.len()) as u64;
            live_scanned += panel_ids
                .iter()
                .chain(append_ids)
                .filter(|&&id| index.is_live(id))
                .count() as u64;
        }
        evals += scanned;
        if sq8 {
            // d bytes per scanned code row (panel and append shadows alike),
            // then 4·d per re-ranked survivor — the pool retains every live
            // scanned candidate up to r · overfetch, wherever its exact f32
            // row lives.
            bytes += scanned * d as u64;
            let survivors = live_scanned.min((r * overfetch) as u64);
            evals += survivors;
            bytes += survivors * (d * 4) as u64;
        } else {
            bytes += scanned * (d * 4) as u64;
        }
    }
    (evals, bytes)
}

#[test]
fn sq8_panel_bytes_match_an_instrumented_scan_with_append_survivors() {
    let (index, centroids) = mutated_quantized_index(29);
    assert!(index.pending_appends() > 0, "appends must exist");
    assert!(index.tombstoned() > 0, "tombstones must exist");
    let queries = clustered(40, 6, 91);
    let r = 10;
    for nprobe in [1usize, 3, index.nlist()] {
        for overfetch in [1usize, 4, 1000] {
            let params = IvfSearchParams::default()
                .nprobe(nprobe)
                .threads(1)
                .sq8(true)
                .overfetch(overfetch);
            let (_, stats) = index
                .try_batch_search_with_stats(&queries, r, params)
                .unwrap();
            let (evals, bytes) =
                expected_stats(&index, &centroids, &queries, r, nprobe, true, overfetch);
            assert_eq!(
                stats.panel_bytes, bytes,
                "nprobe = {nprobe}, overfetch = {overfetch}: counted panel bytes \
                 diverge from the instrumented scan"
            );
            assert_eq!(
                stats.distance_evals, evals,
                "nprobe = {nprobe}, overfetch = {overfetch}: distance evals diverge"
            );
        }
    }
}

#[test]
fn f32_panel_bytes_match_an_instrumented_scan() {
    let (index, centroids) = mutated_quantized_index(31);
    let queries = clustered(25, 6, 17);
    for nprobe in [2usize, index.nlist()] {
        let params = IvfSearchParams::default().nprobe(nprobe).threads(1);
        let (_, stats) = index
            .try_batch_search_with_stats(&queries, 8, params)
            .unwrap();
        let (evals, bytes) = expected_stats(&index, &centroids, &queries, 8, nprobe, false, 1);
        assert_eq!(stats.panel_bytes, bytes, "nprobe = {nprobe}");
        assert_eq!(stats.distance_evals, evals, "nprobe = {nprobe}");
    }
}

#[test]
fn rerank_bytes_count_append_survivors_like_panel_survivors() {
    // Force *every* survivor into the overfetch pool from an append region:
    // an empty build (no panel rows) followed by inserts only.  If append
    // survivors were dropped from the re-rank accounting, panel_bytes here
    // would miss the entire 4·d·survivors term.
    let d = 4usize;
    let centroids = clustered(3, d, 5);
    let empty = VectorSet::zeros(0, d).unwrap();
    let mut index = IvfIndex::build(&empty, &centroids, &[]).unwrap();
    index.quantize();
    for i in 0..30u32 {
        let v: Vec<f32> = (0..d).map(|j| (i as usize + j) as f32).collect();
        index.apply_insert(i, &v).unwrap();
    }
    let queries = clustered(6, d, 55);
    let r = 5;
    let overfetch = 2;
    let params = IvfSearchParams::default()
        .nprobe(index.nlist())
        .threads(1)
        .sq8(true)
        .overfetch(overfetch);
    let (results, stats) = index
        .try_batch_search_with_stats(&queries, r, params)
        .unwrap();
    assert!(results.iter().all(|r| !r.is_empty()));
    let n = 30u64;
    let survivors = n.min((r * overfetch) as u64);
    let expected = queries.len() as u64 * (n * d as u64 + survivors * (d * 4) as u64);
    assert_eq!(
        stats.panel_bytes, expected,
        "all-append survivors must contribute 4·d each to the re-rank bytes"
    );
}

#[test]
fn timings_are_zero_when_disabled_and_populated_when_enabled() {
    let (index, _) = mutated_quantized_index(37);
    let queries = clustered(96, 6, 23);
    let off = IvfSearchParams::default().nprobe(6).threads(1).sq8(true);
    let (res_off, stats_off) = index.try_batch_search_with_stats(&queries, 9, off).unwrap();
    assert_eq!(stats_off.route_nanos, 0);
    assert_eq!(stats_off.scan_nanos, 0);
    assert_eq!(stats_off.rerank_nanos, 0);

    let on = off.timings(true);
    let (res_on, stats_on) = index.try_batch_search_with_stats(&queries, 9, on).unwrap();
    assert_eq!(res_on, res_off, "timing must never change results");
    assert_eq!(stats_on.distance_evals, stats_off.distance_evals);
    assert_eq!(stats_on.panel_bytes, stats_off.panel_bytes);
    assert!(stats_on.route_nanos > 0, "routing was measured");
    assert!(stats_on.scan_nanos > 0, "scanning was measured");
    assert!(stats_on.rerank_nanos > 0, "re-ranking was measured");

    // The f32 path measures route + scan and leaves rerank at zero.
    let f32_on = IvfSearchParams::default()
        .nprobe(6)
        .threads(1)
        .timings(true);
    let (_, f32_stats) = index
        .try_batch_search_with_stats(&queries, 9, f32_on)
        .unwrap();
    assert!(f32_stats.route_nanos > 0);
    assert!(f32_stats.scan_nanos > 0);
    assert_eq!(
        f32_stats.rerank_nanos, 0,
        "no re-rank stage on the f32 path"
    );
}

#[test]
fn results_stay_bit_identical_across_thread_counts_with_timings_on() {
    let (index, _) = mutated_quantized_index(41);
    let queries = clustered(333, 6, 73); // several blocks + unaligned tail
    for sq8 in [false, true] {
        let params = IvfSearchParams::default()
            .nprobe(5)
            .sq8(sq8)
            .overfetch(4)
            .timings(true);
        let (reference, ref_stats) = index
            .try_batch_search_with_stats(&queries, 7, params.threads(1))
            .unwrap();
        for threads in [2usize, 4, 7] {
            let (got, stats) = index
                .try_batch_search_with_stats(&queries, 7, params.threads(threads))
                .unwrap();
            assert_eq!(got, reference, "sq8 = {sq8}, threads = {threads}");
            assert_eq!(
                stats.distance_evals, ref_stats.distance_evals,
                "sq8 = {sq8}, threads = {threads}: distance_evals must be thread-invariant"
            );
            assert_eq!(
                stats.panel_bytes, ref_stats.panel_bytes,
                "sq8 = {sq8}, threads = {threads}: panel_bytes must be thread-invariant"
            );
        }
    }
}
