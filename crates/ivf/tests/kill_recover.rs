//! Kill-and-recover loop: SIGKILL a child process mid-mutation-storm and
//! prove **zero acknowledged-write loss**.
//!
//! The child (an env-gated `#[ignore]` test in this same binary, re-executed
//! via `current_exe`) runs an insert/delete/compact storm against a
//! [`MutableStore`], printing `ACK <next_seq>` *after* each group-committed
//! batch returns — i.e. after journal + fsync + apply.  The parent reads a
//! handful of acks, SIGKILLs the child at an arbitrary point in its loop,
//! reopens the store, and asserts the recovered sequence cursor covers every
//! acknowledged batch.  Several cycles continue the *same* store, so later
//! children recover from earlier kills, and compaction's
//! checkpoint-then-truncate window is crossed repeatedly under fire.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Command, Stdio};

use ivf::{IvfIndex, IvfSearchParams, MutableStore};
use vecstore::VectorSet;

/// Env var carrying the store path; its presence turns the child test on.
const CHILD_ENV: &str = "GKM_KILL_RECOVER_STORE";

/// Same, for the SQ8 variant of the loop (quantized seed checkpoint).
const CHILD_ENV_SQ8: &str = "GKM_KILL_RECOVER_STORE_SQ8";

fn seed_index() -> IvfIndex {
    let rows: Vec<Vec<f32>> = (0..8)
        .map(|i| vec![(i % 2) as f32 * 9.0, i as f32 * 0.5])
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = VectorSet::from_rows(vec![vec![0.0, 2.0], vec![9.0, 2.0]]).unwrap();
    let labels: Vec<usize> = (0..8).map(|i| i % 2).collect();
    IvfIndex::build(&data, &centroids, &labels).unwrap()
}

/// Child half: storm the store forever, acking each durable batch on stdout.
/// Runs only when re-executed by the parent with [`CHILD_ENV`] set.
#[test]
#[ignore = "child half of the kill_and_recover_loses_no_acknowledged_write loop"]
fn child_insert_storm() {
    let Ok(path) = std::env::var(CHILD_ENV) else {
        return;
    };
    let index_path = PathBuf::from(path);
    let mut store = if index_path.exists() {
        MutableStore::open(&index_path).unwrap().0
    } else {
        MutableStore::create(&index_path, seed_index()).unwrap()
    };
    let mut round = store.next_seq();
    loop {
        let rows: Vec<Vec<f32>> = (0..2)
            .map(|j| vec![round as f32 + j as f32, -(round as f32)])
            .collect();
        let ids = store
            .insert_batch(&VectorSet::from_rows(rows).unwrap())
            .unwrap();
        if round % 3 == 0 {
            store.delete(ids[0]).unwrap();
        }
        if round % 7 == 0 {
            store.compact().unwrap();
        }
        // Everything above returned: journalled, fsynced, applied.  Only now
        // is the batch acknowledged.
        println!("ACK {}", store.next_seq());
        round += 1;
    }
}

/// SQ8 child half: identical storm, but the seed checkpoint carries a
/// quantized tier — every journalled insert must also encode into the
/// frozen-parameter code shadow, and every compaction must re-fit it.
#[test]
#[ignore = "child half of the kill_and_recover_preserves_the_sq8_tier loop"]
fn child_insert_storm_sq8() {
    let Ok(path) = std::env::var(CHILD_ENV_SQ8) else {
        return;
    };
    let index_path = PathBuf::from(path);
    let mut store = if index_path.exists() {
        MutableStore::open(&index_path).unwrap().0
    } else {
        let mut index = seed_index();
        index.quantize();
        MutableStore::create(&index_path, index).unwrap()
    };
    assert!(store.index().is_quantized(), "storm must run quantized");
    let mut round = store.next_seq();
    loop {
        let rows: Vec<Vec<f32>> = (0..2)
            .map(|j| vec![round as f32 + j as f32, -(round as f32)])
            .collect();
        let ids = store
            .insert_batch(&VectorSet::from_rows(rows).unwrap())
            .unwrap();
        if round % 3 == 0 {
            store.delete(ids[0]).unwrap();
        }
        if round % 7 == 0 {
            store.compact().unwrap();
        }
        println!("ACK {}", store.next_seq());
        round += 1;
    }
}

#[test]
fn kill_and_recover_loses_no_acknowledged_write() {
    let dir = std::env::temp_dir().join(format!("gkm-kill-recover-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let index_path = dir.join("storm.ivf");

    let mut last_acked = 0u64;
    for cycle in 0..4 {
        let mut child = Command::new(std::env::current_exe().unwrap())
            .args(["child_insert_storm", "--exact", "--ignored", "--nocapture"])
            .env(CHILD_ENV, &index_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
        let mut acks = 0;
        while acks < 5 {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("cycle {cycle}: child exited after {acks} acks"))
                .unwrap();
            if let Some(seq) = line.strip_prefix("ACK ") {
                let seq: u64 = seq.trim().parse().unwrap();
                assert!(
                    seq >= last_acked,
                    "cycle {cycle}: ack cursor went backwards"
                );
                last_acked = seq;
                acks += 1;
            }
        }
        // SIGKILL: no destructors, no flush — whatever is mid-flight is torn.
        child.kill().unwrap();
        child.wait().unwrap();

        let (store, report) = MutableStore::open(&index_path)
            .unwrap_or_else(|e| panic!("cycle {cycle}: recovery after SIGKILL failed: {e}"));
        assert!(
            store.next_seq() >= last_acked,
            "cycle {cycle}: lost acknowledged writes — recovered cursor {} < acked {last_acked}",
            store.next_seq()
        );
        // Accounting balances: the in-memory cursor equals the journal cursor
        // (every surviving record below it was applied or provably skipped),
        // and the live set still contains the whole seed corpus (the storm
        // only ever deletes its own appends).
        assert_eq!(store.index().applied_seq(), store.next_seq());
        assert!(report.replayed as u64 <= store.next_seq());
        assert!(store.index().live_len() >= 8, "seed rows must survive");
        drop(store);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The SIGKILL loop over a *quantized* store: recovery must preserve the SQ8
/// tier across WAL replay and mid-compaction kills, and the quantized search
/// path must keep serving exact self-hits after every recovery.
#[test]
fn kill_and_recover_preserves_the_sq8_tier() {
    let dir = std::env::temp_dir().join(format!("gkm-kill-recover-sq8-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let index_path = dir.join("storm.ivf");

    let mut last_acked = 0u64;
    for cycle in 0..4 {
        let mut child = Command::new(std::env::current_exe().unwrap())
            .args([
                "child_insert_storm_sq8",
                "--exact",
                "--ignored",
                "--nocapture",
            ])
            .env(CHILD_ENV_SQ8, &index_path)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
        let mut acks = 0;
        while acks < 5 {
            let line = lines
                .next()
                .unwrap_or_else(|| panic!("cycle {cycle}: child exited after {acks} acks"))
                .unwrap();
            if let Some(seq) = line.strip_prefix("ACK ") {
                let seq: u64 = seq.trim().parse().unwrap();
                assert!(
                    seq >= last_acked,
                    "cycle {cycle}: ack cursor went backwards"
                );
                last_acked = seq;
                acks += 1;
            }
        }
        child.kill().unwrap();
        child.wait().unwrap();

        let (store, _report) = MutableStore::open(&index_path)
            .unwrap_or_else(|e| panic!("cycle {cycle}: recovery after SIGKILL failed: {e}"));
        assert!(
            store.next_seq() >= last_acked,
            "cycle {cycle}: lost acknowledged writes — recovered cursor {} < acked {last_acked}",
            store.next_seq()
        );
        let index = store.index();
        assert!(
            index.is_quantized(),
            "cycle {cycle}: the SQ8 tier must survive recovery"
        );
        // Quantized serving still works: at full overfetch the exact re-rank
        // returns a seed vector's own row at distance 0.
        let params = IvfSearchParams::default()
            .nprobe(index.nlist())
            .threads(1)
            .sq8(true)
            .overfetch(index.len() + index.pending_appends());
        let (rows, _) = index.list(0);
        if rows.len() >= 2 {
            let hit = index.search(&rows[..2], 1, params)[0];
            assert_eq!(
                hit.dist, 0.0,
                "cycle {cycle}: quantized self-hit must re-rank to exact"
            );
        }
        drop(store);
    }
    std::fs::remove_dir_all(&dir).ok();
}
