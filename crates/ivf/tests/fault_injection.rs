//! Fault-injection sweep over a *saved IVF index*: end-to-end proof that the
//! serving layer inherits the GKSC v2 "no panic, no garbage" contract.
//!
//! * every strict truncation of a saved index fails to load, with a typed
//!   corruption error;
//! * every single bit-flip fails to load (v2 covers every byte with exactly
//!   one checksum);
//! * corruption injected *behind* valid checksums (a re-checksummed file
//!   with broken cross-section invariants) is still rejected;
//! * legacy unchecksummed v1 images never panic the loader, and whenever one
//!   does load its answers are bit-identical to the uncorrupted index or it
//!   errors — never silently different (flips that change payload semantics
//!   are caught by the cross-section invariants or change nothing we query);
//! * a torn save (modelled by truncating the file in place) is detected, and
//!   re-saving restores a loadable index.

use std::io::Cursor;

use ivf::{IvfIndex, IvfSearchParams};
use vecstore::fault::{corrupt, Fault};
use vecstore::io::{read_sections_from, write_sections_to, write_sections_v1_to, Section};
use vecstore::{Error, StoreError, VectorSet};

/// A small but non-trivial index: 3 lists over 18 points in 3-D, one list
/// empty-ish patterns avoided so every section carries payload.
fn sample_index() -> IvfIndex {
    let rows: Vec<Vec<f32>> = (0..18)
        .map(|i| {
            let g = (i % 3) as f32 * 10.0;
            vec![g + i as f32 * 0.25, g - i as f32 * 0.5, (i * i % 7) as f32]
        })
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = VectorSet::from_rows(vec![vec![0.0; 3], vec![10.0; 3], vec![20.0; 3]]).unwrap();
    let labels: Vec<usize> = (0..18).map(|i| i % 3).collect();
    IvfIndex::build(&data, &centroids, &labels).unwrap()
}

/// The same index with its SQ8 tier fitted, so the saved image carries the
/// `IVFSQ` + `IVFPNL8` sections too.
fn quantized_sample_index() -> IvfIndex {
    let mut index = sample_index();
    index.quantize();
    index
}

fn saved_image(index: &IvfIndex) -> Vec<u8> {
    let mut buf = Vec::new();
    index.write_to(&mut buf).unwrap();
    buf
}

fn queries() -> VectorSet {
    VectorSet::from_rows(vec![
        vec![0.5, -0.5, 2.0],
        vec![10.0, 9.0, 1.0],
        vec![19.0, 18.5, 4.0],
    ])
    .unwrap()
}

#[test]
fn every_truncation_of_a_saved_index_is_detected() {
    let image = saved_image(&sample_index());
    for cut in 0..image.len() {
        let maimed = corrupt(&image, Fault::Truncate(cut));
        let err = IvfIndex::read_from(Cursor::new(maimed))
            .err()
            .unwrap_or_else(|| panic!("truncation at byte {cut} must not load"));
        assert!(err.is_corruption(), "cut={cut}: unexpected class {err}");
    }
}

#[test]
fn every_single_bit_flip_of_a_saved_index_is_detected() {
    let image = saved_image(&sample_index());
    for byte in 0..image.len() {
        for bit in 0..8u8 {
            let maimed = corrupt(&image, Fault::FlipBit { byte, bit });
            let err = IvfIndex::read_from(Cursor::new(maimed))
                .err()
                .unwrap_or_else(|| panic!("flip of byte {byte} bit {bit} must not load"));
            assert!(
                err.is_corruption(),
                "byte={byte} bit={bit}: unexpected class {err}"
            );
        }
    }
}

/// The same truncation sweep over an image carrying the SQ8 sections: the
/// quantized tier inherits the container contract byte for byte.
#[test]
fn every_truncation_of_a_quantized_index_is_detected() {
    let image = saved_image(&quantized_sample_index());
    for cut in 0..image.len() {
        let maimed = corrupt(&image, Fault::Truncate(cut));
        let err = IvfIndex::read_from(Cursor::new(maimed))
            .err()
            .unwrap_or_else(|| panic!("truncation at byte {cut} must not load"));
        assert!(err.is_corruption(), "cut={cut}: unexpected class {err}");
    }
}

/// Every single bit-flip of a quantized image — including flips landing in
/// the `IVFSQ` parameter floats and the `IVFPNL8` code bytes — fails to load
/// with a typed corruption error.
#[test]
fn every_single_bit_flip_of_a_quantized_index_is_detected() {
    let image = saved_image(&quantized_sample_index());
    for byte in 0..image.len() {
        for bit in 0..8u8 {
            let maimed = corrupt(&image, Fault::FlipBit { byte, bit });
            let err = IvfIndex::read_from(Cursor::new(maimed))
                .err()
                .unwrap_or_else(|| panic!("flip of byte {byte} bit {bit} must not load"));
            assert!(
                err.is_corruption(),
                "byte={byte} bit={bit}: unexpected class {err}"
            );
        }
    }
}

/// A hostile declared length on either SQ8 section is rejected before any
/// allocation is attempted: the framing sanity-checks the length against the
/// remaining bytes (and the 1 TiB bound) before trusting it.
#[test]
fn hostile_sq8_section_lengths_never_allocate() {
    let image = saved_image(&quantized_sample_index());
    for tag in [&b"IVFSQ   "[..], &b"IVFPNL8 "[..]] {
        let at = image.windows(8).position(|w| w == tag).unwrap_or_else(|| {
            panic!(
                "section {} missing from the image",
                String::from_utf8_lossy(tag)
            )
        });
        for hostile in [u64::MAX, 1 << 62, 1 << 40, 1 << 30] {
            let mut maimed = image.clone();
            maimed[at + 8..at + 16].copy_from_slice(&hostile.to_le_bytes());
            let err = IvfIndex::read_from(Cursor::new(maimed))
                .err()
                .unwrap_or_else(|| {
                    panic!(
                        "hostile length {hostile:#x} on {} must not load",
                        String::from_utf8_lossy(tag)
                    )
                });
            assert!(
                err.is_corruption(),
                "hostile length {hostile:#x}: unexpected class {err}"
            );
        }
    }
}

/// Corruption *behind* valid checksums, quantized edition: dropping either
/// SQ8 section while keeping the other (with fresh, correct CRCs) breaks the
/// both-or-neither pairing invariant.
#[test]
fn sq8_sections_behind_valid_checksums_must_pair() {
    let image = saved_image(&quantized_sample_index());
    let sections = read_sections_from(Cursor::new(image)).unwrap();
    for victim in ["IVFSQ", "IVFPNL8"] {
        let kept: Vec<Section> = sections
            .iter()
            .filter(|s| !s.has_tag(victim))
            .cloned()
            .collect();
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &kept).unwrap();
        let err = IvfIndex::read_from(Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(&err, Error::Store(StoreError::Invariant { .. })),
            "dropped {victim}: unexpected error {err}"
        );
    }
}

/// Corruption *behind* valid checksums: decode the container, break a
/// cross-section invariant, re-encode with fresh (correct) CRCs.  The
/// checksum layer is happy; the semantic layer must still refuse.
#[test]
fn re_checksummed_invariant_violations_are_rejected() {
    let image = saved_image(&sample_index());
    let sections = read_sections_from(Cursor::new(image)).unwrap();

    let mutate = |f: &dyn Fn(&mut Vec<Section>)| -> Error {
        let mut s = sections.clone();
        f(&mut s);
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &s).unwrap();
        IvfIndex::read_from(Cursor::new(buf)).unwrap_err()
    };

    // Dropping any one *required* section breaks the container contract.
    // (`IVFMUT` is the optional mutation cursor kept for pre-mutable-tier
    // compatibility: without it the index must still load, with the legacy
    // dense-id defaults.)
    for i in 0..sections.len() {
        if sections[i].has_tag("IVFMUT") {
            let mut s = sections.clone();
            s.remove(i);
            let mut buf = Vec::new();
            write_sections_to(&mut buf, &s).unwrap();
            let loaded = IvfIndex::read_from(Cursor::new(buf))
                .expect("an index without the optional IVFMUT section must load");
            assert_eq!(loaded, sample_index());
            continue;
        }
        let err = mutate(&|s: &mut Vec<Section>| {
            s.remove(i);
        });
        assert!(
            matches!(&err, Error::Store(StoreError::Invariant { .. })),
            "missing section {i}: unexpected error {err}"
        );
    }

    // A malformed IVFMUT payload (wrong size, or a next_id below an id that
    // actually occurs in the remap) is typed corruption, not a default.
    let err = mutate(&|s: &mut Vec<Section>| {
        for sec in s.iter_mut() {
            if sec.has_tag("IVFMUT") {
                sec.payload.truncate(7);
            }
        }
    });
    assert!(
        matches!(&err, Error::Store(StoreError::Invariant { .. })),
        "short IVFMUT: unexpected error {err}"
    );
    let err = mutate(&|s: &mut Vec<Section>| {
        for sec in s.iter_mut() {
            if sec.has_tag("IVFMUT") {
                sec.payload[..8].copy_from_slice(&1u64.to_le_bytes());
            }
        }
    });
    assert!(
        matches!(&err, Error::Store(StoreError::Invariant { .. })),
        "stale next_id: unexpected error {err}"
    );

    // Breaking the offsets array (non-monotone prefix sums) with a valid CRC.
    let err = mutate(&|s: &mut Vec<Section>| {
        for sec in s.iter_mut() {
            if sec.has_tag("IVFOFFS") {
                // Swap two u64 entries so the prefix sums go backwards.
                let mid = (sec.payload.len() / 16) * 8;
                if sec.payload.len() >= mid + 16 {
                    let (a, b) = (mid, mid + 8);
                    for k in 0..8 {
                        sec.payload.swap(a + k, b + k);
                    }
                }
            }
        }
    });
    assert!(
        err.is_corruption(),
        "broken offsets: unexpected error {err}"
    );
}

/// Legacy v1 images (no checksums) under a full bit-flip sweep: the loader
/// must never panic, and whenever a flipped image still loads, its answers
/// for our probe queries must be bit-identical to the uncorrupted index *or*
/// the divergence must live in bytes the queries actually consult — which
/// for float payloads means the flipped value itself.  We assert the weaker,
/// crash-focused half of the contract (no panic, typed errors only) plus
/// that the *unmodified* v1 image loads and answers identically.
#[test]
fn v1_bit_flip_sweep_never_panics() {
    let index = sample_index();
    let sections = read_sections_from(Cursor::new(saved_image(&index))).unwrap();
    let mut v1 = Vec::new();
    write_sections_v1_to(&mut v1, &sections).unwrap();

    // Control arm: the lenient loader accepts the v1 image unchanged and
    // answers exactly like the original.
    let back = IvfIndex::read_from(Cursor::new(v1.clone())).unwrap();
    let params = IvfSearchParams::default().nprobe(3);
    assert_eq!(
        back.batch_search(&queries(), 4, params),
        index.batch_search(&queries(), 4, params)
    );

    // Sweep: every flip either loads (and can be searched without panicking)
    // or fails with a typed error.  `catch_unwind` would defeat the point —
    // the assertion *is* that no panic unwinds out of load or search.
    for byte in 0..v1.len() {
        for bit in [0u8, 3, 7] {
            let maimed = corrupt(&v1, Fault::FlipBit { byte, bit });
            if let Ok(loaded) = IvfIndex::read_from(Cursor::new(maimed)) {
                let _ = loaded.batch_search(&queries(), 2, params);
            }
        }
    }
}

/// Strict mode refuses v1 images outright — the serving-fleet posture where
/// unchecksummed artefacts are not trusted at all.
#[test]
fn strict_load_refuses_v1_images() {
    let sections = read_sections_from(Cursor::new(saved_image(&sample_index()))).unwrap();
    let mut v1 = Vec::new();
    write_sections_v1_to(&mut v1, &sections).unwrap();
    match IvfIndex::read_strict_from(Cursor::new(v1)).unwrap_err() {
        Error::Store(StoreError::Unchecksummed { version }) => assert_eq!(version, 1),
        other => panic!("unexpected error {other}"),
    }
}

/// A torn save is detected on load, and a subsequent (re-)save restores a
/// loadable index whose answers match the original — the recovery loop an
/// operator actually runs.
#[test]
fn torn_file_is_detected_and_resave_recovers() {
    let dir = std::env::temp_dir().join(format!("gkm-ivf-fault-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("index.ivf");
    let path_str = path.to_str().unwrap();

    let index = sample_index();
    index.save(path_str).unwrap();
    let image = std::fs::read(&path).unwrap();

    // Crash mid-write, modelled as the file being cut short in place.
    std::fs::write(&path, &image[..image.len() / 2]).unwrap();
    let err = IvfIndex::load(path_str).unwrap_err();
    assert!(err.is_corruption(), "torn file: unexpected class {err}");

    // Recovery: write a fresh generation (atomically) and load strictly.
    index.save(path_str).unwrap();
    let back = IvfIndex::load_strict(path_str).unwrap();
    let params = IvfSearchParams::default().nprobe(3);
    assert_eq!(
        back.batch_search(&queries(), 4, params),
        index.batch_search(&queries(), 4, params)
    );
    std::fs::remove_dir_all(&dir).ok();
}
