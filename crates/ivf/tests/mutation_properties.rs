//! Property suite for the mutable IVF tier.
//!
//! The contracts pinned here are the mutation design's acceptance bar:
//!
//! * **Compaction bit-identity** — after any insert/delete storm, `compact()`
//!   answers every query bit-for-bit like a *fresh* `IvfIndex::build` over
//!   the surviving vectors, and like the dirty pre-compaction index itself;
//! * **Tombstone exclusion** — a deleted id is never returned, at *any*
//!   `nprobe`, for any query;
//! * **Monotone recall** — with non-empty append regions, recall@R against
//!   brute force over the live set is non-decreasing in `nprobe`, and
//!   probing every list is exact;
//! * **Thread invariance** — batched search over a dirty (appends +
//!   tombstones) index is bit-identical at every thread count.

use std::collections::HashMap;

use ivf::{IvfIndex, IvfSearchParams};
use rand::Rng;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

const DIM: usize = 6;

/// Random corpus, nearest-centroid labels, plus a row archive by id.
struct Fixture {
    index: IvfIndex,
    rows: HashMap<u32, Vec<f32>>,
    centroids: VectorSet,
}

fn fixture(n: usize, k: usize, seed: u64) -> Fixture {
    let mut rng = rng_from_seed(seed);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| (0..DIM).map(|_| rng.gen_range(-8..9) as f32).collect())
        .collect();
    let data = VectorSet::from_rows(rows.clone()).unwrap();
    let centroids = data.gather(&(0..k).collect::<Vec<_>>()).unwrap();
    let labels: Vec<usize> = data
        .rows()
        .map(|row| {
            centroids
                .rows()
                .enumerate()
                .map(|(c, cent)| {
                    let d: f32 = row.iter().zip(cent).map(|(a, b)| (a - b) * (a - b)).sum();
                    (d, c)
                })
                .min_by(|a, b| a.partial_cmp(b).unwrap())
                .unwrap()
                .1
        })
        .collect();
    let index = IvfIndex::build(&data, &centroids, &labels).unwrap();
    let rows = rows
        .into_iter()
        .enumerate()
        .map(|(i, r)| (i as u32, r))
        .collect();
    Fixture {
        index,
        rows,
        centroids,
    }
}

/// Deterministic mutation storm: interleaved inserts and deletes.
fn storm(fx: &mut Fixture, inserts: usize, deletes: usize, seed: u64) {
    let mut rng = rng_from_seed(seed);
    for i in 0..inserts.max(deletes) {
        if i < inserts {
            let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-20..21) as f32).collect();
            let id = fx.index.insert(&v).unwrap();
            fx.rows.insert(id, v);
        }
        if i < deletes {
            let bound = fx.index.next_id();
            let victim = rng.gen_range(0..bound);
            if fx.index.delete(victim) {
                fx.rows.remove(&victim);
            }
        }
    }
}

fn queries(m: usize, seed: u64) -> VectorSet {
    let mut rng = rng_from_seed(seed);
    VectorSet::from_rows(
        (0..m)
            .map(|_| (0..DIM).map(|_| rng.gen_range(-20..21) as f32).collect())
            .collect::<Vec<Vec<f32>>>(),
    )
    .unwrap()
}

/// Exact top-`r` over the live archive, ordered by `(distance, id)` — the
/// same total order the IVF pool uses.
fn brute_force(fx: &Fixture, query: &[f32], r: usize) -> Vec<u32> {
    let mut scored: Vec<(f32, u32)> = fx
        .rows
        .iter()
        .map(|(&id, row)| {
            let d: f32 = query.iter().zip(row).map(|(a, b)| (a - b) * (a - b)).sum();
            (d, id)
        })
        .collect();
    scored.sort_by(|a, b| a.partial_cmp(b).unwrap());
    scored.into_iter().take(r).map(|(_, id)| id).collect()
}

#[test]
fn compaction_is_bit_identical_to_a_fresh_build_over_the_live_set() {
    let mut fx = fixture(160, 8, 31);
    storm(&mut fx, 48, 30, 77);
    assert!(
        fx.index.is_dirty(),
        "the storm must leave appends/tombstones"
    );

    let compacted = fx.index.compact().unwrap();
    assert!(!compacted.is_dirty());
    assert_eq!(compacted.live_len(), fx.rows.len());

    // Recover per-vector list assignments from the compacted index itself:
    // a fresh build fed the same labels reproduces the same panel layout.
    let mut external: Vec<u32> = fx.rows.keys().copied().collect();
    external.sort_unstable();
    let mut label_of: HashMap<u32, usize> = HashMap::new();
    for c in 0..compacted.nlist() {
        for &id in compacted.list(c).1 {
            label_of.insert(id, c);
        }
    }
    let data_fresh = VectorSet::from_rows(
        external
            .iter()
            .map(|id| fx.rows[id].clone())
            .collect::<Vec<Vec<f32>>>(),
    )
    .unwrap();
    let labels_fresh: Vec<usize> = external.iter().map(|id| label_of[id]).collect();
    let fresh = IvfIndex::build(&data_fresh, &fx.centroids, &labels_fresh).unwrap();

    let qs = queries(24, 5);
    for nprobe in [1, 3, 8] {
        let params = IvfSearchParams::default().nprobe(nprobe).threads(1);
        let got = compacted.batch_search(&qs, 6, params);
        // The dirty index must already answer identically: compaction only
        // rewrites the layout, never the answers.
        assert_eq!(
            fx.index.batch_search(&qs, 6, params),
            got,
            "nprobe={nprobe}: compaction changed answers"
        );
        // The fresh build answers with dense ids; map through the monotone
        // remap (dense id = rank of external id) and require *bit* equality
        // of distances.
        let fresh_res = fresh.batch_search(&qs, 6, params);
        for (q, (fresh_list, got_list)) in fresh_res.iter().zip(&got).enumerate() {
            assert_eq!(fresh_list.len(), got_list.len());
            for (f, g) in fresh_list.iter().zip(got_list) {
                assert_eq!(
                    external[f.id as usize], g.id,
                    "query {q} nprobe {nprobe}: id mismatch"
                );
                assert_eq!(
                    f.dist.to_bits(),
                    g.dist.to_bits(),
                    "query {q} nprobe {nprobe}: distance bits differ"
                );
            }
        }
    }
}

#[test]
fn tombstoned_ids_are_never_returned_at_any_nprobe() {
    let mut fx = fixture(120, 6, 13);
    storm(&mut fx, 30, 0, 99);
    // Delete a targeted set including appended vectors, then aim queries
    // *directly at* the deleted vectors — the worst case for exclusion.
    let victims: Vec<u32> = (0..fx.index.next_id()).step_by(7).collect();
    let mut deleted = Vec::new();
    for &v in &victims {
        if fx.index.delete(v) {
            deleted.push(v);
            fx.rows.remove(&v);
        }
    }
    assert!(!deleted.is_empty());

    let mut probe_rows = Vec::new();
    let mut rng = rng_from_seed(3);
    for _ in 0..16 {
        probe_rows.push((0..DIM).map(|_| rng.gen_range(-20..21) as f32).collect());
    }
    let qs = VectorSet::from_rows(probe_rows).unwrap();

    for nprobe in 1..=fx.index.nlist() {
        let params = IvfSearchParams::default().nprobe(nprobe).threads(1);
        for list in fx.index.batch_search(&qs, 10, params) {
            for n in list {
                assert!(
                    !deleted.contains(&n.id),
                    "tombstoned id {} surfaced at nprobe {nprobe}",
                    n.id
                );
            }
        }
    }
}

#[test]
fn recall_is_monotone_in_nprobe_and_exact_at_full_probe() {
    let mut fx = fixture(140, 7, 21);
    storm(&mut fx, 40, 20, 55);
    assert!(fx.index.pending_appends() > 0);

    let qs = queries(20, 17);
    let r = 8;
    let truth: Vec<Vec<u32>> = qs.rows().map(|q| brute_force(&fx, q, r)).collect();

    let mut last = -1.0f64;
    for nprobe in 1..=fx.index.nlist() {
        let params = IvfSearchParams::default().nprobe(nprobe).threads(1);
        let results = fx.index.batch_search(&qs, r, params);
        let mut hits = 0usize;
        let mut want = 0usize;
        for (got, expect) in results.iter().zip(&truth) {
            want += expect.len();
            hits += got.iter().filter(|n| expect.contains(&n.id)).count();
        }
        let recall = hits as f64 / want as f64;
        assert!(
            recall >= last - 1e-12,
            "recall regressed at nprobe {nprobe}: {recall} < {last}"
        );
        last = recall;
        if nprobe == fx.index.nlist() {
            assert_eq!(
                (hits, want),
                (want, want),
                "full probe over appends+tombstones must be exact"
            );
        }
    }
}

#[test]
fn dirty_index_search_is_bit_identical_at_every_thread_count() {
    let mut fx = fixture(200, 8, 41);
    storm(&mut fx, 64, 32, 23);
    assert!(fx.index.is_dirty());

    let qs = queries(96, 29);
    let baseline = fx
        .index
        .batch_search(&qs, 7, IvfSearchParams::default().nprobe(4).threads(1));
    for threads in [2, 4, 7] {
        let got = fx.index.batch_search(
            &qs,
            7,
            IvfSearchParams::default().nprobe(4).threads(threads),
        );
        assert_eq!(
            baseline, got,
            "thread count {threads} changed results on a dirty index"
        );
    }
}
