//! IVF serving invariants on real clustering fits:
//!
//! * recall@R is **non-decreasing in `nprobe`**;
//! * `nprobe = k` equals brute-force top-R **exactly**;
//! * batched multi-threaded search is **bit-identical** for
//!   threads ∈ {1, 2, 4, 7} and equals the per-query loop;
//! * save → load round-trips every index shape (empty lists, d = 1,
//!   unaligned record counts) and preserves answers.

use baselines::common::KMeansConfig;
use baselines::lloyd::LloydKMeans;
use ivf::{evaluate, IvfIndex, IvfSearchParams};
use knn_graph::brute::exact_ground_truth;
use knn_graph::Neighbor;
use proptest::prelude::*;
use rand::Rng;
use vecstore::distance::l2_sq;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

/// Integer-lattice corpus: distances are exact small integers in f32, so
/// every kernel tier agrees bit for bit and "exactly" means `==`.
fn lattice(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for _ in 0..n {
        rows.push((0..dim).map(|_| rng.gen_range(0..6) as f32).collect());
    }
    VectorSet::from_rows(rows).unwrap()
}

/// Clustered float corpus (the shape the anns tests use).
fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let g = (i % 10) as f32 * 1.3;
        rows.push((0..dim).map(|_| g + rng.gen_range(-1.0..1.0)).collect());
    }
    VectorSet::from_rows(rows).unwrap()
}

/// An index built from a real Lloyd fit — the "any clustering result" the
/// serving layer is specified against.
fn lloyd_index(data: &VectorSet, k: usize, seed: u64) -> IvfIndex {
    let fit = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(15).seed(seed)).fit(data);
    IvfIndex::build(data, &fit.centroids, &fit.labels).unwrap()
}

fn brute_top_r(data: &VectorSet, query: &[f32], r: usize) -> Vec<Neighbor> {
    let mut all: Vec<Neighbor> = data
        .rows()
        .enumerate()
        .map(|(i, row)| Neighbor::new(i as u32, l2_sq(query, row)))
        .collect();
    all.sort_by(|a, b| (a.dist, a.id).partial_cmp(&(b.dist, b.id)).unwrap());
    all.truncate(r);
    all
}

#[test]
fn recall_is_non_decreasing_in_nprobe_on_a_lloyd_fit() {
    let base = clustered(600, 6, 2);
    let queries = clustered(40, 6, 91);
    let index = lloyd_index(&base, 20, 7);
    let gt = exact_ground_truth(&base, &queries, 10);
    let mut last = -1.0f64;
    for nprobe in [1usize, 2, 3, 5, 8, 13, 20] {
        let report = evaluate(
            &index,
            &queries,
            &gt,
            10,
            IvfSearchParams::default().nprobe(nprobe).threads(1),
        );
        assert!(
            report.stats.recall >= last,
            "recall dropped from {last} to {} at nprobe = {nprobe}",
            report.stats.recall
        );
        last = report.stats.recall;
    }
    assert_eq!(last, 1.0, "probing every list must reach recall 1.0");
}

#[test]
fn full_probe_equals_brute_force_exactly_on_a_lloyd_fit() {
    let base = lattice(500, 8, 4);
    let queries = lattice(30, 8, 71);
    let index = lloyd_index(&base, 16, 3);
    let params = IvfSearchParams::default().nprobe(index.nlist()).threads(1);
    let results = index.batch_search(&queries, 10, params);
    for (q, query) in queries.rows().enumerate() {
        assert_eq!(results[q], brute_top_r(&base, query, 10), "query {q}");
    }
}

#[test]
fn batched_search_is_bit_identical_at_any_thread_count() {
    let base = clustered(900, 5, 6);
    // enough queries for several QUERY_BLOCK blocks plus an unaligned tail
    let queries = clustered(333, 5, 17);
    let index = lloyd_index(&base, 24, 9);
    let reference =
        index.batch_search(&queries, 7, IvfSearchParams::default().nprobe(4).threads(1));
    for threads in [2usize, 4, 7] {
        let got = index.batch_search(
            &queries,
            7,
            IvfSearchParams::default().nprobe(4).threads(threads),
        );
        assert_eq!(got.len(), reference.len());
        for (q, (a, b)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "threads = {threads}, query {q}");
        }
    }
    // the batched API also equals the sequential per-query loop bit for bit
    let params = IvfSearchParams::default().nprobe(4).threads(1);
    for (q, query) in queries.rows().enumerate() {
        assert_eq!(reference[q], index.search(query, 7, params), "query {q}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save → load round-trips arbitrary index shapes, including d = 1,
    /// k > n (guaranteed empty lists) and unaligned record counts, and the
    /// loaded index answers queries identically.
    #[test]
    fn save_load_round_trip_preserves_index_and_answers(
        n in 0usize..40,
        d in 1usize..9,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let data = lattice(n, d, seed);
        let centroids = lattice(k, d, seed ^ 0xc0ffee);
        let mut rng = rng_from_seed(seed ^ 0xbeef);
        let labels: Vec<usize> = (0..n).map(|_| rng.gen_range(0..k)).collect();
        let index = IvfIndex::build(&data, &centroids, &labels).unwrap();

        let mut buf = Vec::new();
        index.write_to(&mut buf).unwrap();
        let back = IvfIndex::read_from(buf.as_slice()).unwrap();
        prop_assert_eq!(&back, &index);

        let query: Vec<f32> = (0..d).map(|i| (i % 5) as f32).collect();
        let params = IvfSearchParams::default().nprobe(2).threads(1);
        prop_assert_eq!(
            back.search(&query, 3, params),
            index.search(&query, 3, params)
        );
    }
}
