//! SQ8 quantized-tier properties, pinned against the exact f32 path:
//!
//! * per-component round-trip error is **≤ scale/2** (up to f32 rounding
//!   slack), including constant lists and adversarially-scaled dimensions;
//! * recall@R is **non-decreasing in `overfetch`** (nested candidate pools
//!   under one total order, exact re-rank on top);
//! * at full overfetch the re-ranked result is **bit-identical** to the
//!   exact f32 search at the same `nprobe`;
//! * quantized batched search is **bit-identical** for threads ∈ {1, 2, 4, 7};
//! * rows appended after quantization are encoded under the list's frozen
//!   parameters (clamped if outside the fitted range) and compaction
//!   re-fits them into the bound.

use baselines::common::KMeansConfig;
use baselines::lloyd::LloydKMeans;
use ivf::sq8::{decode_component, encode_component, fit_list};
use ivf::{evaluate, IvfIndex, IvfSearchParams};
use knn_graph::brute::exact_ground_truth;
use proptest::prelude::*;
use rand::Rng;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

/// Round-trip tolerance: half a quantization step plus f32 rounding slack.
fn half_step_tol(scale: f32) -> f64 {
    f64::from(scale) * 0.5 * (1.0 + 1e-5) + 1e-40
}

/// Clustered float corpus (the shape the anns tests use).
fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
    let mut rng = rng_from_seed(seed);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let g = (i % 10) as f32 * 1.3;
        rows.push((0..dim).map(|_| g + rng.gen_range(-1.0..1.0)).collect());
    }
    VectorSet::from_rows(rows).unwrap()
}

/// An index built from a real Lloyd fit.
fn lloyd_index(data: &VectorSet, k: usize, seed: u64) -> IvfIndex {
    let fit = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(15).seed(seed)).fit(data);
    IvfIndex::build(data, &fit.centroids, &fit.labels).unwrap()
}

fn quantized_lloyd_index(data: &VectorSet, k: usize, seed: u64) -> IvfIndex {
    let mut index = lloyd_index(data, k, seed);
    index.quantize();
    index
}

/// Every panel row of every list de-quantizes within half a step per
/// component of its stored f32 counterpart.
fn assert_panel_round_trip(index: &IvfIndex) {
    let tier = index.sq8().expect("index must be quantized");
    let d = index.dim();
    let mut panel_pos = 0usize;
    for c in 0..index.nlist() {
        let (rows, ids) = index.list(c);
        let mins = tier.list_mins(c);
        let scales = tier.list_scales(c);
        for j in 0..ids.len() {
            let row = &rows[j * d..(j + 1) * d];
            let codes = tier.panel_row_codes(panel_pos + j);
            for i in 0..d {
                let back = decode_component(codes[i], mins[i], scales[i]);
                let err = (f64::from(row[i]) - f64::from(back)).abs();
                assert!(
                    err <= half_step_tol(scales[i]),
                    "list {c} row {j} component {i}: err {err:e} > scale/2 = {:e}",
                    f64::from(scales[i]) * 0.5
                );
            }
        }
        panel_pos += ids.len();
    }
}

#[test]
fn panel_round_trip_stays_within_half_a_step_on_a_lloyd_fit() {
    let base = clustered(600, 6, 2);
    let index = quantized_lloyd_index(&base, 20, 7);
    assert_panel_round_trip(&index);
}

#[test]
fn constant_lists_quantize_exactly() {
    // Every row identical → every dimension constant → scale 0, code 0, and
    // decoding returns the stored value bit for bit.
    let rows: Vec<Vec<f32>> = (0..12).map(|_| vec![3.25, -1.5, 0.0, 7.75]).collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = VectorSet::from_rows(vec![vec![0.0; 4]]).unwrap();
    let labels = vec![0usize; 12];
    let mut index = IvfIndex::build(&data, &centroids, &labels).unwrap();
    index.quantize();
    let tier = index.sq8().unwrap();
    let (rows, ids) = index.list(0);
    for j in 0..ids.len() {
        let codes = tier.panel_row_codes(j);
        assert!(codes.iter().all(|&b| b == 0), "constant dims encode to 0");
        for i in 0..4 {
            let back = decode_component(codes[i], tier.list_mins(0)[i], tier.list_scales(0)[i]);
            assert_eq!(back, rows[j * 4 + i], "row {j} component {i}");
        }
    }
}

#[test]
fn adversarially_scaled_dimensions_stay_within_bound() {
    // Per-dim magnitudes spanning twelve orders: the fit is per-dimension,
    // so a huge dimension must not poison a tiny one's precision.
    let gains = [1e-6f32, 1e-3, 1.0, 1e3, 1e6];
    let mut rng = rng_from_seed(99);
    let rows: Vec<Vec<f32>> = (0..50)
        .map(|_| gains.iter().map(|g| g * rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let index = quantized_lloyd_index(&data, 4, 5);
    assert_panel_round_trip(&index);
    // The tiny dimension keeps a tiny scale — its absolute error bound is
    // the dimension's own span, not the large dimension's.
    let tier = index.sq8().unwrap();
    for c in 0..index.nlist() {
        if index.list(c).1.is_empty() {
            continue;
        }
        assert!(
            tier.list_scales(c)[0] <= 2.0e-6 / 255.0 * 1.01,
            "per-dim fit must isolate the 1e-6 dimension"
        );
    }
}

#[test]
fn recall_is_non_decreasing_in_overfetch() {
    let base = clustered(800, 8, 3);
    let queries = clustered(48, 8, 41);
    let index = quantized_lloyd_index(&base, 24, 11);
    let gt = exact_ground_truth(&base, &queries, 10);
    let mut last = -1.0f64;
    for overfetch in [1usize, 2, 4, 8, 64] {
        let report = evaluate(
            &index,
            &queries,
            &gt,
            10,
            IvfSearchParams::default()
                .nprobe(24)
                .threads(1)
                .sq8(true)
                .overfetch(overfetch),
        );
        assert!(
            report.stats.recall >= last,
            "recall dropped from {last} to {} at overfetch = {overfetch}",
            report.stats.recall
        );
        last = report.stats.recall;
    }
}

#[test]
fn full_overfetch_rerank_is_bit_identical_to_the_f32_path() {
    let base = clustered(700, 7, 8);
    let queries = clustered(96, 7, 19);
    let index = quantized_lloyd_index(&base, 20, 13);
    // overfetch · r ≥ n: every scanned candidate survives into the exact
    // re-rank, so the result must equal the f32 scan bit for bit — at a
    // partial nprobe and at the exhaustive one alike.
    let overfetch = base.len(); // r · overfetch ≥ n for any r ≥ 1
    for nprobe in [3usize, index.nlist()] {
        let exact = index.batch_search(
            &queries,
            10,
            IvfSearchParams::default().nprobe(nprobe).threads(1),
        );
        let reranked = index.batch_search(
            &queries,
            10,
            IvfSearchParams::default()
                .nprobe(nprobe)
                .threads(1)
                .sq8(true)
                .overfetch(overfetch),
        );
        for (q, (a, b)) in reranked.iter().zip(&exact).enumerate() {
            assert_eq!(a, b, "nprobe = {nprobe}, query {q}");
        }
    }
}

#[test]
fn quantized_batched_search_is_bit_identical_at_any_thread_count() {
    let base = clustered(900, 5, 6);
    // enough queries for several QUERY_BLOCK blocks plus an unaligned tail
    let queries = clustered(333, 5, 17);
    let index = quantized_lloyd_index(&base, 24, 9);
    let params = IvfSearchParams::default().nprobe(4).sq8(true).overfetch(4);
    let reference = index.batch_search(&queries, 7, params.threads(1));
    for threads in [2usize, 4, 7] {
        let got = index.batch_search(&queries, 7, params.threads(threads));
        assert_eq!(got.len(), reference.len());
        for (q, (a, b)) in got.iter().zip(&reference).enumerate() {
            assert_eq!(a, b, "threads = {threads}, query {q}");
        }
    }
    // the batched API also equals the sequential per-query loop bit for bit
    for (q, query) in queries.rows().enumerate() {
        assert_eq!(
            reference[q],
            index.search(query, 7, params.threads(1)),
            "query {q}"
        );
    }
}

#[test]
fn appended_rows_are_quantized_under_frozen_params_and_refit_by_compaction() {
    let base = clustered(300, 4, 21);
    let mut index = quantized_lloyd_index(&base, 8, 23);
    // One in-range append and one far outside every fitted range (its codes
    // must clamp instead of wrapping or poisoning the list parameters).
    let in_range: Vec<f32> = base.rows().next().unwrap().to_vec();
    let outlier = vec![1e4f32; 4];
    let base_len = index.len() as u32;
    index.apply_insert(base_len, &in_range).unwrap();
    index.apply_insert(base_len + 1, &outlier).unwrap();

    // Both appended ids are served by the quantized path: at full overfetch
    // the re-rank is exact, so each vector's own query returns it at
    // distance 0 ahead of everything else.
    let params = IvfSearchParams::default()
        .nprobe(index.nlist())
        .threads(1)
        .sq8(true)
        .overfetch(index.len() + 2);
    let hit = index.search(&in_range, 1, params)[0];
    assert_eq!(hit.dist, 0.0, "appended in-range row must self-hit exactly");
    let hit = index.search(&outlier, 1, params)[0];
    assert_eq!(
        (hit.id, hit.dist),
        (base_len + 1, 0.0),
        "clamped append must still re-rank to an exact self-hit"
    );

    // Frozen parameters: the outlier's codes saturate.
    let tier = index.sq8().unwrap();
    let c = (0..index.nlist())
        .find(|&c| index.append_list(c).1.contains(&(base_len + 1)))
        .unwrap();
    let j = index
        .append_list(c)
        .1
        .iter()
        .position(|&id| id == base_len + 1)
        .unwrap();
    assert!(
        tier.append_row_codes(c, j).iter().all(|&b| b == 255),
        "a far-out-of-range append must clamp to the top code"
    );

    // Compaction folds the appends and re-fits: the outlier is now inside
    // its list's range, so the half-step bound holds for every panel row.
    let compacted = index.compact().unwrap();
    assert!(compacted.is_quantized(), "compaction preserves the tier");
    assert_eq!(compacted.len(), base.len() + 2);
    assert_panel_round_trip(&compacted);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The quantizer's component contract on arbitrary data, including
    /// constant dimensions and per-dim magnitudes spanning several orders:
    /// encode → decode lands within half a step, codes clamp to 0..=255,
    /// and a non-positive scale encodes to 0.
    #[test]
    fn encode_decode_round_trip_is_within_half_a_step(
        n in 1usize..30,
        d in 1usize..8,
        seed in 0u64..1000,
        exponent in -6i32..7,
    ) {
        let gain = 10.0f32.powi(exponent);
        let mut rng = rng_from_seed(seed);
        let rows: Vec<f32> = (0..n * d)
            .map(|i| {
                if i % d == 0 && d > 1 {
                    2.5 // one constant dimension whenever d allows
                } else {
                    gain * rng.gen_range(-1.0..1.0f32)
                }
            })
            .collect();
        let (mins, scales) = fit_list(&[&rows], d);
        for row in rows.chunks_exact(d) {
            for i in 0..d {
                let code = encode_component(row[i], mins[i], scales[i]);
                let back = decode_component(code, mins[i], scales[i]);
                let err = (f64::from(row[i]) - f64::from(back)).abs();
                prop_assert!(
                    err <= half_step_tol(scales[i]),
                    "component {i}: v = {}, back = {back}, err = {err:e}, scale = {:e}",
                    row[i],
                    scales[i]
                );
                if scales[i] <= 0.0 {
                    prop_assert_eq!(code, 0, "constant dims encode to 0");
                }
            }
        }
    }
}
