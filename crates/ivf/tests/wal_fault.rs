//! Fault-injection sweep over the *mutation journal*: the GKSL segment must
//! uphold the same "no panic, no garbage" contract the GKSC checkpoint does,
//! with one deliberate asymmetry — **truncation is recovery, corruption is
//! refusal**:
//!
//! * every truncation of the journal recovers a clean prefix (a torn tail is
//!   dropped, never misread), because truncation models a crash mid-append
//!   and nothing in the lost suffix was ever acknowledged;
//! * every single bit flip in the journal is detected as a typed corruption
//!   error (every byte is covered by the header CRC, a length/complement
//!   pair, or a record CRC) — altered bytes are *not* a crash artefact and
//!   must never be replayed into the index.

use std::fs;
use std::path::{Path, PathBuf};

use ivf::{IvfIndex, MutableStore};
use vecstore::fault::{corrupt, Fault};
use vecstore::wal::{replay_wal, WAL_HEADER_LEN, WAL_RECORD_OVERHEAD};
use vecstore::VectorSet;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gkm-wal-fault-{tag}-{}", std::process::id()));
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn sample_index() -> IvfIndex {
    let rows: Vec<Vec<f32>> = (0..12)
        .map(|i| {
            let g = (i % 3) as f32 * 10.0;
            vec![g + i as f32 * 0.25, g - i as f32 * 0.5, (i * i % 7) as f32]
        })
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = VectorSet::from_rows(vec![vec![0.0; 3], vec![10.0; 3], vec![20.0; 3]]).unwrap();
    let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
    IvfIndex::build(&data, &centroids, &labels).unwrap()
}

/// Builds a store, runs an interleaved insert/delete storm, and returns the
/// journal image plus the per-record boundaries (byte offset after each
/// complete record).
fn storm_journal(dir: &Path) -> (PathBuf, Vec<u8>, Vec<u64>) {
    let index_path = dir.join("fault.ivf");
    let mut store = MutableStore::create(&index_path, sample_index()).unwrap();
    for round in 0..6u32 {
        let rows: Vec<Vec<f32>> = (0..3)
            .map(|j| vec![round as f32 + j as f32 * 0.5, -(round as f32), 30.0])
            .collect();
        store
            .insert_batch(&VectorSet::from_rows(rows).unwrap())
            .unwrap();
        store.delete(round * 2).unwrap();
    }
    let wal_path = ivf::store::wal_path(&index_path);
    drop(store);
    let image = fs::read(&wal_path).unwrap();

    // Recover record boundaries by replaying the (clean) journal.
    let replay = replay_wal(&image).unwrap();
    let mut boundaries = Vec::new();
    let mut off = WAL_HEADER_LEN as u64;
    for rec in &replay.records {
        off += (WAL_RECORD_OVERHEAD + 8 + rec.body.len()) as u64;
        boundaries.push(off);
    }
    assert_eq!(off, image.len() as u64, "journal must end on a boundary");
    assert_eq!(replay.records.len(), 24, "6 × (3 inserts + 1 delete)");
    (index_path, image, boundaries)
}

/// How many complete records survive a cut at `cut` bytes.
fn expected_prefix(boundaries: &[u64], cut: usize) -> usize {
    boundaries.iter().filter(|&&b| b <= cut as u64).count()
}

#[test]
fn every_truncation_of_the_journal_recovers_a_clean_prefix() {
    let dir = scratch_dir("trunc");
    let (index_path, image, boundaries) = storm_journal(&dir);
    let wal_path = ivf::store::wal_path(&index_path);

    for cut in 0..=image.len() {
        fs::write(&wal_path, corrupt(&image, Fault::Truncate(cut))).unwrap();
        let (store, report) = MutableStore::open(&index_path)
            .unwrap_or_else(|e| panic!("cut at byte {cut} must recover, got: {e}"));
        let want = expected_prefix(&boundaries, cut);
        assert_eq!(
            report.replayed, want,
            "cut at byte {cut}: wrong prefix length"
        );
        assert_eq!(report.skipped, 0);
        // A cut exactly on a record boundary (or exactly at the bare header)
        // is indistinguishable from a clean stop; every other cut — inside a
        // record, inside the header, even an empty file — is a torn tail.
        let on_boundary = cut == WAL_HEADER_LEN || boundaries.contains(&(cut as u64));
        assert_eq!(
            report.torn_tail_dropped, !on_boundary,
            "cut at byte {cut}: wrong torn-tail classification"
        );
        // The recovered store must be immediately usable: the next append
        // lands at the recovered sequence.
        assert_eq!(store.next_seq(), want as u64);
        drop(store);
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_single_bit_flip_in_the_journal_is_typed_corruption() {
    let dir = scratch_dir("flip");
    let (index_path, image, _) = storm_journal(&dir);
    let wal_path = ivf::store::wal_path(&index_path);

    for byte in 0..image.len() {
        for bit in 0..8u8 {
            fs::write(&wal_path, corrupt(&image, Fault::FlipBit { byte, bit })).unwrap();
            let err = MutableStore::open(&index_path)
                .err()
                .unwrap_or_else(|| panic!("flip of byte {byte} bit {bit} must not open"));
            assert!(
                err.is_corruption(),
                "byte={byte} bit={bit}: unexpected class {err}"
            );
        }
    }
    // Control arm: the untouched journal still opens and replays fully.
    fs::write(&wal_path, &image).unwrap();
    let (_, report) = MutableStore::open(&index_path).unwrap();
    assert_eq!(report.replayed, 24);
    fs::remove_dir_all(&dir).ok();
}

/// Truncation *and* a flip in the surviving prefix: the flip wins — a torn
/// tail never launders interior corruption into a "clean" recovery.
#[test]
fn interior_corruption_is_detected_even_with_a_torn_tail() {
    let dir = scratch_dir("mixed");
    let (index_path, image, boundaries) = storm_journal(&dir);
    let wal_path = ivf::store::wal_path(&index_path);

    // Cut mid-record (one byte past a mid-journal boundary) and flip a bit
    // well inside the surviving prefix.
    let cut = boundaries[boundaries.len() / 2] as usize + 1;
    let torn = corrupt(&image, Fault::Truncate(cut));
    let mangled = corrupt(
        &torn,
        Fault::FlipBit {
            byte: WAL_HEADER_LEN + 20,
            bit: 2,
        },
    );
    fs::write(&wal_path, mangled).unwrap();
    let err = MutableStore::open(&index_path).unwrap_err();
    assert!(err.is_corruption(), "unexpected class {err}");
    fs::remove_dir_all(&dir).ok();
}
