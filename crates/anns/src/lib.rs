//! Approximate nearest-neighbour search (ANNS) over a KNN graph.
//!
//! Sec. 4.3 of the paper observes that the graph produced by Alg. 3 is not
//! only useful for clustering but "achieves similar or even better performance
//! than [HNSW / other graph methods]" when used for ANN search, answering a
//! query on 100M SIFT descriptors in under 3 ms at recall above 0.9.  This
//! crate provides the search procedure needed to reproduce that claim at the
//! harness scale:
//!
//! * [`search::GraphSearcher`] — greedy best-first search with a bounded
//!   candidate pool (`ef`), seeded from random entry points, over any
//!   [`knn_graph::KnnGraph`];
//! * [`eval`] — batch query evaluation producing recall@R and query
//!   throughput against an exact ground truth.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eval;
pub mod search;

pub use eval::{evaluate, AnnsReport};
pub use search::{GraphSearcher, SearchParams};
