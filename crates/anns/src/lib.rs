//! Approximate nearest-neighbour search (ANNS) over a KNN graph.
//!
//! Sec. 4.3 of the paper observes that the graph produced by Alg. 3 is not
//! only useful for clustering but "achieves similar or even better performance
//! than [HNSW / other graph methods]" when used for ANN search, answering a
//! query on 100M SIFT descriptors in under 3 ms at recall above 0.9.  This
//! crate provides the graph-based search procedure needed to reproduce that
//! claim at the harness scale:
//!
//! * [`search::GraphSearcher`] — greedy best-first search with a bounded
//!   candidate pool (`ef`), seeded from distinct random entry points, over
//!   any [`knn_graph::KnnGraph`];
//! * [`eval`] — batch query evaluation producing recall@R and query
//!   throughput against an exact ground truth, through the searcher-agnostic
//!   [`eval::SearchReport`].
//!
//! # The other query path: the IVF serving index
//!
//! Graph search is **not** the only way the workspace serves queries: the
//! `crates/ivf` subsystem turns any clustering result (GK-means, Lloyd,
//! Elkan/Hamerly) into an inverted-file index with batched multi-probe
//! search, and its `ivf::evaluate` produces the same [`eval::SearchReport`]
//! against the same ground truth, so the two are directly comparable.
//! Rules of thumb: graph search wins on single-query latency at high recall
//! targets (it touches a data-dependent neighbourhood and stops early); IVF
//! wins on batched throughput and operational simplicity — deterministic
//! cluster-bounded scan cost, contiguous gather-free list panels, trivial
//! on-disk persistence, and recall dialled by `nprobe` instead of graph
//! quality.  An IVF index is also the natural way to *serve* the clustering
//! itself, since its coarse level is exactly the fitted centroids.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod eval;
pub mod search;

pub use eval::{evaluate, AnnsReport};
pub use search::{GraphSearcher, SearchParams};
