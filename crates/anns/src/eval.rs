//! Batch evaluation of graph-based ANN search: recall@R and throughput.

use std::time::Instant;

use knn_graph::recall::list_recall;
use knn_graph::{KnnGraph, Neighbor};
use vecstore::VectorSet;

use crate::search::{GraphSearcher, SearchParams};

/// Result of evaluating a query batch at one `ef` setting.
#[derive(Clone, Copy, Debug)]
pub struct AnnsReport {
    /// Candidate-pool size used.
    pub ef: usize,
    /// Recall@R against the exact ground truth.
    pub recall: f64,
    /// Average query latency in milliseconds.
    pub avg_query_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Average number of distance evaluations per query.
    pub avg_distance_evals: f64,
}

/// Runs every query through the searcher and reports recall@`r` plus timing.
///
/// `ground_truth[q]` must hold the exact nearest neighbours of query `q`
/// (at least `r` of them), e.g. from
/// [`knn_graph::brute::exact_ground_truth`].
pub fn evaluate(
    base: &VectorSet,
    graph: &KnnGraph,
    queries: &VectorSet,
    ground_truth: &[Vec<Neighbor>],
    r: usize,
    params: SearchParams,
) -> AnnsReport {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover every query"
    );
    let searcher = GraphSearcher::new(base, graph, params);
    let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
    let mut evals = 0u64;
    let start = Instant::now();
    for q in queries.rows() {
        let (res, stats) = searcher.search_with_stats(q, r);
        evals += stats.distance_evals;
        results.push(res.into_iter().map(|n| n.id).collect());
    }
    let elapsed = start.elapsed();
    let recall = list_recall(&results, ground_truth, r);
    let nq = queries.len().max(1) as f64;
    AnnsReport {
        ef: params.ef,
        recall,
        avg_query_ms: elapsed.as_secs_f64() * 1000.0 / nq,
        qps: nq / elapsed.as_secs_f64().max(1e-12),
        avg_distance_evals: evals as f64 / nq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::{exact_graph, exact_ground_truth};
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    /// Connected, mildly clustered data (see the note in `search::tests`).
    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 8) as f32 * 1.2;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn evaluation_reports_high_recall_on_exact_graph() {
        let base = clustered(400, 5, 1);
        let queries = clustered(25, 5, 50);
        let graph = exact_graph(&base, 8);
        let gt = exact_ground_truth(&base, &queries, 5);
        let report = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            5,
            SearchParams::default().ef(64).seed(2),
        );
        assert!(report.recall > 0.85, "recall {}", report.recall);
        assert!(report.qps > 0.0);
        assert!(report.avg_query_ms > 0.0);
        assert!(report.avg_distance_evals > 0.0);
        // graph search must touch far fewer points than brute force
        assert!(report.avg_distance_evals < base.len() as f64 * 0.9);
        assert_eq!(report.ef, 64);
    }

    #[test]
    fn recall_increases_with_ef() {
        let base = clustered(300, 4, 3);
        let queries = clustered(20, 4, 60);
        let graph = exact_graph(&base, 5);
        let gt = exact_ground_truth(&base, &queries, 3);
        let lo = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            3,
            SearchParams::default().ef(4).seed(7),
        );
        let hi = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            3,
            SearchParams::default().ef(96).seed(7),
        );
        assert!(hi.recall >= lo.recall - 0.05);
        assert!(hi.avg_distance_evals >= lo.avg_distance_evals);
    }

    #[test]
    #[should_panic(expected = "ground truth must cover every query")]
    fn mismatched_ground_truth_panics() {
        let base = clustered(50, 3, 5);
        let queries = clustered(5, 3, 6);
        let graph = exact_graph(&base, 4);
        let _ = evaluate(&base, &graph, &queries, &[], 1, SearchParams::default());
    }
}
