//! Batch evaluation of graph-based ANN search: recall@R and throughput.
//!
//! The knob-agnostic part of the report lives in [`SearchReport`], which the
//! IVF serving layer (`crates/ivf`) reuses — running both searchers against
//! the **same** ground truth yields directly comparable recall/QPS numbers.

use std::time::{Duration, Instant};

use knn_graph::recall::list_recall;
use knn_graph::{KnnGraph, Neighbor};
use vecstore::VectorSet;

use crate::search::{GraphSearcher, SearchParams};

/// Recall/throughput figures of one query batch, independent of which
/// searcher (graph-based or IVF) produced the results.
///
/// Both `anns::evaluate` and `ivf::evaluate` build this from the same inputs
/// (result id lists, exact ground truth, wall-clock, distance evaluations),
/// so reports from the two serving paths are comparable side by side.
#[derive(Clone, Copy, Debug)]
pub struct SearchReport {
    /// Recall@R against the exact ground truth.
    pub recall: f64,
    /// Average query latency in milliseconds.
    pub avg_query_ms: f64,
    /// Queries per second.
    pub qps: f64,
    /// Average number of distance evaluations per query.
    pub avg_distance_evals: f64,
}

impl SearchReport {
    /// Builds the report from a measured batch run.
    ///
    /// `results[q]` holds the retrieved ids of query `q`; `ground_truth[q]`
    /// its exact nearest neighbours (at least `r` of them).
    ///
    /// # Panics
    ///
    /// Panics when `results` and `ground_truth` disagree on the query count.
    pub fn from_batch(
        results: &[Vec<u32>],
        ground_truth: &[Vec<Neighbor>],
        r: usize,
        elapsed: Duration,
        distance_evals: u64,
    ) -> Self {
        assert_eq!(
            results.len(),
            ground_truth.len(),
            "ground truth must cover every query"
        );
        let recall = list_recall(results, ground_truth, r);
        let nq = results.len().max(1) as f64;
        Self {
            recall,
            avg_query_ms: elapsed.as_secs_f64() * 1000.0 / nq,
            qps: nq / elapsed.as_secs_f64().max(1e-12),
            avg_distance_evals: distance_evals as f64 / nq,
        }
    }
}

/// Result of evaluating a query batch at one `ef` setting.
#[derive(Clone, Copy, Debug)]
pub struct AnnsReport {
    /// Candidate-pool size used.
    pub ef: usize,
    /// The searcher-agnostic recall/throughput figures.
    pub stats: SearchReport,
}

/// Runs every query through the searcher and reports recall@`r` plus timing.
///
/// `ground_truth[q]` must hold the exact nearest neighbours of query `q`
/// (at least `r` of them), e.g. from
/// [`knn_graph::brute::exact_ground_truth`].
pub fn evaluate(
    base: &VectorSet,
    graph: &KnnGraph,
    queries: &VectorSet,
    ground_truth: &[Vec<Neighbor>],
    r: usize,
    params: SearchParams,
) -> AnnsReport {
    assert_eq!(
        queries.len(),
        ground_truth.len(),
        "ground truth must cover every query"
    );
    let searcher = GraphSearcher::new(base, graph, params);
    let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries.len());
    let mut evals = 0u64;
    let start = Instant::now();
    for q in queries.rows() {
        let (res, stats) = searcher.search_with_stats(q, r);
        evals += stats.distance_evals;
        results.push(res.into_iter().map(|n| n.id).collect());
    }
    let elapsed = start.elapsed();
    AnnsReport {
        ef: params.ef,
        stats: SearchReport::from_batch(&results, ground_truth, r, elapsed, evals),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::{exact_graph, exact_ground_truth};
    use rand::Rng;
    use vecstore::sample::rng_from_seed;

    /// Connected, mildly clustered data (see the note in `search::tests`).
    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 8) as f32 * 1.2;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn evaluation_reports_high_recall_on_exact_graph() {
        let base = clustered(400, 5, 1);
        let queries = clustered(25, 5, 50);
        let graph = exact_graph(&base, 8);
        let gt = exact_ground_truth(&base, &queries, 5);
        let report = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            5,
            SearchParams::default().ef(64).seed(2),
        );
        assert!(report.stats.recall > 0.85, "recall {}", report.stats.recall);
        assert!(report.stats.qps > 0.0);
        assert!(report.stats.avg_query_ms > 0.0);
        assert!(report.stats.avg_distance_evals > 0.0);
        // graph search must touch far fewer points than brute force
        assert!(report.stats.avg_distance_evals < base.len() as f64 * 0.9);
        assert_eq!(report.ef, 64);
    }

    #[test]
    fn recall_increases_with_ef() {
        let base = clustered(300, 4, 3);
        let queries = clustered(20, 4, 60);
        let graph = exact_graph(&base, 5);
        let gt = exact_ground_truth(&base, &queries, 3);
        let lo = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            3,
            SearchParams::default().ef(4).seed(7),
        );
        let hi = evaluate(
            &base,
            &graph,
            &queries,
            &gt,
            3,
            SearchParams::default().ef(96).seed(7),
        );
        assert!(hi.stats.recall >= lo.stats.recall - 0.05);
        assert!(hi.stats.avg_distance_evals >= lo.stats.avg_distance_evals);
    }

    #[test]
    fn search_report_from_batch_computes_averages() {
        let results = vec![vec![0u32], vec![5]];
        let truth = vec![
            vec![Neighbor::new(0, 0.0)],
            vec![Neighbor::new(4, 0.0)], // miss
        ];
        let report = SearchReport::from_batch(&results, &truth, 1, Duration::from_millis(10), 200);
        assert_eq!(report.recall, 0.5);
        assert!((report.avg_query_ms - 5.0).abs() < 1e-9);
        assert_eq!(report.avg_distance_evals, 100.0);
        assert!(report.qps > 0.0);
    }

    #[test]
    #[should_panic(expected = "ground truth must cover every query")]
    fn mismatched_ground_truth_panics() {
        let base = clustered(50, 3, 5);
        let queries = clustered(5, 3, 6);
        let graph = exact_graph(&base, 4);
        let _ = evaluate(&base, &graph, &queries, &[], 1, SearchParams::default());
    }
}
