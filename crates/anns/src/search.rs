//! Greedy best-first graph search.
//!
//! The classic search procedure shared by KNN-graph ANN methods (KGraph,
//! EFANNA, NSW): keep a bounded pool of the `ef` best candidates found so
//! far, repeatedly expand the closest unexpanded candidate by scoring its
//! graph neighbours, and stop when the pool no longer improves.  The paper
//! does not prescribe a particular search routine — it only states that its
//! graph supports ANN search competitively — so this is the standard
//! formulation.
//!
//! This is the low-latency single-query path; for batched, cluster-backed
//! serving of the same data see the `crates/ivf` inverted-file index (the
//! crate docs compare the two).

use rand::Rng;

use knn_graph::{KnnGraph, Neighbor};
use vecstore::distance::l2_sq;
use vecstore::kernels;
use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

/// Search-time parameters.
#[derive(Clone, Copy, Debug)]
pub struct SearchParams {
    /// Candidate-pool size (`ef`); larger values trade speed for recall.
    pub ef: usize,
    /// Number of random entry points used to seed the pool.
    pub entry_points: usize,
    /// RNG seed for entry-point selection.
    pub seed: u64,
}

impl Default for SearchParams {
    fn default() -> Self {
        Self {
            ef: 64,
            entry_points: 8,
            seed: 0xa_55,
        }
    }
}

impl SearchParams {
    /// Sets the candidate-pool size.
    #[must_use]
    pub fn ef(mut self, ef: usize) -> Self {
        self.ef = ef.max(1);
        self
    }

    /// Sets the number of random entry points.
    #[must_use]
    pub fn entry_points(mut self, entry_points: usize) -> Self {
        self.entry_points = entry_points.max(1);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Statistics of a single query.
#[derive(Clone, Copy, Debug, Default)]
pub struct SearchStats {
    /// Number of distance evaluations performed.
    pub distance_evals: u64,
    /// Number of graph nodes expanded.
    pub expansions: u64,
}

/// A searcher bound to a base dataset and its KNN graph.
pub struct GraphSearcher<'a> {
    base: &'a VectorSet,
    graph: &'a KnnGraph,
    params: SearchParams,
}

impl<'a> GraphSearcher<'a> {
    /// Creates a searcher.
    ///
    /// # Panics
    ///
    /// Panics when the graph does not cover the base set.
    pub fn new(base: &'a VectorSet, graph: &'a KnnGraph, params: SearchParams) -> Self {
        assert_eq!(
            base.len(),
            graph.len(),
            "graph covers {} nodes but the base set holds {}",
            graph.len(),
            base.len()
        );
        Self {
            base,
            graph,
            params,
        }
    }

    /// Returns the `k` (approximate) nearest base rows for `query`, sorted by
    /// ascending distance.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_with_stats(query, k).0
    }

    /// [`GraphSearcher::search`] plus per-query cost counters.
    pub fn search_with_stats(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, SearchStats) {
        let n = self.base.len();
        let mut stats = SearchStats::default();
        if n == 0 || k == 0 {
            return (Vec::new(), stats);
        }
        let ef = self.params.ef.max(k);
        let mut rng = rng_from_seed(self.params.seed);

        // pool: ascending by distance; visited: expanded or scored nodes
        let mut pool: Vec<Neighbor> = Vec::with_capacity(ef + 1);
        let mut visited = vec![false; n];
        let mut expanded = vec![false; n];

        // Deduplicated entry seeding: a duplicate draw is re-sampled instead
        // of consumed, so the pool always starts from `entries` *distinct*
        // nodes.  (Consuming duplicates silently seeded fewer entry points on
        // small corpora, starving the pool of diversity.)  Termination is
        // guaranteed because `entries <= n` distinct unvisited nodes exist.
        let entries = self.params.entry_points.min(n);
        let mut seeded = 0usize;
        while seeded < entries {
            let id = rng.gen_range(0..n) as u32;
            if visited[id as usize] {
                continue;
            }
            visited[id as usize] = true;
            seeded += 1;
            let d = l2_sq(query, self.base.row(id as usize));
            stats.distance_evals += 1;
            insert_bounded(&mut pool, Neighbor::new(id, d), ef);
        }

        let mut frontier: Vec<u32> = Vec::new();
        let mut dists: Vec<f32> = Vec::new();
        let dim = self.base.dim();
        loop {
            // closest unexpanded candidate in the pool
            let next = pool.iter().find(|c| !expanded[c.id as usize]).copied();
            let Some(candidate) = next else { break };
            expanded[candidate.id as usize] = true;
            stats.expansions += 1;

            // the search horizon: if the candidate is worse than the current
            // ef-th best, the pool cannot improve through it
            if pool.len() >= ef && candidate.dist > pool[pool.len() - 1].dist {
                break;
            }
            // Score all unvisited neighbours of the expansion in one batched
            // gather; pool insertion keeps the original neighbour order.
            frontier.clear();
            for nb in self.graph.neighbors(candidate.id as usize).as_slice() {
                let id = nb.id as usize;
                if visited[id] {
                    continue;
                }
                visited[id] = true;
                frontier.push(nb.id);
            }
            if frontier.is_empty() {
                continue;
            }
            dists.resize(frontier.len(), 0.0);
            kernels::l2_sq_one_to_many_indexed(
                query,
                self.base.as_flat(),
                dim,
                &frontier,
                &mut dists,
            );
            stats.distance_evals += frontier.len() as u64;
            for (&id, &d) in frontier.iter().zip(&dists) {
                insert_bounded(&mut pool, Neighbor::new(id, d), ef);
            }
        }

        pool.truncate(k);
        (pool, stats)
    }
}

/// Inserts into an ascending-by-distance pool bounded to `cap` entries.
fn insert_bounded(pool: &mut Vec<Neighbor>, cand: Neighbor, cap: usize) {
    if pool.len() >= cap {
        if let Some(worst) = pool.last() {
            if cand.dist >= worst.dist {
                return;
            }
        }
    }
    let pos = pool.partition_point(|n| (n.dist, n.id) < (cand.dist, cand.id));
    pool.insert(pos, cand);
    if pool.len() > cap {
        pool.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knn_graph::brute::{exact_graph, exact_ground_truth};
    use rand::Rng;

    /// Mildly clustered but *connected* data: adjacent groups overlap, so the
    /// KNN graph forms a single component (like real descriptor collections).
    /// A graph of fully disconnected blobs would make greedy search depend
    /// entirely on entry-point luck, which is not what the paper evaluates.
    fn clustered(n: usize, dim: usize, seed: u64) -> VectorSet {
        let mut rng = rng_from_seed(seed);
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            let g = (i % 10) as f32 * 1.2;
            let mut row = Vec::with_capacity(dim);
            for _ in 0..dim {
                row.push(g + rng.gen_range(-1.0..1.0));
            }
            rows.push(row);
        }
        VectorSet::from_rows(rows).unwrap()
    }

    #[test]
    fn insert_bounded_keeps_order_and_cap() {
        let mut pool = Vec::new();
        for (id, d) in [(1u32, 5.0f32), (2, 1.0), (3, 3.0), (4, 0.5), (5, 9.0)] {
            insert_bounded(&mut pool, Neighbor::new(id, d), 3);
        }
        let ids: Vec<u32> = pool.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 2, 3]);
    }

    #[test]
    fn search_on_exact_graph_finds_true_neighbours() {
        let base = clustered(500, 6, 1);
        let graph = exact_graph(&base, 10);
        let searcher = GraphSearcher::new(&base, &graph, SearchParams::default().ef(32).seed(3));
        let queries = clustered(20, 6, 99);
        let truth = exact_ground_truth(&base, &queries, 1);
        let mut hits = 0;
        for (qi, q) in queries.rows().enumerate() {
            let res = searcher.search(q, 1);
            assert!(!res.is_empty());
            if res[0].id == truth[qi][0].id {
                hits += 1;
            }
        }
        assert!(hits >= 18, "recall@1 too low: {hits}/20");
    }

    #[test]
    fn larger_ef_never_hurts_recall() {
        let base = clustered(400, 5, 2);
        let graph = exact_graph(&base, 6);
        let queries = clustered(15, 5, 77);
        let truth = exact_ground_truth(&base, &queries, 5);
        let recall = |ef: usize| -> f64 {
            let searcher =
                GraphSearcher::new(&base, &graph, SearchParams::default().ef(ef).seed(5));
            let mut total = 0.0;
            for (qi, q) in queries.rows().enumerate() {
                let res = searcher.search(q, 5);
                let res_ids: std::collections::HashSet<u32> = res.iter().map(|n| n.id).collect();
                let hit = truth[qi].iter().filter(|n| res_ids.contains(&n.id)).count();
                total += hit as f64 / 5.0;
            }
            total / queries.len() as f64
        };
        let low = recall(8);
        let high = recall(128);
        assert!(
            high >= low - 0.05,
            "ef=128 recall {high} < ef=8 recall {low}"
        );
        assert!(high > 0.85, "high-ef recall should be high, got {high}");
    }

    #[test]
    fn results_are_sorted_and_distances_exact() {
        let base = clustered(200, 4, 4);
        let graph = exact_graph(&base, 5);
        let searcher = GraphSearcher::new(&base, &graph, SearchParams::default().seed(6));
        let q = base.row(17).to_vec();
        let (res, stats) = searcher.search_with_stats(&q, 10);
        assert!(stats.distance_evals > 0);
        assert!(stats.expansions > 0);
        for w in res.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }
        for nb in &res {
            assert_eq!(nb.dist, l2_sq(&q, base.row(nb.id as usize)));
        }
        // the query point itself is in the base set → top hit must be itself
        assert_eq!(res[0].id, 17);
        assert_eq!(res[0].dist, 0.0);
    }

    #[test]
    fn degenerate_inputs() {
        let base = clustered(50, 3, 8);
        let graph = exact_graph(&base, 4);
        let searcher = GraphSearcher::new(&base, &graph, SearchParams::default());
        assert!(searcher.search(base.row(0), 0).is_empty());
        let empty = VectorSet::zeros(0, 3).unwrap();
        let empty_graph = knn_graph::KnnGraph::empty(0, 4);
        let s = GraphSearcher::new(&empty, &empty_graph, SearchParams::default());
        assert!(s.search(&[0.0, 0.0, 0.0], 5).is_empty());
    }

    #[test]
    fn entry_points_are_deduplicated() {
        // Tiny corpus + as many entry points as nodes: duplicate draws are
        // near-certain, and with an edgeless graph the result depends
        // *entirely* on the seeded entries.  Deduplicated seeding must visit
        // every node exactly once, turning the search into an exact scan;
        // seeding that consumes duplicate draws returns fewer nodes.
        let n = 6usize;
        let base = clustered(n, 3, 21);
        let graph = knn_graph::KnnGraph::empty(n, 4);
        for seed in 0..20u64 {
            let params = SearchParams::default().entry_points(n).ef(n).seed(seed);
            let searcher = GraphSearcher::new(&base, &graph, params);
            let (res, stats) = searcher.search_with_stats(base.row(0), n);
            assert_eq!(
                stats.distance_evals, n as u64,
                "seed {seed}: every node must be scored exactly once"
            );
            let mut ids: Vec<u32> = res.iter().map(|nb| nb.id).collect();
            ids.sort_unstable();
            assert_eq!(
                ids,
                (0..n as u32).collect::<Vec<_>>(),
                "seed {seed}: all {n} nodes must be seeded despite duplicate draws"
            );
            assert_eq!(res[0].id, 0, "seed {seed}: the query point itself wins");
        }
    }

    #[test]
    #[should_panic(expected = "graph covers")]
    fn mismatched_graph_panics() {
        let base = clustered(50, 3, 9);
        let other = clustered(20, 3, 9);
        let graph = exact_graph(&other, 4);
        let _ = GraphSearcher::new(&base, &graph, SearchParams::default());
    }
}
