//! CLI error taxonomy: every failure is classified into one of four exit
//! codes so scripts (and the CI robustness job) can react to the *kind* of
//! failure, not just its presence.
//!
//! | class                 | exit code | examples                                 |
//! |-----------------------|-----------|------------------------------------------|
//! | [`CliError::Usage`]   | 2         | bad flag, missing option, unknown method |
//! | [`CliError::Io`]      | 3         | file not found, permission denied        |
//! | [`CliError::Corrupt`] | 4         | checksum mismatch, truncated container,  |
//! |                       |           | failed `index verify --spot-check`       |
//! | [`CliError::Internal`]| 5         | invariant failures inside the library    |
//!
//! Exit code 1 is deliberately unused (it is what a panic-induced abort or a
//! shell-level failure produces), so every *classified* failure is
//! distinguishable from an unclassified crash.

use knn_graph::io::GraphIoError;

/// A classified CLI failure; the variant decides the process exit code.
#[derive(Debug)]
pub enum CliError {
    /// The command line itself is wrong (exit 2).
    Usage(String),
    /// The OS refused an I/O operation (exit 3).
    Io(String),
    /// An artefact failed validation (exit 4).
    ///
    /// Covers both *structural* damage — checksum, framing or cross-section
    /// invariants caught while loading — and *semantic* damage that the
    /// container checks cannot see: `index verify --spot-check n` replays
    /// `n` stored vectors through an exhaustive `nprobe = nlist` scan and
    /// classifies any vector that fails to return itself at distance zero
    /// as this variant.  The file parsed and every checksum matched, but
    /// centroids, ids and panel no longer agree (e.g. a NaN-poisoned panel
    /// written by a buggy producer and then dutifully re-checksummed).
    /// Scripts can therefore treat exit 4 uniformly as "the artefact is
    /// damaged — rebuild it", whichever layer caught the damage.
    Corrupt(String),
    /// An unexpected internal failure (exit 5).
    Internal(String),
}

impl CliError {
    /// The process exit code for this class of failure.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io(_) => 3,
            CliError::Corrupt(_) => 4,
            CliError::Internal(_) => 5,
        }
    }

    /// Short class tag used in the error banner.
    pub fn class(&self) -> &'static str {
        match self {
            CliError::Usage(_) => "usage",
            CliError::Io(_) => "i/o",
            CliError::Corrupt(_) => "corruption",
            CliError::Internal(_) => "internal",
        }
    }

    /// Classifies a [`vecstore::Error`] under a `context` prefix ("cannot
    /// read base.fvecs").  I/O errors map to [`CliError::Io`], the typed
    /// corruption taxonomy ([`vecstore::StoreError`] and malformed-file
    /// reports) to [`CliError::Corrupt`], everything else to
    /// [`CliError::Internal`].
    pub fn store(context: impl std::fmt::Display, e: vecstore::Error) -> Self {
        let msg = format!("{context}: {e}");
        match &e {
            vecstore::Error::Io(_) => CliError::Io(msg),
            e if e.is_corruption() => CliError::Corrupt(msg),
            _ => CliError::Internal(msg),
        }
    }

    /// Classifies a [`GraphIoError`] under a `context` prefix.
    pub fn graph(context: impl std::fmt::Display, e: GraphIoError) -> Self {
        let msg = format!("{context}: {e}");
        match &e {
            GraphIoError::Io(_) => CliError::Io(msg),
            GraphIoError::Malformed(_) => CliError::Corrupt(msg),
        }
    }

    /// An OS-level I/O failure under a `context` prefix.
    pub fn io(context: impl std::fmt::Display, e: std::io::Error) -> Self {
        CliError::Io(format!("{context}: {e}"))
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) | CliError::Io(m) | CliError::Corrupt(m) | CliError::Internal(m) => {
                write!(f, "{m}")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Bare strings come from argument parsing and validation, so they classify
/// as usage errors; this keeps `?` working on every [`crate::args::Args`]
/// accessor.
impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_distinct_and_stable() {
        assert_eq!(CliError::Usage(String::new()).exit_code(), 2);
        assert_eq!(CliError::Io(String::new()).exit_code(), 3);
        assert_eq!(CliError::Corrupt(String::new()).exit_code(), 4);
        assert_eq!(CliError::Internal(String::new()).exit_code(), 5);
    }

    #[test]
    fn strings_classify_as_usage() {
        let e: CliError = "missing required option --k".to_string().into();
        assert!(matches!(e, CliError::Usage(_)));
        assert_eq!(e.class(), "usage");
    }

    #[test]
    fn store_errors_classify_by_kind() {
        let io = vecstore::Error::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(matches!(CliError::store("ctx", io), CliError::Io(_)));

        let corrupt = vecstore::Error::Store(vecstore::StoreError::BadMagic { found: *b"nope" });
        let classified = CliError::store("cannot read x.ivf", corrupt);
        assert!(matches!(classified, CliError::Corrupt(_)));
        assert!(classified.to_string().starts_with("cannot read x.ivf: "));

        let internal = vecstore::Error::Internal("bug".into());
        assert!(matches!(
            CliError::store("ctx", internal),
            CliError::Internal(_)
        ));
    }

    #[test]
    fn graph_errors_classify_by_kind() {
        let io = GraphIoError::Io(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(matches!(CliError::graph("ctx", io), CliError::Io(_)));
        let bad = GraphIoError::Malformed("short".into());
        assert!(matches!(CliError::graph("ctx", bad), CliError::Corrupt(_)));
    }
}
