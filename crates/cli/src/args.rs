//! Minimal command-line argument parsing.
//!
//! The workspace deliberately avoids an argument-parsing dependency; the CLI
//! accepts a single subcommand followed by `--key value` options and `--flag`
//! switches, which this module parses into an [`Args`] map with typed,
//! validating accessors.

use std::collections::BTreeMap;

/// Parsed command line: the subcommand plus its options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    options: BTreeMap<String, String>,
    flags: Vec<String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parses everything after the subcommand.  Options are `--key value`;
    /// switches are `--key` followed by another option or the end of the
    /// line.
    pub fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut options = BTreeMap::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{tok}`"));
            };
            if key.is_empty() {
                return Err("empty option name `--`".into());
            }
            let value_is_next = i + 1 < tokens.len() && !tokens[i + 1].starts_with("--");
            if value_is_next {
                options.insert(key.to_string(), tokens[i + 1].clone());
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Self {
            options,
            flags,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    fn mark(&self, key: &str) {
        self.consumed.borrow_mut().push(key.to_string());
    }

    /// Required string option.
    pub fn required(&self, key: &str) -> Result<String, String> {
        self.mark(key);
        self.options
            .get(key)
            .cloned()
            .ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Optional string option.
    pub fn optional(&self, key: &str) -> Option<String> {
        self.mark(key);
        self.options.get(key).cloned()
    }

    /// Optional string option with a default.
    pub fn string_or(&self, key: &str, default: &str) -> String {
        self.optional(key).unwrap_or_else(|| default.to_string())
    }

    /// Optional numeric option with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// Required numeric option.
    pub fn usize_required(&self, key: &str) -> Result<usize, String> {
        let v = self.required(key)?;
        v.parse()
            .map_err(|_| format!("--{key} expects an integer, got `{v}`"))
    }

    /// Optional float option with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    /// Optional u64 option with a default (seeds).
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.optional(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects an integer, got `{v}`")),
        }
    }

    /// The optional `--threads` knob shared by every worker-pool subcommand:
    /// absent means "use the `GKM_THREADS` environment default".
    pub fn threads_opt(&self) -> Result<Option<usize>, String> {
        match self.optional("threads") {
            None => Ok(None),
            Some(v) => v
                .parse::<usize>()
                .map(Some)
                .map_err(|_| format!("--threads expects a non-negative integer, got `{v}`")),
        }
    }

    /// `true` when the switch was present.
    pub fn flag(&self, key: &str) -> bool {
        self.mark(key);
        self.flags.iter().any(|f| f == key)
    }

    /// Rejects unknown options so typos fail loudly instead of being ignored.
    /// Call after every accessor the command supports has been exercised.
    pub fn finish(&self) -> Result<(), String> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<&String> = self
            .options
            .keys()
            .chain(self.flags.iter())
            .filter(|k| !consumed.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "unknown option(s): {}",
                unknown
                    .iter()
                    .map(|k| format!("--{k}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn parses_options_and_flags() {
        let args = Args::parse(&toks(&["--n", "500", "--verbose", "--out", "x.fvecs"])).unwrap();
        assert_eq!(args.usize_or("n", 1).unwrap(), 500);
        assert!(args.flag("verbose"));
        assert_eq!(args.required("out").unwrap(), "x.fvecs");
        assert!(args.finish().is_ok());
    }

    #[test]
    fn missing_required_and_bad_numbers_error() {
        let args = Args::parse(&toks(&["--n", "abc"])).unwrap();
        assert!(args.required("out").is_err());
        assert!(args.usize_or("n", 1).is_err());
    }

    #[test]
    fn rejects_positional_and_unknown() {
        assert!(Args::parse(&toks(&["positional"])).is_err());
        let args = Args::parse(&toks(&["--oops", "1"])).unwrap();
        assert!(args.finish().is_err());
    }

    #[test]
    fn defaults_apply() {
        let args = Args::parse(&toks(&[])).unwrap();
        assert_eq!(args.usize_or("k", 7).unwrap(), 7);
        assert_eq!(args.f64_or("scale", 0.5).unwrap(), 0.5);
        assert_eq!(args.u64_or("seed", 42).unwrap(), 42);
        assert_eq!(args.string_or("method", "gk"), "gk");
        assert!(!args.flag("full"));
    }
}
