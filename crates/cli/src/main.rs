//! `gkm-cli` — command-line front-end for the GK-means reproduction.
//!
//! ```text
//! gkm-cli gen-data     --out base.fvecs --dataset SIFT100K --n 20000
//! gkm-cli build-graph  --base base.fvecs --out graph.bin --method alg3
//! gkm-cli cluster      --base base.fvecs --k 200 --graph graph.bin --labels-out labels.txt
//! gkm-cli search       --base base.fvecs --graph graph.bin --queries q.fvecs --r 10
//! gkm-cli index build  --base base.fvecs --k 200 --out index.ivf
//! gkm-cli index search --index index.ivf --queries q.fvecs --r 10 --nprobe 8
//! gkm-cli index verify --index index.ivf --strict --spot-check 32
//! gkm-cli index compact --index index.ivf
//! gkm-cli serve        --index index.ivf --addr 127.0.0.1:7171
//! gkm-cli query        --addr 127.0.0.1:7171 --queries q.fvecs --r 10
//! gkm-cli stats        --addr 127.0.0.1:7171 --json
//! gkm-cli info         --base base.fvecs --graph graph.bin
//! ```
//!
//! Every subcommand prints its usage with `gkm-cli help <subcommand>`.
//!
//! Failures exit with a classified code — usage 2, I/O 3, corruption 4,
//! internal 5 (see [`error::CliError`]) — so scripts can distinguish "you
//! typo'd a flag" from "your index file is damaged".

mod args;
mod commands;
mod error;

use args::Args;
use error::CliError;

const GLOBAL_USAGE: &str = "\
gkm-cli <subcommand> [options]

Subcommands:
  gen-data      synthesize a clustered dataset and write it as .fvecs
  build-graph   build an approximate KNN graph (Alg. 3, NN-Descent, NSW, exact)
  cluster       run GK-means or a baseline k-means variant
  search        ANN search over a saved graph, with recall evaluation
  index build   cluster a base set and persist an IVF serving index
  index search  batched multi-probe ANN search over a saved IVF index
  index verify  validate a saved IVF index and its journal (checksums, invariants)
  index compact fold the mutation journal into the next clean checkpoint
  serve         run the dynamic-batching TCP query server over a saved index
  query         send query batches (or ping/shutdown) to a running server
  stats         fetch a running server's metrics snapshot and slow-query ring
  info          inspect a dataset / graph file
  help          show this message or a subcommand's options

Exit codes: 0 ok, 2 usage, 3 i/o, 4 corrupt artefact, 5 internal error";

const INDEX_USAGE_HINT: &str = "usage: `index build …`, `index search …`, `index verify …` or \
     `index compact …`; see `gkm-cli help index`";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error ({}): {e}", e.class());
            e.exit_code()
        }
    });
}

fn run(argv: &[String]) -> Result<(), CliError> {
    let Some(command) = argv.first() else {
        println!("{GLOBAL_USAGE}");
        return Ok(());
    };
    let rest = &argv[1..];
    match command.as_str() {
        "gen-data" => commands::gen_data::run(&Args::parse(rest)?),
        "build-graph" => commands::build_graph::run(&Args::parse(rest)?),
        "cluster" => commands::cluster::run(&Args::parse(rest)?),
        "search" => commands::search::run(&Args::parse(rest)?),
        "index" => match rest.first().map(String::as_str) {
            Some("build") => commands::index::run_build(&Args::parse(&rest[1..])?),
            Some("search") => commands::index::run_search(&Args::parse(&rest[1..])?),
            Some("verify") => commands::index::run_verify(&Args::parse(&rest[1..])?),
            Some("compact") => commands::index::run_compact(&Args::parse(&rest[1..])?),
            Some(other) => Err(CliError::Usage(format!(
                "unknown index action `{other}`; {INDEX_USAGE_HINT}"
            ))),
            None => Err(CliError::Usage(format!(
                "missing index action; {INDEX_USAGE_HINT}"
            ))),
        },
        "serve" => commands::serve::run(&Args::parse(rest)?),
        "query" => commands::query::run(&Args::parse(rest)?),
        "stats" => commands::stats::run(&Args::parse(rest)?),
        "info" => commands::info::run(&Args::parse(rest)?),
        "help" | "--help" | "-h" => {
            match rest.first().map(String::as_str) {
                Some("gen-data") => println!("{}", commands::gen_data::USAGE),
                Some("build-graph") => println!("{}", commands::build_graph::USAGE),
                Some("cluster") => println!("{}", commands::cluster::USAGE),
                Some("search") => println!("{}", commands::search::USAGE),
                Some("index") => println!(
                    "{}\n\n{}\n\n{}\n\n{}",
                    commands::index::BUILD_USAGE,
                    commands::index::SEARCH_USAGE,
                    commands::index::VERIFY_USAGE,
                    commands::index::COMPACT_USAGE
                ),
                Some("serve") => println!("{}", commands::serve::USAGE),
                Some("query") => println!("{}", commands::query::USAGE),
                Some("stats") => println!("{}", commands::stats::USAGE),
                Some("info") => println!("{}", commands::info::USAGE),
                _ => println!("{GLOBAL_USAGE}"),
            }
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}`\n\n{GLOBAL_USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        let err = run(&["frobnicate".to_string()]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
    }

    #[test]
    fn help_paths_succeed() {
        assert!(run(&[]).is_ok());
        assert!(run(&["help".to_string()]).is_ok());
        for sub in [
            "gen-data",
            "build-graph",
            "cluster",
            "search",
            "index",
            "serve",
            "query",
            "stats",
            "info",
        ] {
            assert!(run(&["help".to_string(), sub.to_string()]).is_ok());
        }
    }

    #[test]
    fn spot_check_classifies_semantic_corruption_as_exit_4() {
        let dir = std::env::temp_dir().join(format!("gkm-cli-spot-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.fvecs").to_str().unwrap().to_string();
        let index = dir.join("x.ivf").to_str().unwrap().to_string();
        let cmd = |line: &[&str]| run(&line.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        cmd(&[
            "gen-data",
            "--out",
            &base,
            "--dataset",
            "SIFT100K",
            "--n",
            "400",
            "--seed",
            "11",
        ])
        .unwrap();
        cmd(&[
            "index",
            "build",
            "--base",
            &base,
            "--k",
            "8",
            "--out",
            &index,
            "--method",
            "lloyd",
            "--iterations",
            "5",
            "--seed",
            "3",
        ])
        .unwrap();

        // NaN-poison the first panel row, re-framing the container so every
        // checksum is valid again: the damage a buggy producer would write,
        // invisible to structural verification.
        let bytes = std::fs::read(&index).unwrap();
        let mut sections = vecstore::io::read_sections_from(&bytes[..]).unwrap();
        let panel = sections
            .iter_mut()
            .find(|s| s.has_tag("IVFPANEL"))
            .expect("the index container carries a panel section");
        // Payload layout: n (u64) | dim (u64) | row-major f32 data.  Row 0 is
        // spot-check global index 0, replayed by any --spot-check n >= 1.
        panel.payload[16..20].copy_from_slice(&f32::NAN.to_le_bytes());
        let mut reframed = Vec::new();
        vecstore::io::write_sections_to(&mut reframed, &sections).unwrap();
        std::fs::write(&index, &reframed).unwrap();

        // Structural verification (checksums, framing, invariants) passes…
        cmd(&["index", "verify", "--index", &index]).unwrap();
        cmd(&["index", "verify", "--index", &index, "--strict"]).unwrap();
        // …but the semantic spot-check classifies it as corruption (exit 4):
        // the poisoned vector cannot return itself at distance zero.
        let err = cmd(&["index", "verify", "--index", &index, "--spot-check", "1"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("spot-check failed"), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_and_query_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gkm-cli-serve-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.fvecs").to_str().unwrap().to_string();
        let queries = dir.join("q.fvecs").to_str().unwrap().to_string();
        let index = dir.join("x.ivf").to_str().unwrap().to_string();
        let port_file = dir.join("port").to_str().unwrap().to_string();
        let cmd = |line: &[&str]| run(&line.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        cmd(&[
            "gen-data",
            "--out",
            &base,
            "--dataset",
            "SIFT100K",
            "--n",
            "600",
            "--queries",
            "20",
            "--queries-out",
            &queries,
            "--seed",
            "17",
        ])
        .unwrap();
        cmd(&[
            "index",
            "build",
            "--base",
            &base,
            "--k",
            "10",
            "--out",
            &index,
            "--method",
            "lloyd",
            "--iterations",
            "5",
            "--seed",
            "9",
        ])
        .unwrap();

        // `serve` binds an ephemeral port and publishes it via --port-file.
        let serve_line: Vec<String> = [
            "serve",
            "--index",
            &index,
            "--addr",
            "127.0.0.1:0",
            "--port-file",
            &port_file,
            "--max-delay-ms",
            "1",
            "--threads",
            "2",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let server = std::thread::spawn(move || run(&serve_line));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
        let port = loop {
            if let Ok(text) = std::fs::read_to_string(&port_file) {
                if let Ok(p) = text.trim().parse::<u16>() {
                    break p;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "serve never published its port"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        };
        let addr = format!("127.0.0.1:{port}");

        cmd(&["query", "--addr", &addr, "--ping"]).unwrap();
        cmd(&[
            "query",
            "--addr",
            &addr,
            "--queries",
            &queries,
            "--r",
            "5",
            "--nprobe",
            "4",
            "--json",
        ])
        .unwrap();
        // A generous deadline still succeeds; the budget rides the request.
        cmd(&[
            "query",
            "--addr",
            &addr,
            "--queries",
            &queries,
            "--r",
            "3",
            "--deadline-ms",
            "5000",
        ])
        .unwrap();
        // Missing --queries without a control flag is a usage error (exit 2).
        let err = cmd(&["query", "--addr", &addr]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");

        // The shutdown control frame drains the server; `serve` exits 0.
        cmd(&["query", "--addr", &addr, "--shutdown"]).unwrap();
        server
            .join()
            .expect("the serve thread panicked")
            .expect("serve must exit cleanly after a drain");
        // Against the stopped server the client fails as i/o (exit 3).
        let err = cmd(&[
            "query",
            "--addr",
            &addr,
            "--queries",
            &queries,
            "--retries",
            "2",
        ])
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn journal_lifecycle_verify_and_compact_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gkm-cli-wal-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.fvecs").to_str().unwrap().to_string();
        let index = dir.join("x.ivf").to_str().unwrap().to_string();
        let cmd = |line: &[&str]| run(&line.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        cmd(&[
            "gen-data",
            "--out",
            &base,
            "--dataset",
            "SIFT100K",
            "--n",
            "400",
            "--seed",
            "19",
        ])
        .unwrap();
        cmd(&[
            "index",
            "build",
            "--base",
            &base,
            "--k",
            "8",
            "--out",
            &index,
            "--method",
            "lloyd",
            "--iterations",
            "5",
            "--seed",
            "3",
        ])
        .unwrap();

        // `index compact` on a journal-less index: the journal is missing,
        // which recovery treats as empty — compaction is a no-op publish.
        cmd(&["index", "compact", "--index", &index]).unwrap();

        // Attach a journal and run a small mutation storm through the store
        // API (the TCP path is covered by the serve crate's tests).
        let wal = ivf::store::wal_path(&index);
        {
            let (mut store, _) = ivf::MutableStore::open(&index).unwrap();
            let dim = store.index().dim();
            for i in 0..5u32 {
                store.insert(&vec![i as f32; dim]).unwrap();
            }
            store.delete(0).unwrap();
        }
        assert!(wal.exists());

        // Verification audits the journal: clean journal passes (6 records),
        // a bit flip in it is classified corruption (exit 4) …
        cmd(&["index", "verify", "--index", &index, "--strict", "--json"]).unwrap();
        let clean = std::fs::read(&wal).unwrap();
        let mut flipped = clean.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x04;
        std::fs::write(&wal, &flipped).unwrap();
        let err = cmd(&["index", "verify", "--index", &index]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");

        // … and a torn tail passes leniently but is rejected under --strict.
        std::fs::write(&wal, &clean[..clean.len() - 3]).unwrap();
        cmd(&["index", "verify", "--index", &index]).unwrap();
        let err = cmd(&["index", "verify", "--index", &index, "--strict"]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert!(err.to_string().contains("torn tail"), "{err}");

        // Compaction folds the journal into a clean generation; afterwards
        // the strict pair (checkpoint + truncated journal) verifies, and the
        // compacted index still answers searches.
        std::fs::write(&wal, &clean).unwrap();
        cmd(&["index", "compact", "--index", &index, "--json"]).unwrap();
        cmd(&[
            "index",
            "verify",
            "--index",
            &index,
            "--strict",
            "--spot-check",
            "4",
        ])
        .unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_requires_a_valid_action() {
        assert!(run(&["index".to_string()]).is_err());
        assert!(run(&["index".to_string(), "frobnicate".to_string()]).is_err());
    }

    #[test]
    fn index_build_then_search_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gkm-cli-ivf-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.fvecs").to_str().unwrap().to_string();
        let queries = dir.join("q.fvecs").to_str().unwrap().to_string();
        let index = dir.join("x.ivf").to_str().unwrap().to_string();

        let cmd = |line: &[&str]| run(&line.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        cmd(&[
            "gen-data",
            "--out",
            &base,
            "--dataset",
            "SIFT100K",
            "--n",
            "1200",
            "--queries",
            "25",
            "--queries-out",
            &queries,
            "--seed",
            "13",
        ])
        .unwrap();
        cmd(&[
            "index",
            "build",
            "--base",
            &base,
            "--k",
            "20",
            "--out",
            &index,
            "--method",
            "lloyd",
            "--iterations",
            "8",
            "--seed",
            "5",
            "--json",
        ])
        .unwrap();
        assert!(std::fs::metadata(&index).unwrap().len() > 0);
        // self-ground-truth recall path, ground truth from the base set, the
        // timing-only path, and the threaded batched path must all succeed
        cmd(&[
            "index",
            "search",
            "--index",
            &index,
            "--queries",
            &queries,
            "--r",
            "5",
            "--nprobe",
            "4",
        ])
        .unwrap();
        cmd(&[
            "index",
            "search",
            "--index",
            &index,
            "--queries",
            &queries,
            "--r",
            "5",
            "--nprobe",
            "4",
            "--base",
            &base,
            "--json",
        ])
        .unwrap();
        cmd(&[
            "index",
            "search",
            "--index",
            &index,
            "--queries",
            &queries,
            "--no-recall",
            "--threads",
            "4",
        ])
        .unwrap();

        // `index verify` accepts the freshly-built index on every path:
        // lenient, strict, with an exact-scan spot-check, and as JSON.
        cmd(&["index", "verify", "--index", &index]).unwrap();
        cmd(&[
            "index",
            "verify",
            "--index",
            &index,
            "--strict",
            "--spot-check",
            "8",
            "--json",
        ])
        .unwrap();

        // Failures are classified: missing file → i/o (3), damaged file →
        // corruption (4), unknown flag → usage (2).
        let missing = dir.join("nope.ivf").to_str().unwrap().to_string();
        let err = cmd(&["index", "verify", "--index", &missing]).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        let bad = dir.join("bad.ivf").to_str().unwrap().to_string();
        let mut bytes = std::fs::read(&index).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&bad, &bytes).unwrap();
        let err = cmd(&["index", "verify", "--index", &bad]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        let err = cmd(&["index", "verify", "--index", &index, "--frobnicate"]).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        let err = cmd(&["index", "search", "--index", &bad, "--queries", &queries]).unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_pipeline_through_temp_files() {
        let dir = std::env::temp_dir().join(format!("gkm-cli-e2e-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("base.fvecs").to_str().unwrap().to_string();
        let queries = dir.join("q.fvecs").to_str().unwrap().to_string();
        let graph = dir.join("g.bin").to_str().unwrap().to_string();
        let labels = dir.join("labels.txt").to_str().unwrap().to_string();

        let cmd = |line: &[&str]| run(&line.iter().map(|s| s.to_string()).collect::<Vec<_>>());
        cmd(&[
            "gen-data",
            "--out",
            &base,
            "--dataset",
            "SIFT100K",
            "--n",
            "1500",
            "--queries",
            "30",
            "--queries-out",
            &queries,
            "--seed",
            "7",
        ])
        .unwrap();
        cmd(&[
            "build-graph",
            "--base",
            &base,
            "--out",
            &graph,
            "--method",
            "alg3",
            "--graph-k",
            "8",
            "--kappa",
            "8",
            "--xi",
            "25",
            "--tau",
            "3",
            "--estimate-recall",
            "50",
        ])
        .unwrap();
        cmd(&[
            "cluster",
            "--base",
            &base,
            "--k",
            "15",
            "--graph",
            &graph,
            "--iterations",
            "8",
            "--kappa",
            "8",
            "--labels-out",
            &labels,
            "--json",
        ])
        .unwrap();
        cmd(&[
            "search",
            "--base",
            &base,
            "--graph",
            &graph,
            "--queries",
            &queries,
            "--r",
            "5",
        ])
        .unwrap();
        cmd(&["info", "--base", &base, "--graph", &graph]).unwrap();

        let written = std::fs::read_to_string(&labels).unwrap();
        assert_eq!(written.lines().count(), 1470); // 1500 minus the 30 queries
        std::fs::remove_dir_all(&dir).ok();
    }
}
