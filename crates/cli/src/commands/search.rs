//! `search` — approximate nearest-neighbour search over a pre-built KNN graph
//! (Sec. 4.3's ANNS use of the construction), reporting recall and throughput.

use anns::{evaluate, GraphSearcher, SearchParams};
use knn_graph::brute::exact_ground_truth;
use knn_graph::io::read_graph;
use vecstore::io::read_fvecs;

use crate::args::Args;
use crate::error::CliError;

/// Usage text for `search`.
pub const USAGE: &str = "\
search --base <base.fvecs> --graph <graph.bin> --queries <queries.fvecs>
       [--r <neighbours per query>] [--ef <pool size>] [--seed <u64>]
       [--no-recall]           (skip the exact ground-truth computation)
Searches every query through the graph and reports recall@R, latency and the
average number of distance evaluations per query.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let base_path = args.required("base")?;
    let graph_path = args.required("graph")?;
    let query_path = args.required("queries")?;
    let r = args.usize_or("r", 10)?;
    let ef = args.usize_or("ef", 64)?;
    let seed = args.u64_or("seed", 0)?;
    let skip_recall = args.flag("no-recall");
    args.finish()?;

    let base = read_fvecs(&base_path)
        .map_err(|e| CliError::store(format!("cannot read {base_path}"), e))?;
    let graph = read_graph(&graph_path)
        .map_err(|e| CliError::graph(format!("cannot read {graph_path}"), e))?;
    let queries = read_fvecs(&query_path)
        .map_err(|e| CliError::store(format!("cannot read {query_path}"), e))?;
    if graph.len() != base.len() {
        return Err(CliError::Usage(format!(
            "graph covers {} nodes but the base set holds {}",
            graph.len(),
            base.len()
        )));
    }
    if queries.dim() != base.dim() {
        return Err(CliError::Usage(format!(
            "query dimensionality {} does not match the base set's {}",
            queries.dim(),
            base.dim()
        )));
    }
    let params = SearchParams::default().ef(ef).seed(seed);

    if skip_recall {
        // Timing-only mode: run the queries without the O(n·q·d) ground truth.
        let searcher = GraphSearcher::new(&base, &graph, params);
        let start = std::time::Instant::now();
        let mut evals = 0u64;
        for q in queries.rows() {
            let (_, stats) = searcher.search_with_stats(q, r);
            evals += stats.distance_evals;
        }
        let elapsed = start.elapsed().as_secs_f64();
        println!(
            "{} queries, r = {r}, ef = {ef}: {:.3} ms/query, {:.0} qps, {:.1} distance evals/query",
            queries.len(),
            elapsed * 1000.0 / queries.len() as f64,
            queries.len() as f64 / elapsed.max(1e-12),
            evals as f64 / queries.len() as f64
        );
    } else {
        let truth = exact_ground_truth(&base, &queries, r);
        let report = evaluate(&base, &graph, &queries, &truth, r, params);
        println!(
            "{} queries, r = {r}, ef = {ef}: recall@{r} = {:.3}, {:.3} ms/query, {:.0} qps, {:.1} distance evals/query",
            queries.len(),
            report.stats.recall,
            report.stats.avg_query_ms,
            report.stats.qps,
            report.stats.avg_distance_evals
        );
    }
    Ok(())
}
