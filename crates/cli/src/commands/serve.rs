//! `serve` — run the fault-tolerant dynamic-batching TCP query server over a
//! saved IVF index.
//!
//! The command loads the index, binds the GKSQ server and then parks in a
//! poll loop watching two stop conditions: the SIGINT/SIGTERM latch
//! ([`serve::signal`]) and a `Shutdown` control frame from a client (sent by
//! `gkm-cli query --shutdown`).  Either one triggers the same graceful drain
//! — stop accepting, answer everything admitted, join every thread — after
//! which the command prints a counter summary and exits 0.

use std::sync::Arc;
use std::time::Duration;

use ivf::store::wal_path;
use ivf::{IvfIndex, MutableStore};
use obs::ObsHandle;
use serve::batcher::{BatcherConfig, IvfBackend, MutableIvfBackend};
use serve::metrics::MetricsServer;
use serve::server::{Server, ServerConfig, StopReason};
use serve::signal;
use serve::MutableBackend;

use crate::args::Args;
use crate::error::CliError;

/// Usage text for `serve`.
pub const USAGE: &str = "\
serve --index <index.ivf> [--addr <host:port>]   (default 127.0.0.1:0 —
                                  an ephemeral port, printed once bound)
      [--mutable]                 (serve INSERT/DELETE/COMPACT frames too:
                                  attaches a crash-consistent journal beside
                                  the checkpoint; implied when <index>.wal
                                  already exists — recovery replays it)
      [--max-delay-ms <ms>]       (batching window, default 2)
      [--max-batch <n>]           (queries per backend call, default 64)
      [--queue-cap <n>]           (admission bound in queued queries;
                                  beyond it requests are shed OVERLOADED)
      [--resume-depth <n>]        (shedding stops once the queue drains
                                  to this depth; default queue-cap / 4)
      [--max-conns <n>]           (connection cap, default 256)
      [--threads <n>]             (worker threads per batch search)
      [--sq8]                     (serve from the quantized tier: scan u8
                                  panels, re-rank survivors exactly; the
                                  index must carry an SQ8 tier — build with
                                  `index build --sq8`)
      [--metrics-addr <host:port>] (additionally serve the metrics registry
                                  as Prometheus text over plain HTTP at
                                  /metrics, and as JSON at /json)
      [--slow-ms <ms>]            (slow-query ring threshold, default 25;
                                  queries at or above it are retained with
                                  their stage timings for `gkm-cli stats`)
      [--port-file <path>]        (write the bound port for scripts/tests)
Serves batched ANN queries over TCP (GKSQ protocol) until SIGINT/SIGTERM or a
client Shutdown frame, then drains gracefully: every admitted request is
answered before the process exits.  In mutable mode every acknowledged
mutation is journalled and fsynced before it is applied, so a crash loses
nothing that was acked.  Observability is always on: a running server
answers `gkm-cli stats` and traced `gkm-cli query --trace` requests.";

/// How often the serve loop polls the signal latch and the server state.
const POLL_TICK: Duration = Duration::from_millis(50);

/// Runs `serve`.
pub fn run(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let addr = args.string_or("addr", "127.0.0.1:0");
    let max_delay_ms = args.u64_or("max-delay-ms", 2)?;
    let max_batch = args.usize_or("max-batch", 64)?;
    let defaults = BatcherConfig::default();
    let queue_cap = args.usize_or("queue-cap", defaults.queue_cap)?;
    let resume_depth = args.usize_or("resume-depth", (queue_cap / 4).max(1))?;
    let max_connections = args.usize_or("max-conns", 256)?;
    let threads = args.threads_opt()?;
    let port_file = args.optional("port-file");
    let metrics_addr = args.optional("metrics-addr");
    let slow_ms = args.u64_or("slow-ms", 25)?;
    let mutable = args.flag("mutable");
    let sq8 = args.flag("sq8");
    args.finish()?;

    // Observability is always on for the CLI server: the overhead is one
    // relaxed atomic per event (gated in CI at ≤ 5% on serve latency), and
    // in exchange `stats`, `query --trace` and `--metrics-addr` all just
    // work against any `gkm-cli serve`.
    let obs = ObsHandle::with_slow_threshold(slow_ms.saturating_mul(1_000_000));

    let config = ServerConfig {
        addr: addr.clone(),
        batcher: BatcherConfig {
            max_batch,
            max_delay: Duration::from_millis(max_delay_ms),
            queue_cap,
            resume_depth,
        },
        max_connections,
        ..ServerConfig::default()
    };

    // An existing journal beside the checkpoint implies mutable serving:
    // ignoring it would silently discard acknowledged mutations.
    let wal = wal_path(&index_path);
    let mut server = if mutable || wal.exists() {
        let (store, report) = if wal.exists() {
            MutableStore::open(&index_path)
                .map_err(|e| CliError::store(format!("cannot recover {index_path}"), e))?
        } else {
            let index = IvfIndex::load(&index_path)
                .map_err(|e| CliError::store(format!("cannot read {index_path}"), e))?;
            let store = MutableStore::create(&index_path, index).map_err(|e| {
                CliError::store(format!("cannot attach a journal to {index_path}"), e)
            })?;
            (store, ivf::RecoveryReport::default())
        };
        if sq8 && !store.index().is_quantized() {
            return Err(CliError::Usage(format!(
                "--sq8 requires a quantized index, but {index_path} carries no SQ8 tier \
                 (rebuild with `index build --sq8`)"
            )));
        }
        println!(
            "loaded {index_path}: n = {}, d = {}, {} lists (mutable{}; journal replayed \
             {} records{}{})",
            store.index().live_len(),
            store.index().dim(),
            store.index().nlist(),
            if sq8 { ", sq8 serving tier" } else { "" },
            report.replayed,
            if report.skipped > 0 {
                format!(", {} already checkpointed", report.skipped)
            } else {
                String::new()
            },
            if report.torn_tail_dropped {
                ", torn tail dropped"
            } else {
                ""
            },
        );
        let backend: Arc<dyn MutableBackend> =
            Arc::new(MutableIvfBackend::new(store, threads).quantized(sq8));
        Server::start_mutable_obs(backend, config, &obs)
    } else {
        let index = IvfIndex::load(&index_path)
            .map_err(|e| CliError::store(format!("cannot read {index_path}"), e))?;
        if sq8 && !index.is_quantized() {
            return Err(CliError::Usage(format!(
                "--sq8 requires a quantized index, but {index_path} carries no SQ8 tier \
                 (rebuild with `index build --sq8`)"
            )));
        }
        println!(
            "loaded {index_path}: n = {}, d = {}, {} lists{}",
            index.len(),
            index.dim(),
            index.nlist(),
            if sq8 { " (sq8 serving tier)" } else { "" }
        );
        Server::start_obs(
            Arc::new(IvfBackend::new(index, threads).quantized(sq8)),
            config,
            &obs,
        )
    }
    .map_err(|e| CliError::io(format!("cannot bind {addr}"), e))?;

    let mut metrics = match &metrics_addr {
        Some(maddr) => {
            let m = MetricsServer::start(maddr, obs.clone())
                .map_err(|e| CliError::io(format!("cannot bind metrics listener {maddr}"), e))?;
            println!("metrics on http://{}/metrics", m.local_addr());
            Some(m)
        }
        None => None,
    };

    signal::install();
    let bound = server.local_addr();
    println!("serving on {bound} (Ctrl-C or `gkm-cli query --addr {bound} --shutdown` to drain)");
    if let Some(path) = &port_file {
        // Written after the bind so a watching script sees a usable port.
        std::fs::write(path, format!("{}\n", bound.port()))
            .map_err(|e| CliError::io(format!("cannot write {path}"), e))?;
    }

    let reason = loop {
        if signal::shutdown_requested() {
            break server.shutdown();
        }
        if server.is_finished() {
            break server.join();
        }
        std::thread::sleep(POLL_TICK);
    };

    let stats = server.stats();
    println!(
        "drained ({}) — {} accepted / {} served / {} shed / {} deadline-expired / {} internal; \
         {} mutations journalled / {} applied / {} compactions; \
         {} connections ({} refused), {} protocol errors",
        match reason {
            StopReason::CtlFrame => "shutdown frame",
            StopReason::Requested => "signal",
        },
        stats.batcher.accepted,
        stats.batcher.served,
        stats.batcher.shed,
        stats.batcher.deadline_expired,
        stats.batcher.internal_errors,
        stats.batcher.mutations_journaled,
        stats.batcher.mutations_applied,
        stats.batcher.compactions,
        stats.connections_accepted,
        stats.connections_refused,
        stats.protocol_errors,
    );
    if let Some(m) = metrics.as_mut() {
        m.shutdown();
    }
    Ok(())
}
