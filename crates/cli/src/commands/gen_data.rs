//! `gen-data` — synthesize a surrogate descriptor collection and write it as
//! an `.fvecs` file (optionally splitting off a query set).

use datagen::{DatasetSpec, DescriptorFamily, GmmDataset, Workload};
use vecstore::io::write_fvecs;
use vecstore::sample::split_base_query;

use crate::args::Args;
use crate::commands::parse_dataset;
use crate::error::CliError;

/// Usage text for `gen-data`.
pub const USAGE: &str = "\
gen-data --out <base.fvecs> [--dataset SIFT1M|GIST1M|Glove1M|VLAD10M|SIFT100K]
         [--n <samples>] [--scale <fraction>] [--seed <u64>]
         [--queries <count> --queries-out <queries.fvecs>]
         [--dim <d> --components <c>]   (custom spec instead of --dataset)
Writes a synthetic clustered dataset with the same dimensionality and value
range as the paper's collections (Tab. 1).";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let out = args.required("out")?;
    let seed = args.u64_or("seed", 42)?;
    let queries = args.usize_or("queries", 0)?;
    let queries_out = args.optional("queries-out");

    let data = if let Some(dim) = args.optional("dim") {
        // Custom spec path: --dim and --components describe the mixture.
        let dim: usize = dim
            .parse()
            .map_err(|_| "--dim expects an integer".to_string())?;
        let n = args.usize_or("n", 10_000)?;
        let components = args.usize_or("components", (n / 200).clamp(16, 4096))?;
        let spec = DatasetSpec::new(n, dim, components).with_family(DescriptorFamily::SiftLike);
        spec.validate()?;
        GmmDataset::generate(&spec, seed).data
    } else {
        let dataset = parse_dataset(&args.string_or("dataset", "SIFT100K"))?;
        let workload = if let Some(n) = args.optional("n") {
            let n: usize = n
                .parse()
                .map_err(|_| "--n expects an integer".to_string())?;
            Workload::generate_with_n(dataset, n, seed)
        } else {
            Workload::generate(dataset, args.f64_or("scale", 0.02)?, seed)
        };
        workload.data
    };
    args.finish()?;

    if queries > 0 {
        let queries_out =
            queries_out.ok_or_else(|| "--queries requires --queries-out".to_string())?;
        let (base, query_set) = split_base_query(&data, queries, seed ^ 0x51_u64)
            .map_err(|e| CliError::Usage(format!("cannot split queries: {e}")))?;
        write_fvecs(&out, &base).map_err(|e| CliError::store(format!("cannot write {out}"), e))?;
        write_fvecs(&queries_out, &query_set)
            .map_err(|e| CliError::store(format!("cannot write {queries_out}"), e))?;
        println!(
            "wrote {} base vectors to {out} and {} queries to {queries_out} ({} dims)",
            base.len(),
            query_set.len(),
            base.dim()
        );
    } else {
        write_fvecs(&out, &data).map_err(|e| CliError::store(format!("cannot write {out}"), e))?;
        println!(
            "wrote {} vectors of dimension {} to {out}",
            data.len(),
            data.dim()
        );
    }
    Ok(())
}
