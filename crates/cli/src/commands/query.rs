//! `query` — client for a running `gkm-cli serve` instance.
//!
//! Reads a query file, chunks it into protocol-sized requests and sends each
//! through the classification-aware retry helper: `OVERLOADED` sheds and
//! transport failures are retried with jittered exponential backoff (the
//! request never ran, so a retry is sound), while `DEADLINE_EXCEEDED` and
//! every other rejection fail fast.  `--ping` and `--shutdown` speak the
//! control frames instead of searching.

use std::time::Duration;

use obs::trace::next_trace_id;
use obs::StageTimings;
use serve::client::{retry_search, Client, ClientError, RetryPolicy, ThreadSleeper};
use serve::protocol::{SearchRequest, MAX_QUERIES_PER_REQUEST};
use vecstore::io::read_fvecs;

use crate::args::Args;
use crate::error::CliError;

/// Usage text for `query`.
pub const USAGE: &str = "\
query --addr <host:port> --queries <queries.fvecs>
      [--r <neighbours per query>] [--nprobe <lists per query>]
      [--deadline-ms <ms>]        (per-request budget; expired requests are
                                  answered DEADLINE_EXCEEDED, never retried)
      [--retries <n>]             (attempts per request, default 4; only
                                  OVERLOADED sheds and transport failures
                                  are retried, with jittered backoff)
      [--timeout-ms <ms>]         (connect/read/write timeout, default 5000)
      [--trace]                   (mint a trace id per request and report the
                                  server-side stage timings: queue wait, IVF
                                  route / scan / re-rank, total residence)
      [--json]                    (machine-readable results)
      [--ping]                    (liveness round-trip instead of searching)
      [--shutdown]                (ask the server to drain and exit)
Sends query batches to a running `gkm-cli serve` over the GKSQ protocol.";

/// Classifies a [`ClientError`]: transport → i/o (3), undecodable bytes →
/// corruption (4), typed server rejections and id mismatches → internal (5).
pub(crate) fn classify(context: &str, e: ClientError) -> CliError {
    let msg = format!("{context}: {e}");
    match e {
        ClientError::Io(_) => CliError::Io(msg),
        ClientError::Wire(_) => CliError::Corrupt(msg),
        ClientError::Rejected { .. } | ClientError::Mismatch { .. } => CliError::Internal(msg),
    }
}

/// Runs `query`.
pub fn run(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let ping = args.flag("ping");
    let shutdown = args.flag("shutdown");
    let query_path = args.optional("queries");
    let r = args.usize_or("r", 10)?;
    let nprobe = args.usize_or("nprobe", 8)?;
    let deadline_ms = args.u64_or("deadline-ms", 0)?;
    let retries = args.usize_or("retries", 4)?;
    let timeout_ms = args.u64_or("timeout-ms", 5000)?;
    let trace = args.flag("trace");
    let json = args.flag("json");
    args.finish()?;

    if deadline_ms > u64::from(u32::MAX) {
        return Err(CliError::Usage(format!(
            "--deadline-ms must fit in 32 bits, got {deadline_ms}"
        )));
    }
    if r == 0 || r > usize::from(u16::MAX) {
        return Err(CliError::Usage(format!(
            "--r must be between 1 and {}, got {r}",
            u16::MAX
        )));
    }
    if nprobe > usize::from(u16::MAX) {
        return Err(CliError::Usage(format!(
            "--nprobe must fit in 16 bits, got {nprobe}"
        )));
    }
    let timeout = Duration::from_millis(timeout_ms);

    if ping || shutdown {
        let mut client = Client::connect(addr.as_str(), timeout)
            .map_err(|e| classify(&format!("cannot connect to {addr}"), e))?;
        if ping {
            client
                .ping()
                .map_err(|e| classify(&format!("ping to {addr} failed"), e))?;
            println!("pong from {addr}");
        }
        if shutdown {
            client
                .shutdown_server()
                .map_err(|e| classify(&format!("shutdown of {addr} failed"), e))?;
            println!("{addr} acknowledged the shutdown and is draining");
        }
        return Ok(());
    }

    let query_path = query_path.ok_or_else(|| {
        CliError::Usage("--queries is required unless --ping or --shutdown is given".into())
    })?;
    let queries = read_fvecs(&query_path)
        .map_err(|e| CliError::store(format!("cannot read {query_path}"), e))?;
    if queries.is_empty() {
        return Err(CliError::Usage(format!("{query_path} contains no queries")));
    }

    let policy = RetryPolicy {
        max_attempts: (retries as u32).max(1),
        ..RetryPolicy::default()
    };
    let mut sleeper = ThreadSleeper;
    // One connection, re-established on transport failure: the retry closure
    // drops a broken client so the next attempt reconnects, which also
    // covers "the server was not up yet" connect errors.
    let mut client: Option<Client> = None;
    let dim = queries.dim();
    let flat = queries.as_flat();
    let mut results = Vec::with_capacity(queries.len());
    // One entry per request when --trace is given: (trace id, batch size,
    // server-side stage timings).
    let mut traces: Vec<(u64, usize, StageTimings)> = Vec::new();
    let mut requests = 0u64;
    let start = std::time::Instant::now();
    let mut offset = 0usize;
    while offset < queries.len() {
        let take = (queries.len() - offset).min(MAX_QUERIES_PER_REQUEST as usize);
        requests += 1;
        let req = SearchRequest {
            id: requests,
            deadline_ms: deadline_ms as u32,
            r: r as u16,
            nprobe: nprobe as u16,
            dim: dim as u32,
            queries: flat[offset * dim..(offset + take) * dim].to_vec(),
        };
        let trace_id = if trace { next_trace_id() } else { 0 };
        let (chunk, timings) = retry_search(&policy, &mut sleeper, |_attempt| {
            if client.is_none() {
                client = Some(Client::connect(addr.as_str(), timeout)?);
            }
            let connected = client.as_mut().ok_or_else(|| {
                ClientError::Io(std::io::Error::other("client unexpectedly missing"))
            })?;
            let out = if trace {
                connected
                    .search_traced(trace_id, &req)
                    .map(|(chunk, timings)| (chunk, Some(timings)))
            } else {
                connected.search(&req).map(|chunk| (chunk, None))
            };
            if matches!(out, Err(ClientError::Io(_) | ClientError::Wire(_))) {
                client = None; // broken stream: reconnect on the next attempt
            }
            out
        })
        .map_err(|e| classify(&format!("search against {addr} failed"), e))?;
        results.extend(chunk);
        if let Some(timings) = timings {
            traces.push((trace_id, take, timings));
        }
        offset += take;
    }
    let elapsed = start.elapsed().as_secs_f64();

    if json {
        let out = serde_json::json!({
            "addr": addr,
            "queries": queries.len(),
            "requests": requests,
            "r": r,
            "nprobe": nprobe,
            "deadline_ms": deadline_ms,
            "elapsed_s": elapsed,
            "qps": queries.len() as f64 / elapsed.max(1e-12),
            "traces": traces
                .iter()
                .map(|(id, batch, t)| {
                    serde_json::json!({
                        "trace_id": format!("{id:016x}"),
                        "queries": *batch as u64,
                        "queue_wait_nanos": t.queue_wait_nanos,
                        "route_nanos": t.route_nanos,
                        "scan_nanos": t.scan_nanos,
                        "rerank_nanos": t.rerank_nanos,
                        "total_nanos": t.total_nanos,
                    })
                })
                .collect::<Vec<_>>(),
            "results": results
                .iter()
                .map(|neighbours| {
                    neighbours
                        .iter()
                        .map(|n| serde_json::json!({"id": n.id, "dist": n.dist}))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        for (q, neighbours) in results.iter().enumerate() {
            let line: Vec<String> = neighbours
                .iter()
                .map(|n| format!("{}:{:.4}", n.id, n.dist))
                .collect();
            println!("query {q}: {}", line.join(" "));
        }
        for (id, batch, t) in &traces {
            let us = |n: u64| n as f64 / 1000.0;
            println!(
                "trace {id:016x}: {batch} queries, queue {:.1}us + route {:.1}us + \
                 scan {:.1}us + rerank {:.1}us, total {:.1}us",
                us(t.queue_wait_nanos),
                us(t.route_nanos),
                us(t.scan_nanos),
                us(t.rerank_nanos),
                us(t.total_nanos),
            );
        }
        println!(
            "{} queries in {requests} request(s), r = {r}, nprobe = {nprobe}: {:.3} ms/query, {:.0} qps",
            queries.len(),
            elapsed * 1000.0 / queries.len() as f64,
            queries.len() as f64 / elapsed.max(1e-12),
        );
    }
    Ok(())
}
