//! `build-graph` — construct an approximate KNN graph over an `.fvecs` base
//! set with any of the construction methods the paper discusses, and save it.

use std::time::Instant;

use gkmeans::{GkParams, KnnGraphBuilder, ParallelKnnGraphBuilder};
use knn_graph::brute::{exact_graph, exact_neighbors_of_subset};
use knn_graph::io::write_graph;
use knn_graph::nn_descent::{nn_descent_with_stats, NnDescentParams};
use knn_graph::nsw::{nsw_build_with_stats, truncate_to_k, NswParams};
use knn_graph::recall::estimated_recall_at_1;
use vecstore::io::read_fvecs;
use vecstore::sample::{rng_from_seed, sample_distinct};

use crate::args::Args;
use crate::error::CliError;

/// Usage text for `build-graph`.
pub const USAGE: &str = "\
build-graph --base <base.fvecs> --out <graph.bin>
            [--method alg3|alg3-par|nn-descent|nsw|exact]   (default alg3)
            [--graph-k <neighbours>]  [--kappa <k>] [--xi <size>] [--tau <rounds>]
            [--seed <u64>] [--estimate-recall <samples>]
Builds the KNN graph with Alg. 3 (GK-means-driven construction), NN-Descent,
NSW or exhaustive search, and reports the construction cost.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let base_path = args.required("base")?;
    let out = args.required("out")?;
    let method = args.string_or("method", "alg3");
    let graph_k = args.usize_or("graph-k", 10)?;
    let kappa = args.usize_or("kappa", 50)?;
    let xi = args.usize_or("xi", 50)?;
    let tau = args.usize_or("tau", 10)?;
    let seed = args.u64_or("seed", 0)?;
    let recall_samples = args.usize_or("estimate-recall", 0)?;
    args.finish()?;

    let data = read_fvecs(&base_path)
        .map_err(|e| CliError::store(format!("cannot read {base_path}"), e))?;
    println!("loaded {} × {} from {base_path}", data.len(), data.dim());

    let params = GkParams::default()
        .kappa(kappa)
        .xi(xi)
        .tau(tau)
        .seed(seed)
        .record_trace(false);
    let start = Instant::now();
    let (graph, cost_note) = match method.as_str() {
        "alg3" => {
            let (g, stats) = KnnGraphBuilder::new(params).graph_k(graph_k).build(&data);
            (
                g,
                format!(
                    "{} refinement distance evals over {} rounds",
                    stats.refine_distance_evals, stats.rounds
                ),
            )
        }
        "alg3-par" => {
            let (g, stats) = ParallelKnnGraphBuilder::new(params)
                .graph_k(graph_k)
                .build(&data);
            (
                g,
                format!(
                    "{} refinement distance evals over {} rounds (parallel refinement)",
                    stats.refine_distance_evals, stats.rounds
                ),
            )
        }
        "nn-descent" => {
            let (g, stats) = nn_descent_with_stats(
                &data,
                &NnDescentParams {
                    k: graph_k,
                    seed,
                    ..Default::default()
                },
            );
            (
                g,
                format!(
                    "{} distance evals over {} rounds",
                    stats.distance_evals, stats.rounds
                ),
            )
        }
        "nsw" => {
            let (g, stats) = nsw_build_with_stats(&data, &NswParams::with_m(graph_k).seed(seed));
            (
                truncate_to_k(&g, graph_k),
                format!(
                    "{} distance evals, {} edges added",
                    stats.distance_evals, stats.edges_added
                ),
            )
        }
        "exact" => (
            exact_graph(&data, graph_k),
            "exhaustive O(n²·d) construction".to_string(),
        ),
        other => {
            return Err(CliError::Usage(format!(
                "unknown method `{other}`; expected alg3, alg3-par, nn-descent, nsw or exact"
            )))
        }
    };
    let elapsed = start.elapsed();

    write_graph(&out, &graph).map_err(|e| CliError::graph(format!("cannot write {out}"), e))?;
    println!(
        "built `{method}` graph (k = {}, mean degree {:.1}) in {:.2}s — {cost_note}",
        graph.k(),
        graph.mean_degree(),
        elapsed.as_secs_f64()
    );
    if recall_samples > 0 {
        // The paper's estimation protocol (Sec. 5.1): exact neighbours of a
        // random subset of samples stand in for the full ground truth.
        let mut rng = rng_from_seed(seed ^ 0x7ec);
        let count = recall_samples.min(data.len());
        let sample_ids = sample_distinct(&mut rng, data.len(), count)
            .map_err(|e| CliError::Internal(format!("cannot sample recall subset: {e}")))?;
        let truth = exact_neighbors_of_subset(&data, &sample_ids, 1);
        let recall = estimated_recall_at_1(&graph, &sample_ids, &truth);
        println!("estimated recall@1 over {count} samples: {recall:.3}");
    }
    println!("graph written to {out}");
    Ok(())
}
