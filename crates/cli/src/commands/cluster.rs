//! `cluster` — cluster an `.fvecs` base set with GK-means or any of the
//! baseline k-means variants, write the labels and report cost/quality.

use std::time::Duration;

use baselines::akm::ApproximateKMeans;
use baselines::bisecting::BisectingKMeans;
use baselines::closure::ClosureKMeans;
use baselines::common::{Clustering, KMeansConfig};
use baselines::elkan::ElkanKMeans;
use baselines::hamerly::HamerlyKMeans;
use baselines::hkm::HierarchicalKMeans;
use baselines::lloyd::LloydKMeans;
use baselines::minibatch::MiniBatchKMeans;
use baselines::seeding::Seeding;
use gkmeans::{BoostKMeans, GkMeansPipeline, GkMode, GkParams};
use knn_graph::io::read_graph;
use vecstore::io::read_fvecs;
use vecstore::VectorSet;

use crate::args::Args;
use crate::commands::write_labels;
use crate::error::CliError;

/// Usage text for `cluster`.
pub const USAGE: &str = "\
cluster --base <base.fvecs> --k <clusters> [--labels-out <labels.txt>]
        [--method gk|gk-trad|bkm|lloyd|kmeans++|minibatch|closure|bisecting|elkan|hamerly|akm|hkm]
        [--iterations <t>] [--kappa <k>] [--xi <size>] [--tau <rounds>] [--seed <u64>]
        [--threads <n>]                (opt-in worker pool for gk/gk-trad
                                        epochs + two-means init, lloyd,
                                        elkan and hamerly; output is
                                        bit-identical at any thread count,
                                        default 1 = paper-faithful)
        [--graph <graph.bin>]          (pre-built graph for gk/gk-trad)
        [--json]                       (machine-readable report on stdout)
Clusters the base set and prints the distortion, per-phase timing and distance
evaluation counts (the cost model the paper reports).";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let base_path = args.required("base")?;
    let k = args.usize_required("k")?;
    let method = args.string_or("method", "gk");
    let iterations = args.usize_or("iterations", 30)?;
    let kappa = args.usize_or("kappa", 50)?;
    let xi = args.usize_or("xi", 50)?;
    let tau = args.usize_or("tau", 10)?;
    let seed = args.u64_or("seed", 0)?;
    let threads = args.threads_opt()?;
    let labels_out = args.optional("labels-out");
    let graph_path = args.optional("graph");
    let json = args.flag("json");
    args.finish()?;

    let data = read_fvecs(&base_path)
        .map_err(|e| CliError::store(format!("cannot read {base_path}"), e))?;
    if k == 0 || k > data.len() {
        return Err(CliError::Usage(format!(
            "--k must be between 1 and the number of samples ({})",
            data.len()
        )));
    }

    let (clustering, graph_time) = run_method(
        &method,
        &data,
        k,
        iterations,
        kappa,
        xi,
        tau,
        seed,
        threads,
        graph_path.as_deref(),
    )?;

    let distortion = clustering.distortion(&data);
    if json {
        let report = serde_json::json!({
            "method": method,
            "n": data.len(),
            "dim": data.dim(),
            "k": k,
            "iterations": clustering.iterations,
            "distortion": distortion,
            "non_empty_clusters": clustering.non_empty_clusters(),
            "distance_evals": clustering.distance_evals,
            "graph_secs": graph_time.as_secs_f64(),
            "init_secs": clustering.init_time.as_secs_f64(),
            "iter_secs": clustering.iter_time.as_secs_f64(),
        });
        println!("{}", serde_json::to_string_pretty(&report).expect("json"));
    } else {
        println!("{method}: n = {}, d = {}, k = {k}", data.len(), data.dim());
        println!(
            "  distortion E = {distortion:.4}   non-empty clusters = {}",
            clustering.non_empty_clusters()
        );
        println!(
            "  time: graph {:.2}s + init {:.2}s + iterations {:.2}s ({} iterations, {} distance evals)",
            graph_time.as_secs_f64(),
            clustering.init_time.as_secs_f64(),
            clustering.iter_time.as_secs_f64(),
            clustering.iterations,
            clustering.distance_evals
        );
    }
    if let Some(path) = labels_out {
        write_labels(&path, &clustering.labels)?;
        println!("labels written to {path}");
    }
    Ok(())
}

/// Dispatches on the method name; returns the clustering plus the graph-
/// construction time (zero for graph-free methods).  Shared with
/// `index build`, which turns the fit into an IVF serving index.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_method(
    method: &str,
    data: &VectorSet,
    k: usize,
    iterations: usize,
    kappa: usize,
    xi: usize,
    tau: usize,
    seed: u64,
    threads: Option<usize>,
    graph_path: Option<&str>,
) -> Result<(Clustering, Duration), CliError> {
    let mut cfg = KMeansConfig::with_k(k).max_iters(iterations).seed(seed);
    let mut gk_params = GkParams::default()
        .kappa(kappa)
        .xi(xi)
        .tau(tau)
        .iterations(iterations)
        .seed(seed);
    if let Some(t) = threads {
        cfg = cfg.threads(t);
        gk_params = gk_params.threads(t);
    }

    let run_pipeline = |params: GkParams| -> Result<(Clustering, Duration), CliError> {
        let pipeline = GkMeansPipeline::new(params);
        let outcome = if let Some(path) = graph_path {
            let graph =
                read_graph(path).map_err(|e| CliError::graph(format!("cannot read {path}"), e))?;
            pipeline.cluster_with_graph(data, k, graph, Duration::ZERO)
        } else {
            pipeline.cluster(data, k)
        };
        Ok((outcome.clustering, outcome.graph_time))
    };

    match method {
        "gk" => run_pipeline(gk_params),
        "gk-trad" => run_pipeline(gk_params.mode(GkMode::Traditional)),
        "bkm" => Ok((BoostKMeans::new(cfg).fit(data), Duration::ZERO)),
        "lloyd" => Ok((LloydKMeans::new(cfg).fit(data), Duration::ZERO)),
        "kmeans++" => Ok((
            LloydKMeans::new(cfg)
                .with_seeding(Seeding::KMeansPlusPlus)
                .fit(data),
            Duration::ZERO,
        )),
        "minibatch" => Ok((MiniBatchKMeans::new(cfg).fit(data), Duration::ZERO)),
        "closure" => Ok((ClosureKMeans::new(cfg).fit(data), Duration::ZERO)),
        "bisecting" => Ok((BisectingKMeans::new(cfg).fit(data), Duration::ZERO)),
        "elkan" => Ok((ElkanKMeans::new(cfg).fit(data), Duration::ZERO)),
        "hamerly" => Ok((HamerlyKMeans::new(cfg).fit(data), Duration::ZERO)),
        "akm" => Ok((ApproximateKMeans::new(cfg).fit(data), Duration::ZERO)),
        "hkm" => Ok((HierarchicalKMeans::new(cfg).fit(data), Duration::ZERO)),
        other => Err(CliError::Usage(format!(
            "unknown method `{other}`; see `gkm-cli help cluster` for the list"
        ))),
    }
}
