//! `stats` — fetch a running server's metrics snapshot over the GKSQ Stats
//! frame.
//!
//! The snapshot is rendered server-side from the same registry that backs the
//! drain summary and the optional `--metrics-addr` HTTP listener, so all
//! three surfaces always agree.  Three formats are offered: a human-readable
//! table (default), JSON (`--json`, includes the slow-query ring) and the
//! Prometheus text exposition (`--prometheus`, byte-identical to an HTTP
//! scrape of `/metrics`).

use std::time::Duration;

use serve::client::Client;
use serve::protocol::StatsFormat;

use crate::args::Args;
use crate::commands::query::classify;
use crate::error::CliError;

/// Usage text for `stats`.
pub const USAGE: &str = "\
stats --addr <host:port>
      [--json]                    (registry snapshot + slow-query ring as JSON)
      [--prometheus]              (Prometheus text exposition, identical to an
                                  HTTP scrape of the server's /metrics)
      [--timeout-ms <ms>]         (connect/read/write timeout, default 5000)
Fetches a running `gkm-cli serve`'s metrics snapshot: counters, gauges and
per-stage latency histograms (queue wait, IVF route/scan/re-rank, WAL fsync),
plus the slow-query trace ring.  Default output is a human-readable table.";

/// Runs `stats`.
pub fn run(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let json = args.flag("json");
    let prometheus = args.flag("prometheus");
    let timeout_ms = args.u64_or("timeout-ms", 5000)?;
    args.finish()?;

    if json && prometheus {
        return Err(CliError::Usage(
            "--json and --prometheus are mutually exclusive".into(),
        ));
    }
    let format = if json {
        StatsFormat::Json
    } else if prometheus {
        StatsFormat::Prometheus
    } else {
        StatsFormat::Human
    };

    let mut client = Client::connect(addr.as_str(), Duration::from_millis(timeout_ms))
        .map_err(|e| classify(&format!("cannot connect to {addr}"), e))?;
    let text = client
        .stats(format)
        .map_err(|e| classify(&format!("stats request to {addr} failed"), e))?;
    print!("{text}");
    if !text.ends_with('\n') {
        println!();
    }
    Ok(())
}
