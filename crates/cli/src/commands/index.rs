//! `index` — build and query the IVF serving index: `index build` clusters a
//! base set (any method the `cluster` subcommand supports) and persists the
//! inverted-file index; `index search` answers query batches from it;
//! `index compact` folds a mutation journal into the next clean checkpoint
//! generation; `index verify` audits both the checkpoint and its journal.

use ivf::store::{decode_op, wal_path};
use ivf::{evaluate, IvfIndex, IvfSearchParams, MutableStore};
use knn_graph::Neighbor;
use vecstore::io::read_fvecs;
use vecstore::wal::replay_wal;

use crate::args::Args;
use crate::commands::cluster::run_method;
use crate::error::CliError;

/// Usage text for `index build`.
pub const BUILD_USAGE: &str = "\
index build --base <base.fvecs> --k <clusters> --out <index.ivf>
            [--method gk|gk-trad|bkm|lloyd|kmeans++|minibatch|closure|bisecting|elkan|hamerly|akm|hkm]
            [--iterations <t>] [--kappa <k>] [--xi <size>] [--tau <rounds>] [--seed <u64>]
            [--threads <n>] [--graph <graph.bin>]  (same knobs as `cluster`)
            [--json]                               (machine-readable report)
Clusters the base set, re-orders it into contiguous per-cluster panels with an
id remap, and writes the IVF index (centroids + list offsets + ids + panel) as
a chunked-section file.";

/// Usage text for `index search`.
pub const SEARCH_USAGE: &str = "\
index search --index <index.ivf> --queries <queries.fvecs>
             [--r <neighbours per query>] [--nprobe <lists per query>]
             [--threads <n>]     (batched search on the worker pool; results
                                  are bit-identical at any thread count)
             [--base <base.fvecs>] (compute the exact ground truth from the
                                  original base set — the same input the
                                  graph `search` subcommand uses; without it
                                  the index's own exhaustive nprobe=k scan
                                  serves as ground truth)
             [--no-recall]       (timing only, skip the ground truth)
             [--json]            (machine-readable report)
Runs every query through the index (batched multi-probe search) and reports
recall@R, latency, QPS and distance evaluations per query.";

/// Usage text for `index verify`.
pub const VERIFY_USAGE: &str = "\
index verify --index <index.ivf>
             [--strict]          (require the checksummed v2 container;
                                  legacy v1 files are rejected, and a torn
                                  journal tail is treated as corruption)
             [--spot-check <n>]  (exhaustively search n stored vectors and
                                  require each to come back at distance 0)
             [--json]            (machine-readable report)
Validates a saved IVF index: container checksums, framing, and cross-section
invariants are checked on load; --spot-check additionally replays stored
vectors through an exact scan.  When a mutation journal (<index>.wal) rides
beside the checkpoint it is audited too — record CRCs, length complements,
dense monotone sequence numbers, decodable mutation ops, and a start sequence
the checkpoint can anchor.  Exits 0 when the pair is sound, 4 when either
file is corrupt, 3 on i/o failure.";

/// Usage text for `index compact`.
pub const COMPACT_USAGE: &str = "\
index compact --index <index.ivf>
              [--json]           (machine-readable report)
Folds the mutation journal (<index>.wal) into the next clean checkpoint
generation: replays the journal's valid prefix onto the checkpoint, rebuilds
contiguous per-cluster panels from the live set (appends folded in,
tombstones dropped), atomically publishes the new generation, and truncates
the journal.  Search over the compacted index is bit-identical to the dirty
index it replaces.  Exits 0 on success, 4 when either file is corrupt, 3 on
i/o failure.";

/// Runs `index build`.
pub fn run_build(args: &Args) -> Result<(), CliError> {
    let base_path = args.required("base")?;
    let k = args.usize_required("k")?;
    let out = args.required("out")?;
    let method = args.string_or("method", "lloyd");
    let iterations = args.usize_or("iterations", 30)?;
    let kappa = args.usize_or("kappa", 50)?;
    let xi = args.usize_or("xi", 50)?;
    let tau = args.usize_or("tau", 10)?;
    let seed = args.u64_or("seed", 0)?;
    let threads = args.threads_opt()?;
    let graph_path = args.optional("graph");
    let json = args.flag("json");
    args.finish()?;

    let data = read_fvecs(&base_path)
        .map_err(|e| CliError::store(format!("cannot read {base_path}"), e))?;
    if k == 0 || k > data.len() {
        return Err(CliError::Usage(format!(
            "--k must be between 1 and the number of samples ({})",
            data.len()
        )));
    }
    let (clustering, _) = run_method(
        &method,
        &data,
        k,
        iterations,
        kappa,
        xi,
        tau,
        seed,
        threads,
        graph_path.as_deref(),
    )?;
    let index = IvfIndex::build(&data, &clustering.centroids, &clustering.labels)
        .map_err(|e| CliError::store("cannot build the IVF index", e))?;
    index
        .save(&out)
        .map_err(|e| CliError::store(format!("cannot write {out}"), e))?;

    let sizes: Vec<usize> = (0..index.nlist()).map(|c| index.list_len(c)).collect();
    let max_list = sizes.iter().copied().max().unwrap_or(0);
    let empty_lists = sizes.iter().filter(|&&s| s == 0).count();
    if json {
        let report = serde_json::json!({
            "method": method,
            "n": index.len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "max_list_len": max_list,
            "empty_lists": empty_lists,
            "out": out,
        });
        println!("{}", serde_json::to_string_pretty(&report).expect("json"));
    } else {
        println!(
            "ivf index: n = {}, d = {}, {} lists (avg {:.1}, max {max_list}, {empty_lists} empty), method {method}",
            index.len(),
            index.dim(),
            index.nlist(),
            index.len() as f64 / index.nlist() as f64,
        );
        println!("written to {out}");
    }
    Ok(())
}

/// Runs `index search`.
pub fn run_search(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let query_path = args.required("queries")?;
    let r = args.usize_or("r", 10)?;
    let nprobe = args.usize_or("nprobe", 8)?;
    let threads = args.threads_opt()?;
    let base_path = args.optional("base");
    let skip_recall = args.flag("no-recall");
    let json = args.flag("json");
    args.finish()?;

    let index = IvfIndex::load(&index_path)
        .map_err(|e| CliError::store(format!("cannot read {index_path}"), e))?;
    let queries = read_fvecs(&query_path)
        .map_err(|e| CliError::store(format!("cannot read {query_path}"), e))?;
    if queries.dim() != index.dim() {
        return Err(CliError::Usage(format!(
            "query dimensionality {} does not match the index's {}",
            queries.dim(),
            index.dim()
        )));
    }
    let mut params = IvfSearchParams::default().nprobe(nprobe);
    if let Some(t) = threads {
        params = params.threads(t);
    }
    // Report the lists a query actually probes (the knob clamped to
    // 1..=nlist), so text and JSON output agree on the work performed.
    let nprobe = index.effective_nprobe(nprobe);

    if skip_recall {
        let start = std::time::Instant::now();
        let (_, stats) = index.batch_search_with_stats(&queries, r, params);
        let elapsed = start.elapsed().as_secs_f64();
        let nq = queries.len();
        let avg_query_ms = elapsed * 1000.0 / nq as f64;
        let qps = nq as f64 / elapsed.max(1e-12);
        let avg_evals = stats.distance_evals as f64 / nq as f64;
        if json {
            let out = serde_json::json!({
                "queries": nq,
                "r": r,
                "nprobe": nprobe,
                "avg_query_ms": avg_query_ms,
                "qps": qps,
                "avg_distance_evals": avg_evals,
            });
            println!("{}", serde_json::to_string_pretty(&out).expect("json"));
        } else {
            println!(
                "{nq} queries, r = {r}, nprobe = {nprobe}: {avg_query_ms:.3} ms/query, \
                 {qps:.0} qps, {avg_evals:.1} distance evals/query"
            );
        }
        return Ok(());
    }

    let truth: Vec<Vec<Neighbor>> = match base_path {
        Some(path) => {
            let base =
                read_fvecs(&path).map_err(|e| CliError::store(format!("cannot read {path}"), e))?;
            if base.dim() != index.dim() {
                return Err(CliError::Usage(format!(
                    "base dimensionality {} does not match the index's {}",
                    base.dim(),
                    index.dim()
                )));
            }
            knn_graph::brute::exact_ground_truth(&base, &queries, r)
        }
        // Probing every list is an exhaustive scan, so the index can serve
        // as its own exact ground truth.  The thread knob (or its
        // GKM_THREADS default) applies here too — results are bit-identical
        // at any thread count, so only wall-clock changes.
        None => {
            let mut gt_params = IvfSearchParams::default().nprobe(index.nlist());
            if let Some(t) = threads {
                gt_params = gt_params.threads(t);
            }
            index.batch_search(&queries, r, gt_params)
        }
    };
    let report = evaluate(&index, &queries, &truth, r, params);
    if json {
        let out = serde_json::json!({
            "queries": queries.len(),
            "r": r,
            "nprobe": report.nprobe,
            "recall": report.stats.recall,
            "avg_query_ms": report.stats.avg_query_ms,
            "qps": report.stats.qps,
            "avg_distance_evals": report.stats.avg_distance_evals,
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{} queries, r = {r}, nprobe = {nprobe}: recall@{r} = {:.3}, {:.3} ms/query, {:.0} qps, {:.1} distance evals/query",
            queries.len(),
            report.stats.recall,
            report.stats.avg_query_ms,
            report.stats.qps,
            report.stats.avg_distance_evals
        );
    }
    Ok(())
}

/// Runs `index verify`.
///
/// Loading already validates every container checksum and cross-section
/// invariant (the typed [`vecstore::StoreError`] taxonomy), so a successful
/// load *is* the structural verification; `--spot-check n` additionally
/// replays `n` evenly-spaced stored vectors through an exhaustive
/// `nprobe = nlist` scan and requires each to come back at distance zero —
/// a semantic end-to-end check that the panel, ids and centroids agree.
pub fn run_verify(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let strict = args.flag("strict");
    let spot_check = args.usize_or("spot-check", 0)?;
    let json = args.flag("json");
    args.finish()?;

    let index = if strict {
        IvfIndex::load_strict(&index_path)
    } else {
        IvfIndex::load(&index_path)
    }
    .map_err(|e| CliError::store(format!("cannot verify {index_path}"), e))?;

    let spot = spot_check.min(index.len());
    let mut checked = 0usize;
    if let Some(step) = index.len().checked_div(spot) {
        let step = step.max(1);
        let params = IvfSearchParams::default().nprobe(index.nlist());
        let d = index.dim();
        let mut global = 0usize;
        'lists: for c in 0..index.nlist() {
            let (rows, ids) = index.list(c);
            for (j, &id) in ids.iter().enumerate() {
                if global % step == 0 {
                    let row = &rows[j * d..(j + 1) * d];
                    let hit = index.search(row, 1, params).first().copied();
                    if !hit.is_some_and(|h| h.dist == 0.0) {
                        return Err(CliError::Corrupt(format!(
                            "spot-check failed: stored vector id {id} (list {c}) \
                             did not return at distance 0 under an exhaustive scan"
                        )));
                    }
                    checked += 1;
                    if checked == spot {
                        break 'lists;
                    }
                }
                global += 1;
            }
        }
    }

    // Audit the mutation journal riding beside the checkpoint, read-only:
    // replay validates record CRCs, length complements and dense monotone
    // sequences; decoding every body validates the op taxonomy; the header's
    // start sequence must not outrun the checkpoint's applied cursor (that
    // would mean acknowledged records are missing).
    let wal = wal_path(&index_path);
    let mut wal_audit: Option<(usize, bool)> = None;
    if wal.exists() {
        let bytes = std::fs::read(&wal)
            .map_err(|e| CliError::io(format!("cannot read {}", wal.display()), e))?;
        let replay = replay_wal(&bytes)
            .map_err(|e| CliError::store(format!("cannot verify {}", wal.display()), e))?;
        if replay.valid_len > 0 && replay.start_seq > index.applied_seq() {
            return Err(CliError::Corrupt(format!(
                "journal {} starts at sequence {} but the checkpoint only covers up to {} — \
                 acknowledged records are missing",
                wal.display(),
                replay.start_seq,
                index.applied_seq()
            )));
        }
        for record in &replay.records {
            decode_op(&record.body, index.dim())
                .map_err(|e| CliError::store(format!("cannot verify {}", wal.display()), e))?;
        }
        if strict && replay.torn {
            return Err(CliError::Corrupt(format!(
                "journal {} has a torn tail (an unacknowledged partial append); \
                 strict verification rejects it — recover by opening the store, \
                 or compact to truncate the journal",
                wal.display()
            )));
        }
        wal_audit = Some((replay.records.len(), replay.torn));
    }

    if json {
        let out = serde_json::json!({
            "index": index_path,
            "status": "ok",
            "strict": strict,
            "n": index.len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "spot_checked": checked,
            "wal": match wal_audit {
                Some((records, torn)) => serde_json::json!({
                    "path": wal.display().to_string(),
                    "records": records,
                    "torn_tail": torn,
                }),
                None => serde_json::Value::Null,
            },
            "checksum_impl": vecstore::checksum::active_impl(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{index_path}: ok{} — n = {}, d = {}, {} lists ({} via {}){}",
            if strict { " (strict)" } else { "" },
            index.len(),
            index.dim(),
            index.nlist(),
            if checked > 0 {
                format!("{checked} vectors spot-checked")
            } else {
                "no spot-check".to_string()
            },
            vecstore::checksum::active_impl(),
            match wal_audit {
                Some((records, torn)) => format!(
                    "; journal ok — {records} records{}",
                    if torn {
                        ", torn tail pending truncation"
                    } else {
                        ""
                    }
                ),
                None => String::new(),
            },
        );
    }
    Ok(())
}

/// Runs `index compact`.
pub fn run_compact(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let json = args.flag("json");
    args.finish()?;

    let (mut store, report) = MutableStore::open(&index_path)
        .map_err(|e| CliError::store(format!("cannot open {index_path}"), e))?;
    let appends = store.index().pending_appends();
    let tombstones = store.index().tombstoned();
    store
        .compact()
        .map_err(|e| CliError::store(format!("cannot compact {index_path}"), e))?;
    let index = store.index();
    if json {
        let out = serde_json::json!({
            "index": index_path,
            "replayed": report.replayed,
            "skipped": report.skipped,
            "torn_tail_dropped": report.torn_tail_dropped,
            "appends_folded": appends,
            "tombstones_dropped": tombstones,
            "n": index.live_len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "applied_seq": index.applied_seq(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{index_path}: compacted — replayed {} journal records{}{}, folded {appends} \
             appends, dropped {tombstones} tombstones; new generation has n = {}, {} lists, \
             journal truncated at sequence {}",
            report.replayed,
            if report.skipped > 0 {
                format!(" ({} already checkpointed)", report.skipped)
            } else {
                String::new()
            },
            if report.torn_tail_dropped {
                " (torn tail dropped)"
            } else {
                ""
            },
            index.live_len(),
            index.nlist(),
            index.applied_seq(),
        );
    }
    Ok(())
}
