//! `index` — build and query the IVF serving index: `index build` clusters a
//! base set (any method the `cluster` subcommand supports) and persists the
//! inverted-file index; `index search` answers query batches from it;
//! `index compact` folds a mutation journal into the next clean checkpoint
//! generation; `index verify` audits both the checkpoint and its journal.

use ivf::store::{decode_op, wal_path, MutationOp};
use ivf::{evaluate, IvfIndex, IvfSearchParams, MutableStore};
use knn_graph::Neighbor;
use vecstore::io::read_fvecs;
use vecstore::wal::replay_wal;

use crate::args::Args;
use crate::commands::cluster::run_method;
use crate::error::CliError;

/// Usage text for `index build`.
pub const BUILD_USAGE: &str = "\
index build --base <base.fvecs> --k <clusters> --out <index.ivf>
            [--method gk|gk-trad|bkm|lloyd|kmeans++|minibatch|closure|bisecting|elkan|hamerly|akm|hkm]
            [--iterations <t>] [--kappa <k>] [--xi <size>] [--tau <rounds>] [--seed <u64>]
            [--threads <n>] [--graph <graph.bin>]  (same knobs as `cluster`)
            [--sq8]                                (attach the SQ8 quantized
                                  serving tier: per-list per-dim min/max u8
                                  codes persisted beside the f32 panel)
            [--json]                               (machine-readable report)
Clusters the base set, re-orders it into contiguous per-cluster panels with an
id remap, and writes the IVF index (centroids + list offsets + ids + panel) as
a chunked-section file.";

/// Usage text for `index search`.
pub const SEARCH_USAGE: &str = "\
index search --index <index.ivf> --queries <queries.fvecs>
             [--r <neighbours per query>] [--nprobe <lists per query>]
             [--threads <n>]     (batched search on the worker pool; results
                                  are bit-identical at any thread count)
             [--base <base.fvecs>] (compute the exact ground truth from the
                                  original base set — the same input the
                                  graph `search` subcommand uses; without it
                                  the index's own exhaustive nprobe=k scan
                                  serves as ground truth)
             [--no-recall]       (timing only, skip the ground truth)
             [--sq8]             (serve from the SQ8 quantized tier: u8 code
                                  scan into a top-(r·overfetch) pool, exact
                                  f32 re-rank of the survivors; requires an
                                  index built/quantized with --sq8)
             [--overfetch <x>]   (SQ8 candidate-pool factor, default 4)
             [--json]            (machine-readable report)
Runs every query through the index (batched multi-probe search) and reports
recall@R, latency, QPS and distance evaluations per query.  Ground truth is
always the exact f32 scan, so with --sq8 the reported recall measures the
quantized tier against the exact path.";

/// Usage text for `index verify`.
pub const VERIFY_USAGE: &str = "\
index verify --index <index.ivf>
             [--strict]          (require the checksummed v2 container;
                                  legacy v1 files are rejected, and a torn
                                  journal tail is treated as corruption)
             [--spot-check <n>]  (exhaustively search n stored vectors —
                                  panel rows AND journal-replayed append
                                  rows — and require each live one to come
                                  back at distance 0)
             [--sq8]             (spot-check the quantized tier instead:
                                  de-quantized self-hits must land within
                                  the per-list quantization error bound;
                                  also reports quantization stats)
             [--json]            (machine-readable report)
Validates a saved IVF index: container checksums, framing, and cross-section
invariants are checked on load; --spot-check additionally replays stored
vectors through an exact scan.  When a mutation journal (<index>.wal) rides
beside the checkpoint it is audited too — record CRCs, length complements,
dense monotone sequence numbers, decodable mutation ops, and a start sequence
the checkpoint can anchor — and its valid records are replayed in memory so
the spot-check also covers vectors living in append regions.  Exits 0 when
the pair is sound, 4 when either file is corrupt, 3 on i/o failure.";

/// Usage text for `index compact`.
pub const COMPACT_USAGE: &str = "\
index compact --index <index.ivf>
              [--json]           (machine-readable report)
Folds the mutation journal (<index>.wal) into the next clean checkpoint
generation: replays the journal's valid prefix onto the checkpoint, rebuilds
contiguous per-cluster panels from the live set (appends folded in,
tombstones dropped), atomically publishes the new generation, and truncates
the journal.  Search over the compacted index is bit-identical to the dirty
index it replaces.  Exits 0 on success, 4 when either file is corrupt, 3 on
i/o failure.";

/// Runs `index build`.
pub fn run_build(args: &Args) -> Result<(), CliError> {
    let base_path = args.required("base")?;
    let k = args.usize_required("k")?;
    let out = args.required("out")?;
    let method = args.string_or("method", "lloyd");
    let iterations = args.usize_or("iterations", 30)?;
    let kappa = args.usize_or("kappa", 50)?;
    let xi = args.usize_or("xi", 50)?;
    let tau = args.usize_or("tau", 10)?;
    let seed = args.u64_or("seed", 0)?;
    let threads = args.threads_opt()?;
    let graph_path = args.optional("graph");
    let sq8 = args.flag("sq8");
    let json = args.flag("json");
    args.finish()?;

    let data = read_fvecs(&base_path)
        .map_err(|e| CliError::store(format!("cannot read {base_path}"), e))?;
    if k == 0 || k > data.len() {
        return Err(CliError::Usage(format!(
            "--k must be between 1 and the number of samples ({})",
            data.len()
        )));
    }
    let (clustering, _) = run_method(
        &method,
        &data,
        k,
        iterations,
        kappa,
        xi,
        tau,
        seed,
        threads,
        graph_path.as_deref(),
    )?;
    let mut index = IvfIndex::build(&data, &clustering.centroids, &clustering.labels)
        .map_err(|e| CliError::store("cannot build the IVF index", e))?;
    if sq8 {
        index.quantize();
    }
    index
        .save(&out)
        .map_err(|e| CliError::store(format!("cannot write {out}"), e))?;

    let sizes: Vec<usize> = (0..index.nlist()).map(|c| index.list_len(c)).collect();
    let max_list = sizes.iter().copied().max().unwrap_or(0);
    let empty_lists = sizes.iter().filter(|&&s| s == 0).count();
    let panel_bytes = index.len() * index.dim() * 4;
    if json {
        let report = serde_json::json!({
            "method": method,
            "n": index.len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "max_list_len": max_list,
            "empty_lists": empty_lists,
            "sq8": match index.sq8() {
                Some(tier) => serde_json::json!({
                    "code_bytes": tier.code_bytes(),
                    "panel_bytes": panel_bytes,
                }),
                None => serde_json::Value::Null,
            },
            "out": out,
        });
        println!("{}", serde_json::to_string_pretty(&report).expect("json"));
    } else {
        println!(
            "ivf index: n = {}, d = {}, {} lists (avg {:.1}, max {max_list}, {empty_lists} empty), method {method}",
            index.len(),
            index.dim(),
            index.nlist(),
            index.len() as f64 / index.nlist() as f64,
        );
        if let Some(tier) = index.sq8() {
            println!(
                "sq8 tier: {} code bytes beside {panel_bytes} f32 panel bytes \
                 ({:.2}x panel compression)",
                tier.code_bytes(),
                panel_bytes as f64 / tier.code_bytes().max(1) as f64,
            );
        }
        println!("written to {out}");
    }
    Ok(())
}

/// Runs `index search`.
pub fn run_search(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let query_path = args.required("queries")?;
    let r = args.usize_or("r", 10)?;
    let nprobe = args.usize_or("nprobe", 8)?;
    let threads = args.threads_opt()?;
    let base_path = args.optional("base");
    let skip_recall = args.flag("no-recall");
    let sq8 = args.flag("sq8");
    let overfetch = args.usize_or("overfetch", 4)?;
    let json = args.flag("json");
    args.finish()?;

    let index = IvfIndex::load(&index_path)
        .map_err(|e| CliError::store(format!("cannot read {index_path}"), e))?;
    if sq8 && !index.is_quantized() {
        return Err(CliError::Usage(format!(
            "--sq8 requires a quantized index, but {index_path} carries no SQ8 tier \
             (rebuild with `index build --sq8`)"
        )));
    }
    let queries = read_fvecs(&query_path)
        .map_err(|e| CliError::store(format!("cannot read {query_path}"), e))?;
    if queries.dim() != index.dim() {
        return Err(CliError::Usage(format!(
            "query dimensionality {} does not match the index's {}",
            queries.dim(),
            index.dim()
        )));
    }
    let mut params = IvfSearchParams::default()
        .nprobe(nprobe)
        .sq8(sq8)
        .overfetch(overfetch);
    if let Some(t) = threads {
        params = params.threads(t);
    }
    // Report the lists a query actually probes (the knob clamped to
    // 1..=nlist), so text and JSON output agree on the work performed.
    let nprobe = index.effective_nprobe(nprobe);

    if skip_recall {
        let start = std::time::Instant::now();
        let (_, stats) = index.batch_search_with_stats(&queries, r, params);
        let elapsed = start.elapsed().as_secs_f64();
        let nq = queries.len();
        let avg_query_ms = elapsed * 1000.0 / nq as f64;
        let qps = nq as f64 / elapsed.max(1e-12);
        let avg_evals = stats.distance_evals as f64 / nq as f64;
        let avg_bytes = stats.panel_bytes as f64 / nq as f64;
        if json {
            let out = serde_json::json!({
                "queries": nq,
                "r": r,
                "nprobe": nprobe,
                "sq8": sq8,
                "overfetch": match sq8 {
                    true => serde_json::json!(overfetch.max(1)),
                    false => serde_json::Value::Null,
                },
                "avg_query_ms": avg_query_ms,
                "qps": qps,
                "avg_distance_evals": avg_evals,
                "avg_panel_bytes": avg_bytes,
            });
            println!("{}", serde_json::to_string_pretty(&out).expect("json"));
        } else {
            println!(
                "{nq} queries, r = {r}, nprobe = {nprobe}{}: {avg_query_ms:.3} ms/query, \
                 {qps:.0} qps, {avg_evals:.1} distance evals/query, {avg_bytes:.0} panel \
                 bytes/query",
                if sq8 {
                    format!(", sq8 overfetch = {}", overfetch.max(1))
                } else {
                    String::new()
                }
            );
        }
        return Ok(());
    }

    let truth: Vec<Vec<Neighbor>> = match base_path {
        Some(path) => {
            let base =
                read_fvecs(&path).map_err(|e| CliError::store(format!("cannot read {path}"), e))?;
            if base.dim() != index.dim() {
                return Err(CliError::Usage(format!(
                    "base dimensionality {} does not match the index's {}",
                    base.dim(),
                    index.dim()
                )));
            }
            knn_graph::brute::exact_ground_truth(&base, &queries, r)
        }
        // Probing every list is an exhaustive scan, so the index can serve
        // as its own exact ground truth.  The thread knob (or its
        // GKM_THREADS default) applies here too — results are bit-identical
        // at any thread count, so only wall-clock changes.
        None => {
            let mut gt_params = IvfSearchParams::default().nprobe(index.nlist());
            if let Some(t) = threads {
                gt_params = gt_params.threads(t);
            }
            index.batch_search(&queries, r, gt_params)
        }
    };
    let report = evaluate(&index, &queries, &truth, r, params);
    if json {
        let out = serde_json::json!({
            "queries": queries.len(),
            "r": r,
            "nprobe": report.nprobe,
            "sq8": sq8,
            "overfetch": match sq8 {
                true => serde_json::json!(overfetch.max(1)),
                false => serde_json::Value::Null,
            },
            "recall": report.stats.recall,
            "avg_query_ms": report.stats.avg_query_ms,
            "qps": report.stats.qps,
            "avg_distance_evals": report.stats.avg_distance_evals,
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{} queries, r = {r}, nprobe = {nprobe}{}: recall@{r} = {:.3}, {:.3} ms/query, {:.0} qps, {:.1} distance evals/query",
            queries.len(),
            if sq8 {
                format!(", sq8 overfetch = {}", overfetch.max(1))
            } else {
                String::new()
            },
            report.stats.recall,
            report.stats.avg_query_ms,
            report.stats.qps,
            report.stats.avg_distance_evals
        );
    }
    Ok(())
}

/// Runs `index verify`.
///
/// Loading already validates every container checksum and cross-section
/// invariant (the typed [`vecstore::StoreError`] taxonomy), so a successful
/// load *is* the structural verification; `--spot-check n` additionally
/// replays `n` evenly-spaced stored vectors through an exhaustive
/// `nprobe = nlist` scan and requires each to come back at distance zero —
/// a semantic end-to-end check that the panel, ids and centroids agree.
pub fn run_verify(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let strict = args.flag("strict");
    let spot_check = args.usize_or("spot-check", 0)?;
    let sq8 = args.flag("sq8");
    let json = args.flag("json");
    args.finish()?;

    let mut index = if strict {
        IvfIndex::load_strict(&index_path)
    } else {
        IvfIndex::load(&index_path)
    }
    .map_err(|e| CliError::store(format!("cannot verify {index_path}"), e))?;
    if sq8 && !index.is_quantized() {
        return Err(CliError::Usage(format!(
            "--sq8 requires a quantized index, but {index_path} carries no SQ8 tier \
             (rebuild with `index build --sq8`)"
        )));
    }

    // Audit the mutation journal riding beside the checkpoint: replay
    // validates record CRCs, length complements and dense monotone
    // sequences; decoding every body validates the op taxonomy; the header's
    // start sequence must not outrun the checkpoint's applied cursor (that
    // would mean acknowledged records are missing).  The valid records are
    // then applied to the in-memory index (the file is untouched) so the
    // spot-check below covers vectors living in append regions, not just
    // the contiguous checkpoint panel.
    let wal = wal_path(&index_path);
    let mut wal_audit: Option<(usize, bool)> = None;
    if wal.exists() {
        let bytes = std::fs::read(&wal)
            .map_err(|e| CliError::io(format!("cannot read {}", wal.display()), e))?;
        let replay = replay_wal(&bytes)
            .map_err(|e| CliError::store(format!("cannot verify {}", wal.display()), e))?;
        if replay.valid_len > 0 && replay.start_seq > index.applied_seq() {
            return Err(CliError::Corrupt(format!(
                "journal {} starts at sequence {} but the checkpoint only covers up to {} — \
                 acknowledged records are missing",
                wal.display(),
                replay.start_seq,
                index.applied_seq()
            )));
        }
        for record in &replay.records {
            let op = decode_op(&record.body, index.dim())
                .map_err(|e| CliError::store(format!("cannot verify {}", wal.display()), e))?;
            if record.seq < index.applied_seq() {
                continue; // already folded into the checkpoint
            }
            match op {
                MutationOp::Insert { id, vector } => {
                    index.apply_insert(id, &vector).map_err(|e| {
                        CliError::store(format!("cannot replay {}", wal.display()), e)
                    })?;
                }
                MutationOp::Delete { id } => {
                    index.delete(id);
                }
            }
        }
        if strict && replay.torn {
            return Err(CliError::Corrupt(format!(
                "journal {} has a torn tail (an unacknowledged partial append); \
                 strict verification rejects it — recover by opening the store, \
                 or compact to truncate the journal",
                wal.display()
            )));
        }
        wal_audit = Some((replay.records.len(), replay.torn));
    }

    // Spot-check evenly over every stored row — contiguous panel rows and
    // journal-replayed append rows alike — skipping tombstoned ids (a
    // deleted vector is *supposed* to be unfindable).  In f32 mode a stored
    // vector must return itself at exactly distance 0 under an exhaustive
    // scan; in --sq8 mode the row is de-quantized from its stored codes
    // first and the self-hit must land within the list's quantization error
    // bound `Σ (scale/2)²` (appended rows may additionally have been clamped
    // to the list's frozen range, which is checked component-wise).
    let total_rows = index.len() + index.pending_appends();
    let spot = spot_check.min(total_rows);
    let mut checked = 0usize;
    if let Some(step) = total_rows.checked_div(spot).map(|s| s.max(1)) {
        let params = IvfSearchParams::default().nprobe(index.nlist());
        let d = index.dim();
        let mut global = 0usize;
        let mut panel_pos = 0usize; // lists are contiguous in list order
        let mut decoded = vec![0.0f32; d];
        'lists: for c in 0..index.nlist() {
            let (rows, ids) = index.list(c);
            let (arows, aids) = index.append_list(c);
            let panel_len = ids.len();
            for (j, &id) in ids.iter().chain(aids.iter()).enumerate() {
                let in_panel = j < panel_len;
                let row = if in_panel {
                    &rows[j * d..(j + 1) * d]
                } else {
                    let aj = j - panel_len;
                    &arows[aj * d..(aj + 1) * d]
                };
                if global % step == 0 && index.is_live(id) {
                    match index.sq8().filter(|_| sq8) {
                        None => {
                            let hit = index.search(row, 1, params).first().copied();
                            if !hit.is_some_and(|h| h.dist == 0.0) {
                                return Err(CliError::Corrupt(format!(
                                    "spot-check failed: stored vector id {id} (list {c}, \
                                     {} region) did not return at distance 0 under an \
                                     exhaustive scan",
                                    if in_panel { "panel" } else { "append" }
                                )));
                            }
                        }
                        Some(tier) => {
                            let codes = if in_panel {
                                tier.panel_row_codes(panel_pos + j)
                            } else {
                                tier.append_row_codes(c, j - panel_len)
                            };
                            let mins = tier.list_mins(c);
                            let scales = tier.list_scales(c);
                            ivf::sq8::decode_row_into(codes, mins, scales, &mut decoded);
                            // Component-wise quantizer contract: error within
                            // scale/2 (plus f32 rounding slack), or the code
                            // saturated because the value sat outside the
                            // list's frozen range (possible only for rows
                            // appended after quantization).
                            for i in 0..d {
                                let err = (f64::from(row[i]) - f64::from(decoded[i])).abs();
                                let tol = f64::from(scales[i]) * 0.5 * (1.0 + 1e-4) + 1e-30;
                                let clamped = codes[i] == 0 || codes[i] == 255;
                                if err > tol && !clamped {
                                    return Err(CliError::Corrupt(format!(
                                        "sq8 spot-check failed: stored vector id {id} \
                                         (list {c}) de-quantizes {err:.3e} away from its \
                                         f32 row at component {i} (bound {tol:.3e})"
                                    )));
                                }
                            }
                            // End-to-end: the de-quantized row searched
                            // through the exact path must land within the
                            // list's self-hit bound (skip rows with clamped
                            // components — their reconstruction error is
                            // unbounded by design).
                            let saturated = codes.iter().any(|&b| b == 0 || b == 255) && !in_panel;
                            if !saturated {
                                let bound = tier.self_hit_bound(c) * (1.0 + 1e-4) + 1e-30;
                                let hit = index.search(&decoded, 1, params).first().copied();
                                if !hit.is_some_and(|h| f64::from(h.dist) <= bound) {
                                    return Err(CliError::Corrupt(format!(
                                        "sq8 spot-check failed: the de-quantized self-hit \
                                         of vector id {id} (list {c}) landed outside the \
                                         quantization error bound {bound:.3e}"
                                    )));
                                }
                            }
                        }
                    }
                    checked += 1;
                    if checked == spot {
                        break 'lists;
                    }
                }
                global += 1;
            }
            panel_pos += panel_len;
        }
    }

    // Quantization stats: footprint of the code panels against the f32 rows
    // they shadow, plus the worst per-list error bound — the number a
    // capacity plan actually needs.
    let sq8_stats = index.sq8().map(|tier| {
        let f32_bytes = total_rows * index.dim() * 4;
        let max_scale = (0..tier.nlist())
            .flat_map(|c| tier.list_scales(c))
            .copied()
            .fold(0.0f32, f32::max);
        let max_bound = (0..tier.nlist())
            .map(|c| tier.self_hit_bound(c))
            .fold(0.0f64, f64::max);
        (tier.code_bytes(), f32_bytes, max_scale, max_bound)
    });

    if json {
        let out = serde_json::json!({
            "index": index_path,
            "status": "ok",
            "strict": strict,
            "n": index.len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "spot_checked": checked,
            "sq8": match sq8_stats {
                Some((code_bytes, f32_bytes, max_scale, max_bound)) => serde_json::json!({
                    "code_bytes": code_bytes,
                    "f32_panel_bytes": f32_bytes,
                    "max_scale": max_scale,
                    "max_self_hit_bound": max_bound,
                }),
                None => serde_json::Value::Null,
            },
            "wal": match wal_audit {
                Some((records, torn)) => serde_json::json!({
                    "path": wal.display().to_string(),
                    "records": records,
                    "torn_tail": torn,
                }),
                None => serde_json::Value::Null,
            },
            "checksum_impl": vecstore::checksum::active_impl(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{index_path}: ok{} — n = {}, d = {}, {} lists ({} via {}){}{}",
            if strict { " (strict)" } else { "" },
            index.len(),
            index.dim(),
            index.nlist(),
            if checked > 0 {
                format!("{checked} vectors spot-checked")
            } else {
                "no spot-check".to_string()
            },
            vecstore::checksum::active_impl(),
            match sq8_stats {
                Some((code_bytes, f32_bytes, max_scale, max_bound)) => format!(
                    "; sq8 tier — {code_bytes} code bytes beside {f32_bytes} f32 bytes, \
                     max scale {max_scale:.3e}, max self-hit bound {max_bound:.3e}"
                ),
                None => String::new(),
            },
            match wal_audit {
                Some((records, torn)) => format!(
                    "; journal ok — {records} records{}",
                    if torn {
                        ", torn tail pending truncation"
                    } else {
                        ""
                    }
                ),
                None => String::new(),
            },
        );
    }
    Ok(())
}

/// Runs `index compact`.
pub fn run_compact(args: &Args) -> Result<(), CliError> {
    let index_path = args.required("index")?;
    let json = args.flag("json");
    args.finish()?;

    let (mut store, report) = MutableStore::open(&index_path)
        .map_err(|e| CliError::store(format!("cannot open {index_path}"), e))?;
    let appends = store.index().pending_appends();
    let tombstones = store.index().tombstoned();
    store
        .compact()
        .map_err(|e| CliError::store(format!("cannot compact {index_path}"), e))?;
    let index = store.index();
    if json {
        let out = serde_json::json!({
            "index": index_path,
            "replayed": report.replayed,
            "skipped": report.skipped,
            "torn_tail_dropped": report.torn_tail_dropped,
            "appends_folded": appends,
            "tombstones_dropped": tombstones,
            "n": index.live_len(),
            "dim": index.dim(),
            "nlist": index.nlist(),
            "applied_seq": index.applied_seq(),
        });
        println!("{}", serde_json::to_string_pretty(&out).expect("json"));
    } else {
        println!(
            "{index_path}: compacted — replayed {} journal records{}{}, folded {appends} \
             appends, dropped {tombstones} tombstones; new generation has n = {}, {} lists, \
             journal truncated at sequence {}",
            report.replayed,
            if report.skipped > 0 {
                format!(" ({} already checkpointed)", report.skipped)
            } else {
                String::new()
            },
            if report.torn_tail_dropped {
                " (torn tail dropped)"
            } else {
                ""
            },
            index.live_len(),
            index.nlist(),
            index.applied_seq(),
        );
    }
    Ok(())
}
