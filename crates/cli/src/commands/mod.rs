//! CLI subcommands.

pub mod build_graph;
pub mod cluster;
pub mod gen_data;
pub mod index;
pub mod info;
pub mod query;
pub mod search;
pub mod serve;
pub mod stats;

use datagen::PaperDataset;

use crate::error::CliError;

/// Parses a dataset name as printed in Tab. 1 (case-insensitive).
pub fn parse_dataset(name: &str) -> Result<PaperDataset, String> {
    let lower = name.to_ascii_lowercase();
    PaperDataset::all()
        .into_iter()
        .find(|d| d.name().to_ascii_lowercase() == lower)
        .ok_or_else(|| {
            format!(
                "unknown dataset `{name}`; expected one of {}",
                PaperDataset::all().map(|d| d.name().to_string()).join(", ")
            )
        })
}

/// Writes cluster labels as a text file, one label per line.
pub fn write_labels(path: &str, labels: &[usize]) -> Result<(), CliError> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(
        std::fs::File::create(path)
            .map_err(|e| CliError::io(format!("cannot create {path}"), e))?,
    );
    for &l in labels {
        writeln!(out, "{l}").map_err(|e| CliError::io(format!("cannot write {path}"), e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_names_round_trip() {
        for d in PaperDataset::all() {
            assert_eq!(parse_dataset(d.name()).unwrap(), d);
            assert_eq!(parse_dataset(&d.name().to_lowercase()).unwrap(), d);
        }
        assert!(parse_dataset("nope").is_err());
    }

    #[test]
    fn labels_are_written_one_per_line() {
        let dir = std::env::temp_dir().join("gkm-cli-test-labels");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("labels.txt");
        write_labels(path.to_str().unwrap(), &[0, 3, 2]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "0\n3\n2\n");
    }
}
