//! `info` — inspect an `.fvecs` dataset or a saved KNN graph.

use knn_graph::io::read_graph;
use vecstore::distance::norm_sq;
use vecstore::io::read_fvecs;

use crate::args::Args;
use crate::error::CliError;

/// Usage text for `info`.
pub const USAGE: &str = "\
info [--base <base.fvecs>] [--graph <graph.bin>]
Prints shape and basic statistics of a dataset and/or a saved graph.";

/// Runs the subcommand.
pub fn run(args: &Args) -> Result<(), CliError> {
    let base = args.optional("base");
    let graph = args.optional("graph");
    args.finish()?;
    if base.is_none() && graph.is_none() {
        return Err(CliError::Usage("info needs --base and/or --graph".into()));
    }

    if let Some(path) = base {
        let data =
            read_fvecs(&path).map_err(|e| CliError::store(format!("cannot read {path}"), e))?;
        let n = data.len();
        let mut min_norm = f64::INFINITY;
        let mut max_norm: f64 = 0.0;
        let mut sum_norm = 0.0f64;
        for row in data.rows() {
            let norm = f64::from(norm_sq(row)).sqrt();
            min_norm = min_norm.min(norm);
            max_norm = max_norm.max(norm);
            sum_norm += norm;
        }
        println!("{path}: {} vectors × {} dims", n, data.dim());
        if n > 0 {
            println!(
                "  L2 norms: min {min_norm:.3}, mean {:.3}, max {max_norm:.3}",
                sum_norm / n as f64
            );
        }
    }

    if let Some(path) = graph {
        let g = read_graph(&path).map_err(|e| CliError::graph(format!("cannot read {path}"), e))?;
        println!(
            "{path}: KNN graph over {} samples, k = {}, mean degree {:.1}, {} stored edges",
            g.len(),
            g.k(),
            g.mean_degree(),
            g.stored_edges()
        );
    }
    Ok(())
}
