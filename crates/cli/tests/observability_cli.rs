//! End-to-end observability coverage driving the real `gkm-cli` binary:
//! `serve --metrics-addr` → `query --trace` → `stats` in all three formats →
//! an HTTP scrape of the metrics listener → graceful shutdown, plus the
//! exit-code taxonomy for the `stats` subcommand.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

fn gkm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gkm-cli"))
        .args(args)
        .output()
        .expect("failed to spawn gkm-cli")
}

fn ok_stdout(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Pulls the integer value of `"key": <digits>` out of (pretty) JSON text —
/// the workspace's offline `serde_json` stand-in has no parser, and these
/// tests only need a few scalar fields.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{key}` field in:\n{text}"))
        + needle.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not an integer in:\n{text}"))
}

/// One plain-HTTP GET against the metrics listener; returns the raw response.
fn http_get(addr: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics listener");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_trace_stats_scrape_shutdown_round_trip() {
    let dir = std::env::temp_dir().join(format!("gkm-obs-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.fvecs");
    let queries = dir.join("q.fvecs");
    let index = dir.join("x.ivf");
    let port_file = dir.join("port");
    let (base_s, queries_s) = (base.to_str().unwrap(), queries.to_str().unwrap());
    let (index_s, port_s) = (index.to_str().unwrap(), port_file.to_str().unwrap());

    ok_stdout(&gkm(&[
        "gen-data",
        "--out",
        base_s,
        "--dataset",
        "SIFT100K",
        "--n",
        "600",
        "--queries",
        "20",
        "--queries-out",
        queries_s,
        "--seed",
        "29",
    ]));
    ok_stdout(&gkm(&[
        "index",
        "build",
        "--base",
        base_s,
        "--k",
        "10",
        "--out",
        index_s,
        "--method",
        "lloyd",
        "--iterations",
        "5",
        "--seed",
        "9",
    ]));

    // Spawn the real server with both listeners on ephemeral ports.  The
    // GKSQ port is published through --port-file; the metrics port is
    // announced on stdout, so a reader thread forwards every line.
    let mut server = Command::new(env!("CARGO_BIN_EXE_gkm-cli"))
        .args([
            "serve",
            "--index",
            index_s,
            "--addr",
            "127.0.0.1:0",
            "--metrics-addr",
            "127.0.0.1:0",
            "--slow-ms",
            "0",
            "--port-file",
            port_s,
            "--max-delay-ms",
            "1",
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("failed to spawn serve");
    let (line_tx, line_rx) = mpsc::channel::<String>();
    let stdout = server.stdout.take().expect("serve stdout is piped");
    let reader = std::thread::spawn(move || {
        for line in BufReader::new(stdout).lines().map_while(Result::ok) {
            let _ = line_tx.send(line);
        }
    });

    let deadline = Instant::now() + Duration::from_secs(20);
    let metrics_addr = loop {
        let line = line_rx
            .recv_timeout(deadline.saturating_duration_since(Instant::now()))
            .expect("serve never announced its metrics listener");
        if let Some(rest) = line.strip_prefix("metrics on http://") {
            break rest
                .strip_suffix("/metrics")
                .expect("metrics line ends in /metrics")
                .to_string();
        }
    };
    let port = loop {
        if let Ok(text) = std::fs::read_to_string(&port_file) {
            if let Ok(p) = text.trim().parse::<u16>() {
                break p;
            }
        }
        assert!(Instant::now() < deadline, "serve never published its port");
        std::thread::sleep(Duration::from_millis(20));
    };
    let addr = format!("127.0.0.1:{port}");

    // Traced queries report per-stage timings that are consistent with the
    // total, and the stage breakdown reaches both output formats.
    let out = ok_stdout(&gkm(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        queries_s,
        "--r",
        "5",
        "--nprobe",
        "4",
        "--trace",
    ]));
    assert!(out.contains("trace "), "no trace line in:\n{out}");
    assert!(out.contains("queue "), "{out}");
    assert!(out.contains("scan "), "{out}");
    let out = ok_stdout(&gkm(&[
        "query",
        "--addr",
        &addr,
        "--queries",
        queries_s,
        "--r",
        "5",
        "--nprobe",
        "4",
        "--trace",
        "--json",
    ]));
    assert!(out.contains("\"trace_id\""), "{out}");
    let total = json_u64(&out, "total_nanos");
    let stages = json_u64(&out, "queue_wait_nanos")
        + json_u64(&out, "route_nanos")
        + json_u64(&out, "scan_nanos")
        + json_u64(&out, "rerank_nanos");
    assert!(total > 0, "{out}");
    assert!(
        stages <= total,
        "stage sum {stages} > total {total}:\n{out}"
    );

    // `stats` agrees across its three formats: 40 queries served as 2
    // requests so far, visible everywhere as the served-request counter and
    // the batch-size histogram sum.
    let human = ok_stdout(&gkm(&["stats", "--addr", &addr]));
    assert!(human.contains("batcher_served_total"), "{human}");
    let prom = ok_stdout(&gkm(&["stats", "--addr", &addr, "--prometheus"]));
    assert!(prom.contains("batcher_served_total 2"), "{prom}");
    assert!(prom.contains("batcher_batch_size_sum 40"), "{prom}");
    assert!(prom.contains("server_frames_total"), "{prom}");
    let json = ok_stdout(&gkm(&["stats", "--addr", &addr, "--json"]));
    assert_eq!(json_u64(&json, "batcher_served_total"), 2, "{json}");
    // --slow-ms 0 retains every query, so the ring carries the trace shape.
    assert!(json.contains("slow_queries"), "{json}");
    assert!(json.contains("\"nprobe\": 4"), "{json}");

    // The HTTP listener serves the same registry as the Stats frame.
    let scrape = http_get(&metrics_addr, "/metrics");
    assert!(scrape.starts_with("HTTP/1.1 200"), "{scrape}");
    assert!(scrape.contains("batcher_served_total 2"), "{scrape}");
    let missing = http_get(&metrics_addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // Exit-code taxonomy for `stats`: missing --addr and contradictory
    // format flags are usage errors (2).
    let out = gkm(&["stats"]);
    assert_eq!(out.status.code(), Some(2));
    let out = gkm(&["stats", "--addr", &addr, "--json", "--prometheus"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Graceful shutdown: the drain summary counters match what `stats` saw.
    ok_stdout(&gkm(&["query", "--addr", &addr, "--shutdown"]));
    let status = server.wait().expect("serve did not exit");
    assert!(status.success(), "serve exited with {status:?}");
    reader.join().expect("stdout reader panicked");

    // Against the stopped server `stats` fails as i/o (exit 3).
    let out = gkm(&["stats", "--addr", &addr, "--timeout-ms", "500"]);
    assert_eq!(out.status.code(), Some(3), "{out:?}");

    std::fs::remove_dir_all(&dir).ok();
}
