//! End-to-end CLI coverage for the SQ8 serving tier, driving the real
//! `gkm-cli` binary:
//!
//! * `index build --sq8` persists the quantized tier and `index search --sq8`
//!   serves from it (and refuses an unquantized index with a usage error);
//! * **regression** — `index verify --spot-check` replays rows living in
//!   journal append regions, not just the contiguous checkpoint panel, and
//!   with `--sq8` asserts de-quantized self-hits within the quantization
//!   error bound instead of exactly 0.

use std::path::Path;
use std::process::Command;

use ivf::{IvfIndex, MutableStore};
use vecstore::VectorSet;

fn gkm(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_gkm-cli"))
        .args(args)
        .output()
        .expect("failed to spawn gkm-cli")
}

fn ok_stdout(out: &std::process::Output) -> String {
    assert!(
        out.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&out.stderr),
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Pulls the integer value of `"key": <digits>` out of (pretty) JSON text —
/// the workspace's offline `serde_json` stand-in has no parser, and these
/// tests only need a few scalar fields.
fn json_u64(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\": ");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("no `{key}` field in:\n{text}"))
        + needle.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .unwrap_or_else(|_| panic!("`{key}` is not an integer in:\n{text}"))
}

/// A small quantized store with live journal appends (and one tombstone):
/// 30 checkpointed rows plus 4 appended ones, one of them far outside every
/// fitted range so its codes clamp.
fn seed_store_with_appends(index_path: &Path) -> u64 {
    let rows: Vec<Vec<f32>> = (0..30)
        .map(|i| {
            let g = (i % 3) as f32 * 10.0;
            vec![g + i as f32 * 0.25, g - 0.5 * i as f32, (i % 5) as f32, 1.0]
        })
        .collect();
    let data = VectorSet::from_rows(rows).unwrap();
    let centroids = VectorSet::from_rows(vec![vec![0.0; 4], vec![10.0; 4], vec![20.0; 4]]).unwrap();
    let labels: Vec<usize> = (0..30).map(|i| i % 3).collect();
    let mut index = IvfIndex::build(&data, &centroids, &labels).unwrap();
    index.quantize();

    let mut store = MutableStore::create(index_path, index).unwrap();
    let mut appended = Vec::new();
    for j in 0..4u32 {
        let row = if j == 3 {
            vec![1.0e4; 4] // clamps under the frozen per-list parameters
        } else {
            vec![j as f32, 1.0 - j as f32, 2.0, 1.0]
        };
        appended.push(store.insert(&row).unwrap());
    }
    store.delete(appended[0]).unwrap();
    // Drop without compacting: the appends live only in the journal, so
    // `index verify` must replay them to see these rows at all.
    33 // live rows: 30 checkpointed + 4 appended − 1 tombstoned
}

#[test]
fn verify_spot_check_covers_append_regions_and_sq8_bounds() {
    let dir = std::env::temp_dir().join(format!("gkm-sq8-verify-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let index_path = dir.join("x.ivf");
    let index_str = index_path.to_str().unwrap();
    let live = seed_store_with_appends(&index_path);

    // Exact-mode spot-check: every *live* row — checkpointed or appended —
    // must self-hit at distance 0.  Before the append-region fix the count
    // could never exceed the checkpoint's 30 panel rows.
    let out = ok_stdout(&gkm(&[
        "index",
        "verify",
        "--index",
        index_str,
        "--spot-check",
        "1000",
        "--json",
    ]));
    assert!(out.contains("\"status\": \"ok\""), "{out}");
    assert_eq!(
        json_u64(&out, "spot_checked"),
        live,
        "spot-check must cover journal append regions too:\n{out}"
    );
    assert!(json_u64(&out, "records") >= 5, "{out}");

    // SQ8-mode spot-check: de-quantized self-hits within the error bound
    // (the clamped outlier is checked component-wise), plus tier stats.
    let out = ok_stdout(&gkm(&[
        "index",
        "verify",
        "--index",
        index_str,
        "--spot-check",
        "1000",
        "--sq8",
        "--json",
    ]));
    assert!(out.contains("\"status\": \"ok\""), "{out}");
    assert_eq!(json_u64(&out, "spot_checked"), live, "{out}");
    assert!(json_u64(&out, "code_bytes") > 0, "{out}");
    assert!(out.contains("max_self_hit_bound"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_search_serve_sq8_flags_round_trip() {
    let dir = std::env::temp_dir().join(format!("gkm-sq8-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.fvecs");
    let queries = dir.join("q.fvecs");
    let plain = dir.join("plain.ivf");
    let quant = dir.join("quant.ivf");
    let (base_s, queries_s) = (base.to_str().unwrap(), queries.to_str().unwrap());
    let (plain_s, quant_s) = (plain.to_str().unwrap(), quant.to_str().unwrap());

    let out = gkm(&[
        "gen-data",
        "--out",
        base_s,
        "--dataset",
        "SIFT100K",
        "--n",
        "500",
        "--queries",
        "20",
        "--queries-out",
        queries_s,
        "--seed",
        "23",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let build = |out_path: &str, sq8: bool| {
        let mut args = vec![
            "index",
            "build",
            "--base",
            base_s,
            "--k",
            "8",
            "--out",
            out_path,
            "--method",
            "lloyd",
            "--iterations",
            "5",
            "--seed",
            "3",
            "--json",
        ];
        if sq8 {
            args.push("--sq8");
        }
        ok_stdout(&gkm(&args))
    };
    assert!(build(plain_s, false).contains("\"sq8\": null"));
    let built = build(quant_s, true);
    let code_bytes = json_u64(&built, "code_bytes");
    let panel_bytes = json_u64(&built, "panel_bytes");
    assert_eq!(code_bytes * 4, panel_bytes, "u8 codes are 1/4 of f32 rows");

    // Quantized search serves and reports its overfetch; the same flag on an
    // unquantized index is a usage error (exit 2), not corruption.
    let out = ok_stdout(&gkm(&[
        "index",
        "search",
        "--index",
        quant_s,
        "--queries",
        queries_s,
        "--r",
        "5",
        "--nprobe",
        "4",
        "--sq8",
        "--overfetch",
        "6",
        "--json",
    ]));
    assert!(out.contains("\"sq8\": true"), "{out}");
    assert_eq!(json_u64(&out, "overfetch"), 6, "{out}");
    assert!(out.contains("\"recall\""), "{out}");
    let out = gkm(&[
        "index",
        "search",
        "--index",
        plain_s,
        "--queries",
        queries_s,
        "--r",
        "5",
        "--sq8",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("no SQ8 tier"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `serve --sq8` applies the same gate before binding anything.
    let out = gkm(&["serve", "--index", plain_s, "--sq8"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("no SQ8 tier"));

    std::fs::remove_dir_all(&dir).ok();
}
