//! Catalogue of the paper's datasets (Tab. 1) and their synthetic stand-ins.
//!
//! Each [`PaperDataset`] records the scale and dimensionality the paper used
//! and knows how to synthesize a scaled-down surrogate through
//! [`Workload::generate`].  The experiment binaries default to a `scale`
//! fraction that completes in minutes; passing `--full` requests the paper's
//! original sample counts.

use serde::{Deserialize, Serialize};

use vecstore::VectorSet;

use crate::descriptor::DescriptorFamily;
use crate::gmm::GmmDataset;
use crate::spec::DatasetSpec;

/// The descriptor collections evaluated in the paper (Tab. 1, plus SIFT100K
/// used for Fig. 1 / Fig. 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaperDataset {
    /// SIFT100K: 100 000 × 128 SIFT descriptors (Fig. 1, Fig. 2).
    Sift100K,
    /// SIFT1M: 1 000 000 × 128 SIFT descriptors.
    Sift1M,
    /// GIST1M: 1 000 000 × 960 GIST descriptors.
    Gist1M,
    /// Glove1M: ~1 000 000 × 100 GloVe word vectors.
    Glove1M,
    /// VLAD10M: 10 000 000 × 512 VLAD descriptors from YFCC (Fig. 6, 7, Tab. 2).
    Vlad10M,
}

impl PaperDataset {
    /// Sample count used in the paper.
    pub fn paper_n(&self) -> usize {
        match self {
            PaperDataset::Sift100K => 100_000,
            PaperDataset::Sift1M | PaperDataset::Gist1M | PaperDataset::Glove1M => 1_000_000,
            PaperDataset::Vlad10M => 10_000_000,
        }
    }

    /// Dimensionality (Tab. 1).
    pub fn dim(&self) -> usize {
        match self {
            PaperDataset::Sift100K | PaperDataset::Sift1M => 128,
            PaperDataset::Gist1M => 960,
            PaperDataset::Glove1M => 100,
            PaperDataset::Vlad10M => 512,
        }
    }

    /// Descriptor family of the synthetic surrogate.
    pub fn family(&self) -> DescriptorFamily {
        match self {
            PaperDataset::Sift100K | PaperDataset::Sift1M => DescriptorFamily::SiftLike,
            PaperDataset::Gist1M => DescriptorFamily::GistLike,
            PaperDataset::Glove1M => DescriptorFamily::GloveLike,
            PaperDataset::Vlad10M => DescriptorFamily::VladLike,
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Sift100K => "SIFT100K",
            PaperDataset::Sift1M => "SIFT1M",
            PaperDataset::Gist1M => "GIST1M",
            PaperDataset::Glove1M => "Glove1M",
            PaperDataset::Vlad10M => "VLAD10M",
        }
    }

    /// All datasets, in the order of Tab. 1 (with SIFT100K first).
    pub fn all() -> [PaperDataset; 5] {
        [
            PaperDataset::Sift100K,
            PaperDataset::Sift1M,
            PaperDataset::Gist1M,
            PaperDataset::Glove1M,
            PaperDataset::Vlad10M,
        ]
    }
}

/// A concrete, generated workload: a dataset plus the provenance needed to
/// reproduce it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which paper dataset this stands in for.
    pub source: PaperDataset,
    /// The specification actually generated (scaled `n`, matching `dim`).
    pub spec: DatasetSpec,
    /// Seed used for generation.
    pub seed: u64,
    /// The generated samples.
    pub data: VectorSet,
    /// Latent ground-truth component labels of the surrogate (not available
    /// for real descriptor data; used only for sanity checks, never by the
    /// algorithms under study).
    pub latent_labels: Vec<usize>,
}

impl Workload {
    /// Generates the surrogate for `dataset` at a fraction `scale ∈ (0, 1]` of
    /// the paper's sample count (clamped below at 1 000 samples so tiny scales
    /// still exercise the algorithms meaningfully).
    ///
    /// The number of latent mixture components is chosen as `n / 200`
    /// (bounded to `[16, 4096]`), mirroring the paper's observation that
    /// natural clusters of descriptor data hold a few hundred samples each.
    pub fn generate(dataset: PaperDataset, scale: f64, seed: u64) -> Self {
        let scale = if scale.is_finite() && scale > 0.0 {
            scale.min(1.0)
        } else {
            1.0
        };
        let n = ((dataset.paper_n() as f64 * scale).round() as usize).max(1_000);
        Self::generate_with_n(dataset, n, seed)
    }

    /// Generates the surrogate with an explicit sample count.
    pub fn generate_with_n(dataset: PaperDataset, n: usize, seed: u64) -> Self {
        let components = (n / 200).clamp(16, 4096);
        let spec = DatasetSpec::new(n, dataset.dim(), components)
            .with_family(dataset.family())
            .with_noise_ratio(0.35)
            .with_size_skew(0.8);
        let gmm = GmmDataset::generate(&spec, seed);
        Self {
            source: dataset,
            spec,
            seed,
            data: gmm.data,
            latent_labels: gmm.labels,
        }
    }

    /// Number of samples in the generated workload.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the workload holds no samples (never the case for
    /// generated workloads; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_metadata_matches_paper() {
        assert_eq!(PaperDataset::Sift1M.paper_n(), 1_000_000);
        assert_eq!(PaperDataset::Sift1M.dim(), 128);
        assert_eq!(PaperDataset::Vlad10M.paper_n(), 10_000_000);
        assert_eq!(PaperDataset::Vlad10M.dim(), 512);
        assert_eq!(PaperDataset::Glove1M.dim(), 100);
        assert_eq!(PaperDataset::Gist1M.dim(), 960);
        assert_eq!(PaperDataset::all().len(), 5);
    }

    #[test]
    fn names_are_stable() {
        for d in PaperDataset::all() {
            assert!(!d.name().is_empty());
        }
        assert_eq!(PaperDataset::Sift100K.name(), "SIFT100K");
    }

    #[test]
    fn generate_scales_sample_count() {
        let w = Workload::generate(PaperDataset::Sift100K, 0.05, 1);
        assert_eq!(w.len(), 5_000);
        assert_eq!(w.data.dim(), 128);
        assert_eq!(w.source, PaperDataset::Sift100K);
        assert_eq!(w.latent_labels.len(), 5_000);
        assert!(!w.is_empty());
    }

    #[test]
    fn tiny_scale_is_clamped_to_minimum() {
        let w = Workload::generate(PaperDataset::Sift1M, 1e-9, 1);
        assert_eq!(w.len(), 1_000);
    }

    #[test]
    fn nonsense_scale_falls_back_to_full() {
        // NaN / zero / negative scales fall back to 1.0; use explicit n to keep
        // the test fast and only check the decision logic.
        let w = Workload::generate_with_n(PaperDataset::Glove1M, 2_000, 3);
        assert_eq!(w.len(), 2_000);
        assert_eq!(w.data.dim(), 100);
    }

    #[test]
    fn component_count_is_bounded() {
        let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_000, 9);
        assert_eq!(w.spec.components, 16); // 1000/200 = 5 → clamped to 16
        let w = Workload::generate_with_n(PaperDataset::Sift100K, 10_000, 9);
        assert_eq!(w.spec.components, 50);
    }

    #[test]
    fn families_are_applied_to_generated_data() {
        let w = Workload::generate_with_n(PaperDataset::Vlad10M, 1_000, 2);
        for row in w.data.rows().take(10) {
            let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "VLAD-like rows are unit norm");
        }
    }
}
