//! Descriptor families: post-processing that makes the raw Gaussian mixture
//! samples resemble a given real descriptor type.
//!
//! | Family      | Paper dataset | dim  | value range                       |
//! |-------------|---------------|------|-----------------------------------|
//! | `SiftLike`  | SIFT1M/100K   | 128  | non-negative, quantised to 0..=255 (heavy-tailed) |
//! | `GistLike`  | GIST1M        | 960  | non-negative, small floats in 0..~1 |
//! | `GloveLike` | Glove1M       | 100  | signed dense floats               |
//! | `VladLike`  | VLAD10M       | 512  | signed, ℓ²-normalised rows         |
//! | `Generic`   | —             | any  | raw mixture samples                |

use serde::{Deserialize, Serialize};

/// Selects how raw mixture samples are post-processed into a descriptor type.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DescriptorFamily {
    /// Raw mixture samples; useful for unit tests and micro-benchmarks.
    #[default]
    Generic,
    /// SIFT-like local features: 128-d, non-negative, quantised to `0..=255`.
    SiftLike,
    /// GIST-like global features: 960-d, non-negative, bounded to `[0, 1]`.
    GistLike,
    /// GloVe-like word embeddings: 100-d, signed floats (left untouched).
    GloveLike,
    /// VLAD-like aggregated descriptors: 512-d, signed, ℓ²-normalised.
    VladLike,
}

impl DescriptorFamily {
    /// Conventional dimensionality of the family in the paper (Tab. 1);
    /// `None` for [`DescriptorFamily::Generic`].
    pub fn conventional_dim(&self) -> Option<usize> {
        match self {
            DescriptorFamily::Generic => None,
            DescriptorFamily::SiftLike => Some(128),
            DescriptorFamily::GistLike => Some(960),
            DescriptorFamily::GloveLike => Some(100),
            DescriptorFamily::VladLike => Some(512),
        }
    }

    /// Applies the family's post-processing to one raw sample in place.
    ///
    /// The transformations are monotone (scaling, clamping, quantisation,
    /// normalisation), so nearest-neighbour structure from the latent mixture
    /// is preserved — which is all the clustering algorithms rely on.
    pub fn post_process(&self, row: &mut [f32]) {
        match self {
            DescriptorFamily::Generic => {}
            DescriptorFamily::SiftLike => {
                // Shift to non-negative, scale into the 0..=255 gradient-histogram
                // range, quantise like real SIFT exports do.
                for v in row.iter_mut() {
                    let shifted = (*v * 40.0 + 60.0).clamp(0.0, 255.0);
                    *v = shifted.round();
                }
            }
            DescriptorFamily::GistLike => {
                for v in row.iter_mut() {
                    *v = (*v * 0.12 + 0.25).clamp(0.0, 1.0);
                }
            }
            DescriptorFamily::GloveLike => {
                // GloVe embeddings are roughly zero-centred with components in
                // about [-3, 3]; a gentle squashing keeps outliers bounded.
                for v in row.iter_mut() {
                    *v = 3.0 * (*v / 3.0).tanh();
                }
            }
            DescriptorFamily::VladLike => {
                let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
                if norm > 0.0 {
                    for v in row.iter_mut() {
                        *v /= norm;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw() -> Vec<f32> {
        vec![-2.0, -0.5, 0.0, 0.5, 1.5, 3.0, -4.0, 2.5]
    }

    #[test]
    fn conventional_dims_match_table1() {
        assert_eq!(DescriptorFamily::SiftLike.conventional_dim(), Some(128));
        assert_eq!(DescriptorFamily::GistLike.conventional_dim(), Some(960));
        assert_eq!(DescriptorFamily::GloveLike.conventional_dim(), Some(100));
        assert_eq!(DescriptorFamily::VladLike.conventional_dim(), Some(512));
        assert_eq!(DescriptorFamily::Generic.conventional_dim(), None);
    }

    #[test]
    fn generic_is_identity() {
        let mut row = raw();
        DescriptorFamily::Generic.post_process(&mut row);
        assert_eq!(row, raw());
    }

    #[test]
    fn sift_like_is_quantised_and_bounded() {
        let mut row = raw();
        DescriptorFamily::SiftLike.post_process(&mut row);
        for &v in &row {
            assert!((0.0..=255.0).contains(&v));
            assert_eq!(v, v.round(), "SIFT-like components are integers");
        }
    }

    #[test]
    fn gist_like_is_bounded_unit_interval() {
        let mut row = raw();
        DescriptorFamily::GistLike.post_process(&mut row);
        assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn glove_like_is_bounded_but_signed() {
        let mut row = raw();
        DescriptorFamily::GloveLike.post_process(&mut row);
        assert!(row.iter().all(|&v| v.abs() <= 3.0));
        assert!(row.iter().any(|&v| v < 0.0), "sign must be preserved");
    }

    #[test]
    fn vlad_like_is_unit_norm() {
        let mut row = raw();
        DescriptorFamily::VladLike.post_process(&mut row);
        let norm: f32 = row.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
        // zero vector stays zero rather than becoming NaN
        let mut zero = vec![0.0f32; 4];
        DescriptorFamily::VladLike.post_process(&mut zero);
        assert!(zero.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn monotone_families_preserve_ordering_along_a_component() {
        // For the clamp-free interior of the range, larger raw values stay larger.
        for family in [DescriptorFamily::SiftLike, DescriptorFamily::GistLike] {
            let mut a = vec![0.1f32];
            let mut b = vec![0.2f32];
            family.post_process(&mut a);
            family.post_process(&mut b);
            assert!(b[0] >= a[0]);
        }
    }
}
