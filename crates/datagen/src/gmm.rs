//! Clustered synthetic data: mixture of anisotropic Gaussians with a
//! heavy-tailed component-size distribution.
//!
//! Real descriptor collections are strongly clustered — that is precisely the
//! property GK-means exploits ("with high probability one sample and its
//! nearest neighbors reside in the same cluster", Sec. 1).  The mixture
//! generator reproduces that structure with controllable tightness
//! ([`crate::DatasetSpec::noise_ratio`]) and size skew
//! ([`crate::DatasetSpec::size_skew`]).

use rand::Rng;
use rand_distr::{Distribution, Normal};

use vecstore::sample::rng_from_seed;
use vecstore::VectorSet;

use crate::spec::DatasetSpec;

/// Low-level mixture configuration (used directly by tests; most callers go
/// through [`GmmDataset::generate`] with a [`DatasetSpec`]).
#[derive(Clone, Debug)]
pub struct GmmConfig {
    /// Number of mixture components.
    pub components: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Standard deviation of component centres around the origin.
    pub centre_spread: f32,
    /// Within-component standard deviation (isotropic part).
    pub noise_sigma: f32,
    /// Per-dimension anisotropy: each component scales the noise of every
    /// dimension by a factor drawn uniformly from `[1 - a, 1 + a]`.
    pub anisotropy: f32,
    /// Zipf-like exponent for component sizes (0 = equal sizes).
    pub size_skew: f64,
}

impl GmmConfig {
    /// Derives a mixture configuration from a [`DatasetSpec`].
    pub fn from_spec(spec: &DatasetSpec) -> Self {
        Self {
            components: spec.components,
            dim: spec.dim,
            centre_spread: 1.0,
            noise_sigma: spec.noise_ratio,
            anisotropy: 0.5,
            size_skew: spec.size_skew,
        }
    }
}

/// A generated clustered dataset together with its latent ground truth.
#[derive(Clone, Debug)]
pub struct GmmDataset {
    /// The generated samples (already post-processed by the descriptor family
    /// when generated through [`GmmDataset::generate`]).
    pub data: VectorSet,
    /// Latent component index of every sample — the "true" cluster labels.
    pub labels: Vec<usize>,
    /// Component centres in the raw (pre-post-processing) space.
    pub centres: VectorSet,
}

impl GmmDataset {
    /// Generates a dataset according to `spec`, deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when the spec fails [`DatasetSpec::validate`]; the experiment
    /// harness validates specs at configuration time, so reaching this panic
    /// indicates a programming error rather than a user error.
    pub fn generate(spec: &DatasetSpec, seed: u64) -> Self {
        if let Err(msg) = spec.validate() {
            panic!("invalid dataset spec: {msg}");
        }
        let cfg = GmmConfig::from_spec(spec);
        let mut rng = rng_from_seed(seed);

        // Component centres.
        let centre_dist = Normal::new(0.0f32, cfg.centre_spread).expect("valid normal");
        let mut centres = Vec::with_capacity(cfg.components * cfg.dim);
        for _ in 0..cfg.components * cfg.dim {
            centres.push(centre_dist.sample(&mut rng));
        }
        let centres = VectorSet::from_flat(centres, cfg.dim).expect("centre matrix");

        // Per-component anisotropic noise scales.
        let mut scales = Vec::with_capacity(cfg.components);
        for _ in 0..cfg.components {
            let per_dim: Vec<f32> = (0..cfg.dim)
                .map(|_| {
                    let a = cfg.anisotropy.clamp(0.0, 0.95);
                    cfg.noise_sigma * rng.gen_range(1.0 - a..=1.0 + a)
                })
                .collect();
            scales.push(per_dim);
        }

        // Heavy-tailed component sizes: weight_i ∝ 1 / (i+1)^skew.
        let sizes = component_sizes(spec.n, cfg.components, cfg.size_skew);

        let unit = Normal::new(0.0f32, 1.0).expect("valid normal");
        let mut data = Vec::with_capacity(spec.n * cfg.dim);
        let mut labels = Vec::with_capacity(spec.n);
        for (comp, &size) in sizes.iter().enumerate() {
            let centre = centres.row(comp);
            let scale = &scales[comp];
            for _ in 0..size {
                labels.push(comp);
                for d in 0..cfg.dim {
                    let noise: f32 = unit.sample(&mut rng);
                    data.push(centre[d] + noise * scale[d]);
                }
            }
        }

        let mut data = VectorSet::from_flat(data, cfg.dim).expect("data matrix");
        for i in 0..data.len() {
            spec.family.post_process(data.row_mut(i));
        }

        // Shuffle so that latent components are not contiguous in row order —
        // contiguity would make the 2M-tree initialisation artificially easy.
        let order = vecstore::sample::shuffled_order(&mut rng, data.len());
        let data = data.gather(&order).expect("gather shuffle");
        let labels: Vec<usize> = order.iter().map(|&i| labels[i]).collect();

        Self {
            data,
            labels,
            centres,
        }
    }
}

/// Splits `n` samples over `k` components with Zipf-like weights
/// `w_i ∝ 1/(i+1)^skew`, guaranteeing every component gets at least one sample.
fn component_sizes(n: usize, k: usize, skew: f64) -> Vec<usize> {
    debug_assert!(k >= 1 && n >= k);
    let weights: Vec<f64> = (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total: f64 = weights.iter().sum();
    // Start with one sample per component, distribute the remainder by weight.
    let mut sizes = vec![1usize; k];
    let mut remaining = n - k;
    let mut fractional: Vec<(usize, f64)> = Vec::with_capacity(k);
    for (i, w) in weights.iter().enumerate() {
        let share = (remaining as f64) * w / total;
        let whole = share.floor() as usize;
        sizes[i] += whole;
        fractional.push((i, share - share.floor()));
    }
    let assigned: usize = sizes.iter().sum();
    remaining = n - assigned;
    // Hand out leftovers to the largest fractional parts.
    fractional.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    for (i, _) in fractional.into_iter().take(remaining) {
        sizes[i] += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), n);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::DescriptorFamily;
    use vecstore::distance::l2_sq;

    #[test]
    fn component_sizes_sum_and_cover() {
        for &(n, k, s) in &[
            (100usize, 7usize, 0.0f64),
            (100, 7, 0.8),
            (50, 50, 1.2),
            (1000, 3, 2.0),
        ] {
            let sizes = component_sizes(n, k, s);
            assert_eq!(sizes.len(), k);
            assert_eq!(sizes.iter().sum::<usize>(), n);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn skew_zero_is_roughly_uniform() {
        let sizes = component_sizes(1000, 10, 0.0);
        assert!(sizes.iter().all(|&s| (95..=105).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn positive_skew_orders_sizes() {
        let sizes = component_sizes(10_000, 20, 1.0);
        assert!(sizes[0] > sizes[19]);
    }

    #[test]
    fn generate_has_requested_shape_and_labels() {
        let spec = DatasetSpec::new(500, 16, 8);
        let ds = GmmDataset::generate(&spec, 42);
        assert_eq!(ds.data.len(), 500);
        assert_eq!(ds.data.dim(), 16);
        assert_eq!(ds.labels.len(), 500);
        assert_eq!(ds.centres.len(), 8);
        assert!(ds.labels.iter().all(|&l| l < 8));
        // all components represented
        let mut seen = [false; 8];
        for &l in &ds.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec::new(200, 8, 4);
        let a = GmmDataset::generate(&spec, 7);
        let b = GmmDataset::generate(&spec, 7);
        let c = GmmDataset::generate(&spec, 8);
        assert_eq!(a.data, b.data);
        assert_eq!(a.labels, b.labels);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn clusters_are_tighter_than_the_global_spread() {
        // The whole point of the generator: samples of one component should be
        // closer to their own centre than to the average other centre.
        let spec = DatasetSpec::new(400, 12, 5).with_noise_ratio(0.2);
        let ds = GmmDataset::generate(&spec, 3);
        let mut own = 0.0f64;
        let mut other = 0.0f64;
        let mut count = 0usize;
        for (i, &label) in ds.labels.iter().enumerate() {
            let x = ds.data.row(i);
            own += f64::from(l2_sq(x, ds.centres.row(label)));
            let o = (label + 1) % ds.centres.len();
            other += f64::from(l2_sq(x, ds.centres.row(o)));
            count += 1;
        }
        assert!(own / count as f64 * 2.0 < other / count as f64);
    }

    #[test]
    fn family_post_processing_is_applied() {
        let spec = DatasetSpec::new(100, 32, 4).with_family(DescriptorFamily::SiftLike);
        let ds = GmmDataset::generate(&spec, 5);
        for row in ds.data.rows() {
            assert!(row
                .iter()
                .all(|&v| (0.0..=255.0).contains(&v) && v == v.round()));
        }
    }

    #[test]
    #[should_panic(expected = "invalid dataset spec")]
    fn invalid_spec_panics() {
        let spec = DatasetSpec::new(0, 8, 2);
        let _ = GmmDataset::generate(&spec, 1);
    }
}
