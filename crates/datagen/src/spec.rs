//! Dataset specification shared by every generator.

use serde::{Deserialize, Serialize};

use crate::descriptor::DescriptorFamily;

/// Full specification of a synthetic dataset.
///
/// A `DatasetSpec` plus a seed deterministically defines a dataset, which lets
/// the experiment harness cache, regenerate and cross-reference workloads by
/// value.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Number of samples to generate.
    pub n: usize,
    /// Dimensionality of every sample.
    pub dim: usize,
    /// Number of latent mixture components ("true" clusters) in the data.
    ///
    /// The paper's descriptor collections are naturally clustered (local
    /// features of similar patches, embeddings of related words); the
    /// component count controls how strongly that structure is expressed.
    pub components: usize,
    /// Descriptor family controlling the value range / post-processing.
    pub family: DescriptorFamily,
    /// Ratio between within-component standard deviation and the spread of
    /// the component centres.  Smaller values produce tighter, more separable
    /// clusters; `0.35` roughly matches the co-occurrence probabilities
    /// observed on SIFT100K in Fig. 1.
    pub noise_ratio: f32,
    /// Skew of the component-size distribution (Zipf-like exponent).  `0.0`
    /// gives equal-size components; real descriptor collections are closer to
    /// `0.8`.
    pub size_skew: f64,
}

impl DatasetSpec {
    /// Creates a spec with the workspace defaults for clustered data.
    pub fn new(n: usize, dim: usize, components: usize) -> Self {
        Self {
            n,
            dim,
            components,
            family: DescriptorFamily::Generic,
            noise_ratio: 0.35,
            size_skew: 0.8,
        }
    }

    /// Sets the descriptor family.
    #[must_use]
    pub fn with_family(mut self, family: DescriptorFamily) -> Self {
        self.family = family;
        self
    }

    /// Sets the noise ratio.
    #[must_use]
    pub fn with_noise_ratio(mut self, noise_ratio: f32) -> Self {
        self.noise_ratio = noise_ratio;
        self
    }

    /// Sets the component-size skew.
    #[must_use]
    pub fn with_size_skew(mut self, size_skew: f64) -> Self {
        self.size_skew = size_skew;
        self
    }

    /// Validates the specification, returning a human-readable reason when it
    /// cannot be generated.
    pub fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("n must be positive".into());
        }
        if self.dim == 0 {
            return Err("dim must be positive".into());
        }
        if self.components == 0 {
            return Err("components must be positive".into());
        }
        if self.components > self.n {
            return Err(format!(
                "components ({}) cannot exceed n ({})",
                self.components, self.n
            ));
        }
        if !(self.noise_ratio.is_finite() && self.noise_ratio > 0.0) {
            return Err("noise_ratio must be finite and positive".into());
        }
        if !(self.size_skew.is_finite() && self.size_skew >= 0.0) {
            return Err("size_skew must be finite and non-negative".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let spec = DatasetSpec::new(1000, 128, 64)
            .with_family(DescriptorFamily::SiftLike)
            .with_noise_ratio(0.2)
            .with_size_skew(0.5);
        assert_eq!(spec.n, 1000);
        assert_eq!(spec.dim, 128);
        assert_eq!(spec.components, 64);
        assert_eq!(spec.family, DescriptorFamily::SiftLike);
        assert_eq!(spec.noise_ratio, 0.2);
        assert_eq!(spec.size_skew, 0.5);
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn validation_catches_degenerate_specs() {
        assert!(DatasetSpec::new(0, 8, 2).validate().is_err());
        assert!(DatasetSpec::new(10, 0, 2).validate().is_err());
        assert!(DatasetSpec::new(10, 8, 0).validate().is_err());
        assert!(DatasetSpec::new(10, 8, 11).validate().is_err());
        assert!(DatasetSpec::new(10, 8, 2)
            .with_noise_ratio(-1.0)
            .validate()
            .is_err());
        assert!(DatasetSpec::new(10, 8, 2)
            .with_noise_ratio(f32::NAN)
            .validate()
            .is_err());
        assert!(DatasetSpec::new(10, 8, 2)
            .with_size_skew(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn debug_names_the_family() {
        let spec = DatasetSpec::new(100, 16, 4).with_family(DescriptorFamily::GloveLike);
        assert!(format!("{spec:?}").contains("GloveLike"));
    }
}
