//! Synthetic workload generators for the GK-means reproduction.
//!
//! The paper evaluates on four descriptor collections (Tab. 1): SIFT1M
//! (1M × 128), VLAD10M (10M × 512), Glove1M (1M × 100) and GIST1M (1M × 960),
//! plus SIFT100K for the motivating statistics (Fig. 1, Fig. 2).  Those
//! datasets are multi-gigabyte downloads that are unavailable in this
//! environment, so this crate produces synthetic stand-ins that preserve the
//! properties the algorithms actually exploit:
//!
//! * **metric locality** — the data is drawn from a mixture of anisotropic
//!   Gaussians with a heavy-tailed distribution of component sizes, so "one
//!   sample and its nearest neighbours reside in the same cluster" (the
//!   observation behind Fig. 1) holds just like it does for real descriptors;
//! * **dimensionality and value range** — each family matches its real
//!   counterpart (128-d non-negative quantised values for SIFT-like, 960-d
//!   small non-negative values for GIST-like, 100-d signed values for
//!   GloVe-like, 512-d signed ℓ²-normalised values for VLAD-like), so distance
//!   kernel cost and distortion magnitudes are comparable;
//! * **reproducibility** — every generator is a pure function of a
//!   [`DatasetSpec`] and a `u64` seed.
//!
//! See DESIGN.md §2 ("Substitutions") for the full justification.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod descriptor;
pub mod gmm;
pub mod spec;
pub mod workload;

pub use descriptor::DescriptorFamily;
pub use gmm::{GmmConfig, GmmDataset};
pub use spec::DatasetSpec;
pub use workload::{PaperDataset, Workload};
