//! Property suite for the SIMD kernel subsystem.
//!
//! Every kernel table available on the build machine (scalar always; AVX2+FMA
//! or NEON when the CPU supports it) must agree with the naive reference
//! within 1e-3 relative tolerance:
//!
//! * across **every length 0..=257**, covering all remainder lane counts of
//!   the 32-, 16-, 8- and 4-wide main loops;
//! * on **unaligned slices** (the kernels use unaligned loads; sub-slicing at
//!   odd offsets must not change results beyond reassociation error);
//! * between the **batched one-to-many paths and the pairwise kernels**;
//! * and the **dispatch must be deterministic** within a process.

use vecstore::distance::l2_sq_reference;
use vecstore::kernels::{self, Kernels};

/// Deterministic pseudo-random test vector; `phase` decorrelates the streams.
fn test_vector(len: usize, phase: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32 + phase) * 0.718).sin() * 7.3 + (i as f32 * 0.131 + phase).cos())
        .collect()
}

fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn close(fast: f32, slow: f32) -> bool {
    (fast - slow).abs() <= 1e-3 * slow.abs().max(1.0)
}

fn for_each_kernel_set(mut f: impl FnMut(&'static Kernels)) {
    let sets = kernels::available();
    assert!(!sets.is_empty(), "the scalar set is always available");
    for set in sets {
        f(set);
    }
}

#[test]
fn l2_sq_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 0.0);
            let b = test_vector(len, 3.7);
            let fast = (set.l2_sq)(&a, &b);
            let slow = l2_sq_reference(&a, &b);
            assert!(
                close(fast, slow),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn dot_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 1.0);
            let b = test_vector(len, 5.1);
            let fast = (set.dot)(&a, &b);
            let slow = dot_reference(&a, &b);
            assert!(
                close(fast, slow),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn dot_f64_f32_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a: Vec<f64> = test_vector(len, 2.0)
                .iter()
                .map(|&v| f64::from(v))
                .collect();
            let b = test_vector(len, 6.9);
            let fast = (set.dot_f64_f32)(&a, &b);
            let slow: f64 = a.iter().zip(&b).map(|(x, &y)| x * f64::from(y)).sum();
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn fused_dot_norms_matches_three_reference_passes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 4.0);
            let b = test_vector(len, 8.3);
            let f = (set.fused_dot_norms)(&a, &b);
            assert!(
                close(f.dot, dot_reference(&a, &b)),
                "{} len={len} dot",
                set.name
            );
            assert!(
                close(f.norm_a_sq, dot_reference(&a, &a)),
                "{} len={len} ‖a‖²",
                set.name
            );
            assert!(
                close(f.norm_b_sq, dot_reference(&b, &b)),
                "{} len={len} ‖b‖²",
                set.name
            );
        }
    });
}

#[test]
fn unaligned_subslices_agree_with_reference() {
    // Slicing at odd offsets guarantees the loads are not 32-byte aligned.
    let backing_a = test_vector(300, 0.5);
    let backing_b = test_vector(300, 9.2);
    for_each_kernel_set(|set| {
        for offset in 1..=7usize {
            for len in [0usize, 1, 5, 8, 15, 31, 33, 64, 127, 250] {
                let a = &backing_a[offset..offset + len];
                let b = &backing_b[offset + 1..offset + 1 + len];
                let fast = (set.l2_sq)(a, b);
                let slow = l2_sq_reference(a, b);
                assert!(
                    close(fast, slow),
                    "{} offset={offset} len={len}: {fast} vs {slow}",
                    set.name
                );
            }
        }
    });
}

#[test]
fn batched_paths_match_pairwise_paths() {
    for dim in [0usize, 1, 3, 8, 17, 32, 100, 128, 257] {
        for n in [1usize, 2, 7, 19] {
            let x = test_vector(dim, 0.0);
            let rows: Vec<f32> = (0..n)
                .flat_map(|r| test_vector(dim, r as f32 + 1.5))
                .collect();
            let mut batched = vec![0.0f32; n];
            kernels::l2_sq_one_to_many(&x, &rows, &mut batched);
            for (r, &got) in batched.iter().enumerate() {
                let row = &rows[r * dim..(r + 1) * dim];
                assert!(
                    close(got, l2_sq_reference(&x, row)),
                    "l2 dim={dim} n={n} row={r}"
                );
            }
            let mut dots = vec![0.0f32; n];
            kernels::dot_one_to_many(&x, &rows, &mut dots);
            for (r, &got) in dots.iter().enumerate() {
                let row = &rows[r * dim..(r + 1) * dim];
                assert!(
                    close(got, dot_reference(&x, row)),
                    "dot dim={dim} n={n} row={r}"
                );
            }
        }
    }
}

#[test]
fn indexed_and_cached_batches_match_direct_evaluation() {
    let dim = 129; // odd remainder on every lane width
    let n_rows = 23;
    let flat: Vec<f32> = (0..n_rows)
        .flat_map(|r| test_vector(dim, r as f32 * 2.2))
        .collect();
    let x = test_vector(dim, 11.0);
    let indices: Vec<u32> = vec![22, 0, 7, 7, 13, 1];

    let mut indexed = vec![0.0f32; indices.len()];
    kernels::l2_sq_one_to_many_indexed(&x, &flat, dim, &indices, &mut indexed);
    for (slot, &i) in indexed.iter().zip(&indices) {
        let row = &flat[i as usize * dim..(i as usize + 1) * dim];
        assert!(close(*slot, l2_sq_reference(&x, row)), "index {i}");
    }

    let x_norm: f32 = dot_reference(&x, &x);
    let row_norms: Vec<f32> = (0..n_rows)
        .map(|r| {
            let row = &flat[r * dim..(r + 1) * dim];
            dot_reference(row, row)
        })
        .collect();
    let mut cached = vec![0.0f32; n_rows];
    kernels::l2_sq_one_to_many_cached(&x, x_norm, &flat, &row_norms, &mut cached);
    for (r, &got) in cached.iter().enumerate() {
        let row = &flat[r * dim..(r + 1) * dim];
        let expect = l2_sq_reference(&x, row);
        // the expansion amplifies cancellation, hence the looser bound
        assert!(
            (got - expect).abs() <= 1e-2 * expect.max(1.0),
            "cached row {r}: {got} vs {expect}"
        );
        assert!(got >= 0.0, "cached distances must clamp to zero");
    }
}

#[test]
fn dispatch_is_deterministic_within_a_process() {
    let first = kernels::active();
    let first_name = first.name;
    for _ in 0..100 {
        let again = kernels::active();
        assert!(std::ptr::eq(first, again), "dispatch table must be cached");
        assert_eq!(first_name, again.name);
    }
    // the distance wrappers observe the same table
    let a = test_vector(64, 0.1);
    let b = test_vector(64, 7.7);
    let via_wrapper = vecstore::distance::l2_sq(&a, &b);
    let via_table = (kernels::active().l2_sq)(&a, &b);
    assert_eq!(via_wrapper.to_bits(), via_table.to_bits());
}
