//! Property suite for the SIMD kernel subsystem.
//!
//! Every kernel table available on the build machine (scalar always; AVX2+FMA
//! or NEON when the CPU supports it) must agree with the naive reference
//! within 1e-3 relative tolerance:
//!
//! * across **every length 0..=257**, covering all remainder lane counts of
//!   the 32-, 16-, 8- and 4-wide main loops;
//! * on **unaligned slices** (the kernels use unaligned loads; sub-slicing at
//!   odd offsets must not change results beyond reassociation error);
//! * between the **batched one-to-many paths and the pairwise kernels**;
//! * and the **dispatch must be deterministic** within a process.

use vecstore::distance::l2_sq_reference;
use vecstore::kernels::{self, Kernels};

/// Deterministic pseudo-random test vector; `phase` decorrelates the streams.
fn test_vector(len: usize, phase: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32 + phase) * 0.718).sin() * 7.3 + (i as f32 * 0.131 + phase).cos())
        .collect()
}

fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn close(fast: f32, slow: f32) -> bool {
    (fast - slow).abs() <= 1e-3 * slow.abs().max(1.0)
}

fn for_each_kernel_set(mut f: impl FnMut(&'static Kernels)) {
    let sets = kernels::available();
    assert!(!sets.is_empty(), "the scalar set is always available");
    for set in sets {
        f(set);
    }
}

#[test]
fn l2_sq_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 0.0);
            let b = test_vector(len, 3.7);
            let fast = (set.l2_sq)(&a, &b);
            let slow = l2_sq_reference(&a, &b);
            assert!(
                close(fast, slow),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn dot_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 1.0);
            let b = test_vector(len, 5.1);
            let fast = (set.dot)(&a, &b);
            let slow = dot_reference(&a, &b);
            assert!(
                close(fast, slow),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn dot_f64_f32_matches_reference_for_all_remainder_lanes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a: Vec<f64> = test_vector(len, 2.0)
                .iter()
                .map(|&v| f64::from(v))
                .collect();
            let b = test_vector(len, 6.9);
            let fast = (set.dot_f64_f32)(&a, &b);
            let slow: f64 = a.iter().zip(&b).map(|(x, &y)| x * f64::from(y)).sum();
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "{} len={len}: {fast} vs {slow}",
                set.name
            );
        }
    });
}

#[test]
fn fused_dot_norms_matches_three_reference_passes() {
    for_each_kernel_set(|set| {
        for len in 0..=257usize {
            let a = test_vector(len, 4.0);
            let b = test_vector(len, 8.3);
            let f = (set.fused_dot_norms)(&a, &b);
            assert!(
                close(f.dot, dot_reference(&a, &b)),
                "{} len={len} dot",
                set.name
            );
            assert!(
                close(f.norm_a_sq, dot_reference(&a, &a)),
                "{} len={len} ‖a‖²",
                set.name
            );
            assert!(
                close(f.norm_b_sq, dot_reference(&b, &b)),
                "{} len={len} ‖b‖²",
                set.name
            );
        }
    });
}

#[test]
fn unaligned_subslices_agree_with_reference() {
    // Slicing at odd offsets guarantees the loads are not 32-byte aligned.
    let backing_a = test_vector(300, 0.5);
    let backing_b = test_vector(300, 9.2);
    for_each_kernel_set(|set| {
        for offset in 1..=7usize {
            for len in [0usize, 1, 5, 8, 15, 31, 33, 64, 127, 250] {
                let a = &backing_a[offset..offset + len];
                let b = &backing_b[offset + 1..offset + 1 + len];
                let fast = (set.l2_sq)(a, b);
                let slow = l2_sq_reference(a, b);
                assert!(
                    close(fast, slow),
                    "{} offset={offset} len={len}: {fast} vs {slow}",
                    set.name
                );
            }
        }
    });
}

#[test]
fn batched_paths_match_pairwise_paths() {
    for dim in [0usize, 1, 3, 8, 17, 32, 100, 128, 257] {
        for n in [1usize, 2, 7, 19] {
            let x = test_vector(dim, 0.0);
            let rows: Vec<f32> = (0..n)
                .flat_map(|r| test_vector(dim, r as f32 + 1.5))
                .collect();
            let mut batched = vec![0.0f32; n];
            kernels::l2_sq_one_to_many(&x, &rows, &mut batched);
            for (r, &got) in batched.iter().enumerate() {
                let row = &rows[r * dim..(r + 1) * dim];
                assert!(
                    close(got, l2_sq_reference(&x, row)),
                    "l2 dim={dim} n={n} row={r}"
                );
            }
            let mut dots = vec![0.0f32; n];
            kernels::dot_one_to_many(&x, &rows, &mut dots);
            for (r, &got) in dots.iter().enumerate() {
                let row = &rows[r * dim..(r + 1) * dim];
                assert!(
                    close(got, dot_reference(&x, row)),
                    "dot dim={dim} n={n} row={r}"
                );
            }
        }
    }
}

#[test]
fn indexed_and_cached_batches_match_direct_evaluation() {
    let dim = 129; // odd remainder on every lane width
    let n_rows = 23;
    let flat: Vec<f32> = (0..n_rows)
        .flat_map(|r| test_vector(dim, r as f32 * 2.2))
        .collect();
    let x = test_vector(dim, 11.0);
    let indices: Vec<u32> = vec![22, 0, 7, 7, 13, 1];

    let mut indexed = vec![0.0f32; indices.len()];
    kernels::l2_sq_one_to_many_indexed(&x, &flat, dim, &indices, &mut indexed);
    for (slot, &i) in indexed.iter().zip(&indices) {
        let row = &flat[i as usize * dim..(i as usize + 1) * dim];
        assert!(close(*slot, l2_sq_reference(&x, row)), "index {i}");
    }

    let x_norm: f32 = dot_reference(&x, &x);
    let row_norms: Vec<f32> = (0..n_rows)
        .map(|r| {
            let row = &flat[r * dim..(r + 1) * dim];
            dot_reference(row, row)
        })
        .collect();
    let mut cached = vec![0.0f32; n_rows];
    kernels::l2_sq_one_to_many_cached(&x, x_norm, &flat, &row_norms, &mut cached);
    for (r, &got) in cached.iter().enumerate() {
        let row = &flat[r * dim..(r + 1) * dim];
        let expect = l2_sq_reference(&x, row);
        // the expansion amplifies cancellation, hence the looser bound
        assert!(
            (got - expect).abs() <= 1e-2 * expect.max(1.0),
            "cached row {r}: {got} vs {expect}"
        );
        assert!(got >= 0.0, "cached distances must clamp to zero");
    }
}

#[test]
fn dispatch_is_deterministic_within_a_process() {
    let first = kernels::active();
    let first_name = first.name;
    for _ in 0..100 {
        let again = kernels::active();
        assert!(std::ptr::eq(first, again), "dispatch table must be cached");
        assert_eq!(first_name, again.name);
    }
    // the distance wrappers observe the same table
    let a = test_vector(64, 0.1);
    let b = test_vector(64, 7.7);
    let via_wrapper = vecstore::distance::l2_sq(&a, &b);
    let via_table = (kernels::active().l2_sq)(&a, &b);
    assert_eq!(via_wrapper.to_bits(), via_table.to_bits());
}

/// Flat block of `rows` deterministic pseudo-random rows of length `d`.
fn test_block(rows: usize, d: usize, phase: f32) -> Vec<f32> {
    (0..rows)
        .flat_map(|r| test_vector(d, phase + r as f32 * 1.37))
        .collect()
}

#[test]
fn many_to_many_tiles_match_reference_across_tile_edges() {
    // Shapes straddling every micro-kernel edge: the 4-query block, the
    // 2-candidate block, and (at 63..=65) the interior/edge transitions of
    // larger tiles.  Small m/k sweep the full 0..=257 dimension range; the
    // larger shapes sample the interesting remainder dimensions.
    let small: &[usize] = &[1, 7, 8, 9];
    let large: &[usize] = &[63, 64, 65];
    let dims_full: Vec<usize> = (0..=257).collect();
    let dims_sampled: Vec<usize> = vec![0, 1, 7, 8, 9, 31, 32, 64, 65, 128, 129, 257];
    for_each_kernel_set(|set| {
        let check = |m: usize, k: usize, d: usize| {
            let xs = test_block(m, d, 0.3);
            let rows = test_block(k, d, 5.9);
            let mut tile = vec![f32::NAN; m * k];
            (set.l2_sq_many_to_many)(&xs, &rows, d, &mut tile);
            let mut dots = vec![f32::NAN; m * k];
            (set.dot_many_to_many)(&xs, &rows, d, &mut dots);
            for q in 0..m {
                for c in 0..k {
                    let a = &xs[q * d..(q + 1) * d];
                    let b = &rows[c * d..(c + 1) * d];
                    assert!(
                        close(tile[q * k + c], l2_sq_reference(a, b)),
                        "{} l2 m={m} k={k} d={d} ({q},{c})",
                        set.name
                    );
                    assert!(
                        close(dots[q * k + c], dot_reference(a, b)),
                        "{} dot m={m} k={k} d={d} ({q},{c})",
                        set.name
                    );
                }
            }
        };
        for &m in small {
            for &k in small {
                for &d in &dims_full {
                    check(m, k, d);
                }
            }
        }
        for &m in large {
            for &k in large {
                for &d in &dims_sampled {
                    check(m, k, d);
                }
            }
        }
        // mixed small × large edges
        for &(m, k) in &[(1usize, 65usize), (65, 1), (7, 64), (64, 9)] {
            for &d in &dims_sampled {
                check(m, k, d);
            }
        }
    });
}

#[test]
fn many_to_many_tiles_are_bit_stable_under_unaligned_slices() {
    // The tiling invariant promises per-pair results independent of blocking;
    // unaligned loads must not change them either, so an odd-offset view of
    // the same values must reproduce the tile bit for bit.
    let (m, k, d) = (9, 11, 67);
    for_each_kernel_set(|set| {
        for offset in 1..=3usize {
            let mut backing_x = vec![0.0f32; offset + m * d];
            backing_x[offset..].copy_from_slice(&test_block(m, d, 1.1));
            let mut backing_r = vec![0.0f32; offset + k * d];
            backing_r[offset..].copy_from_slice(&test_block(k, d, 8.4));
            let mut aligned = vec![0.0f32; m * k];
            (set.l2_sq_many_to_many)(&backing_x[offset..], &backing_r[offset..], d, &mut aligned);
            let xs = test_block(m, d, 1.1);
            let rows = test_block(k, d, 8.4);
            let mut direct = vec![0.0f32; m * k];
            (set.l2_sq_many_to_many)(&xs, &rows, d, &mut direct);
            for (a, b) in aligned.iter().zip(&direct) {
                assert_eq!(a.to_bits(), b.to_bits(), "{} offset={offset}", set.name);
            }
        }
    });
}

/// The pre-tiling assignment scan: one one-to-many sweep per sample plus the
/// sticky argmin `baselines::common` used before the fused kernel existed.
fn pre_tiling_assign(xs: &[f32], rows: &[f32], d: usize, labels: &mut [usize]) {
    let k = rows.len() / d;
    let mut dists = vec![0.0f32; k];
    for (q, label) in xs.chunks_exact(d).zip(labels.iter_mut()) {
        kernels::l2_sq_one_to_many(q, rows, &mut dists);
        let mut best = (*label).min(k - 1);
        let mut best_v = dists[best];
        for (i, &v) in dists.iter().enumerate() {
            if v < best_v {
                best_v = v;
                best = i;
            }
        }
        *label = best;
    }
}

#[test]
fn assign_block_agrees_with_materialise_then_scan_exactly() {
    // Shapes crossing the 16-query and 256-candidate panel edges of the
    // fused fold; candidates include exact duplicates so sticky ties are
    // exercised on every shape.
    for &(m, k, d) in &[
        (1usize, 1usize, 3usize),
        (7, 2, 5),
        (16, 7, 9),
        (17, 256, 5),
        (33, 259, 8),
        (5, 300, 33),
    ] {
        let xs = test_block(m, d, 0.9);
        let mut rows = test_block(k, d, 4.2);
        if k >= 2 {
            // duplicate the first candidate into the last slot
            let first = rows[..d].to_vec();
            rows[(k - 1) * d..].copy_from_slice(&first);
        }
        let current: Vec<u32> = (0..m).map(|q| ((q * 7) % (k + 2)) as u32).collect();
        let mut idx = vec![0u32; m];
        let mut dist = vec![0.0f32; m];
        let mut second = vec![0.0f32; m];
        kernels::assign_block(&xs, &rows, d, &current, &mut idx, &mut dist, &mut second);

        let mut tile = vec![0.0f32; m * k];
        kernels::l2_sq_many_to_many(&xs, &rows, d, &mut tile);
        for q in 0..m {
            let row = &tile[q * k..(q + 1) * k];
            let cur = (current[q] as usize).min(k - 1);
            let mut best = cur;
            let mut best_v = row[cur];
            for (c, &v) in row.iter().enumerate() {
                if v < best_v {
                    best_v = v;
                    best = c;
                }
            }
            let second_ref = row
                .iter()
                .enumerate()
                .filter(|&(c, _)| c != best)
                .map(|(_, &v)| v)
                .fold(f32::INFINITY, f32::min);
            assert_eq!(idx[q] as usize, best, "m={m} k={k} d={d} q={q}");
            assert_eq!(
                dist[q].to_bits(),
                best_v.to_bits(),
                "best distance m={m} k={k} d={d} q={q}"
            );
            assert_eq!(
                second[q].to_bits(),
                second_ref.to_bits(),
                "second distance m={m} k={k} d={d} q={q}"
            );
        }
    }
}

#[test]
fn fused_assignment_labels_bit_identical_to_pre_tiling_path() {
    // Integer-lattice corpus: every coordinate is a small integer, so every
    // squared distance is exactly representable and *every* summation order
    // produces the same f32 — the one regime where the pre-tiling sweep and
    // the tiled kernel must agree bit for bit, including sticky ties against
    // exactly duplicated centroids.
    let d = 24;
    let m = 150;
    let k = 37;
    let xs: Vec<f32> = (0..m * d).map(|i| ((i * 7 + i / d) % 13) as f32).collect();
    let mut rows: Vec<f32> = (0..k * d).map(|i| ((i * 5 + i / d) % 13) as f32).collect();
    // duplicate centroid pairs at (0, k-1) and (3, 4)
    let first = rows[..d].to_vec();
    rows[(k - 1) * d..].copy_from_slice(&first);
    let third = rows[3 * d..4 * d].to_vec();
    rows[4 * d..5 * d].copy_from_slice(&third);

    for start in [0usize, 3, 4, 36] {
        let mut old_labels = vec![start; m];
        pre_tiling_assign(&xs, &rows, d, &mut old_labels);

        let current = vec![start as u32; m];
        let mut idx = vec![0u32; m];
        let mut dist = vec![0.0f32; m];
        let mut second = vec![0.0f32; m];
        kernels::assign_block(&xs, &rows, d, &current, &mut idx, &mut dist, &mut second);
        let new_labels: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        assert_eq!(old_labels, new_labels, "start={start}");
    }
}

#[test]
fn cached_assignment_falls_back_and_matches_direct_on_large_norms() {
    // Large-norm descriptors: ‖x‖² ≈ 1e7 makes the f32 expansion error
    // (~eps·‖x‖² ≈ 1) dwarf the true distances (≤ 1e-2), so only the
    // compensation fallback can keep the cached argmin honest.
    let d = 12;
    let m = 64;
    let k = 9;
    let offset = 3.0e3f32;
    let xs: Vec<f32> = (0..m * d)
        .map(|i| offset + ((i % 11) as f32) * 1.0e-3)
        .collect();
    let rows: Vec<f32> = (0..k * d)
        .map(|i| offset + ((i % 7) as f32) * 1.0e-3)
        .collect();
    let x_norms: Vec<f32> = (0..m)
        .map(|q| dot_reference(&xs[q * d..(q + 1) * d], &xs[q * d..(q + 1) * d]))
        .collect();
    let row_norms: Vec<f32> = (0..k)
        .map(|c| dot_reference(&rows[c * d..(c + 1) * d], &rows[c * d..(c + 1) * d]))
        .collect();
    let current = vec![0u32; m];

    let mut idx_direct = vec![0u32; m];
    let mut dist_direct = vec![0.0f32; m];
    let mut second_direct = vec![0.0f32; m];
    kernels::assign_block(
        &xs,
        &rows,
        d,
        &current,
        &mut idx_direct,
        &mut dist_direct,
        &mut second_direct,
    );

    let mut idx_cached = vec![0u32; m];
    let mut dist_cached = vec![0.0f32; m];
    let mut second_cached = vec![0.0f32; m];
    kernels::assign_block_cached(
        &xs,
        &x_norms,
        &rows,
        &row_norms,
        d,
        &current,
        &mut idx_cached,
        &mut dist_cached,
        &mut second_cached,
    );
    assert_eq!(idx_direct, idx_cached);
    // fallen-back samples re-score through the direct tile, so even the
    // distances must agree bit for bit
    for (a, b) in dist_direct.iter().zip(&dist_cached) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

#[test]
fn add_assign_is_bit_identical_across_dispatch_levels() {
    // Element-wise widening adds carry no summation order: every level must
    // reproduce the scalar result exactly, at every remainder lane count.
    for len in 0..=67usize {
        let row = test_vector(len, 5.1);
        let init: Vec<f64> = (0..len).map(|i| (i as f64 * 0.77).sin() * 1e3).collect();
        let mut reference = init.clone();
        kernels::scalar::add_assign_f64_f32(&mut reference, &row);
        for_each_kernel_set(|set| {
            let mut acc = init.clone();
            (set.add_assign_f64_f32)(&mut acc, &row);
            for (j, (a, b)) in acc.iter().zip(&reference).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{} len={len} lane={j}", set.name);
            }
        });
    }
}

#[test]
fn fused_accumulate_sweep_matches_assign_then_accumulate_exactly() {
    // The fused sweep must change nothing about the assignment (labels,
    // distances, second-best — all bit-identical to `assign_block`) and its
    // sums/counts must equal a reference accumulation of the winners in
    // ascending query order, across the tile-edge shapes of the blocked
    // kernels.
    let d = 24;
    for &m in &[1usize, 7, 8, 9, 16, 17, 63, 64, 65] {
        for &k in &[1usize, 7, 9, 64, 65] {
            let xs = test_vector(m * d, 0.3);
            let rows = test_vector(k * d, 8.9);
            let current: Vec<u32> = (0..m).map(|q| (q % k) as u32).collect();

            let mut idx_a = vec![0u32; m];
            let mut dist_a = vec![0.0f32; m];
            let mut sec_a = vec![0.0f32; m];
            kernels::assign_block(&xs, &rows, d, &current, &mut idx_a, &mut dist_a, &mut sec_a);

            let mut idx_b = vec![0u32; m];
            let mut dist_b = vec![0.0f32; m];
            let mut sec_b = vec![0.0f32; m];
            let mut sums = vec![0.0f64; k * d];
            let mut counts = vec![0u64; k];
            kernels::assign_accumulate_block(
                &xs,
                &rows,
                d,
                &current,
                &mut idx_b,
                &mut dist_b,
                &mut sec_b,
                &mut sums,
                &mut counts,
            );
            assert_eq!(idx_a, idx_b, "m={m} k={k}: labels");
            for q in 0..m {
                assert_eq!(
                    dist_a[q].to_bits(),
                    dist_b[q].to_bits(),
                    "m={m} k={k} q={q}"
                );
                assert_eq!(sec_a[q].to_bits(), sec_b[q].to_bits(), "m={m} k={k} q={q}");
            }

            let mut ref_sums = vec![0.0f64; k * d];
            let mut ref_counts = vec![0u64; k];
            for q in 0..m {
                let c = idx_a[q] as usize;
                ref_counts[c] += 1;
                for (slot, &x) in ref_sums[c * d..(c + 1) * d]
                    .iter_mut()
                    .zip(&xs[q * d..(q + 1) * d])
                {
                    *slot += f64::from(x);
                }
            }
            assert_eq!(counts, ref_counts, "m={m} k={k}: counts");
            for (j, (a, b)) in sums.iter().zip(&ref_sums).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "m={m} k={k}: sum lane {j}");
            }
            assert_eq!(counts.iter().sum::<u64>(), m as u64);
        }
    }
}
