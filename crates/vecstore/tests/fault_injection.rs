//! Fault-injection sweep for the GKSC v2 container: the **"no panic, no
//! garbage"** contract.  Every corruption a [`vecstore::fault`] adapter can
//! inject — truncation at any byte, any single bit-flip, torn writes, short
//! reads, hostile declared lengths — must surface as a typed
//! [`vecstore::StoreError`], never as a panic, an allocation abort, or a
//! silently different payload.

use std::io::Cursor;

use proptest::prelude::*;
use vecstore::fault::{corrupt, Fault, FaultyReader, FaultyWriter};
use vecstore::io::{
    atomic_write, read_sections_from, read_sections_strict_from, write_sections_to,
    write_sections_v1_to, Section,
};
use vecstore::{Error, StoreError};

/// A representative container: several sections with distinct tags, lengths
/// (including an empty payload) and byte patterns.
fn sample_sections(seed: u64) -> Vec<Section> {
    let shapes: [(&str, usize); 4] = [
        ("IVFCENTR", 57),
        ("IVFOFFS", 24),
        ("meta", 0),
        ("IVFIDS", 40),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(s, &(tag, len))| {
            let payload = (0..len)
                .map(|i| {
                    ((i as u64)
                        .wrapping_mul(0x9e37_79b9)
                        .wrapping_add(seed ^ s as u64)
                        & 0xff) as u8
                })
                .collect();
            Section::new(tag, payload)
        })
        .collect()
}

fn v2_image(seed: u64) -> Vec<u8> {
    let mut buf = Vec::new();
    write_sections_to(&mut buf, &sample_sections(seed)).unwrap();
    buf
}

/// Every strict truncation of a v2 file is rejected with a corruption error —
/// exhaustively, at every byte boundary.
#[test]
fn every_truncation_of_a_v2_file_is_detected() {
    let image = v2_image(7);
    for cut in 0..image.len() {
        let maimed = corrupt(&image, Fault::Truncate(cut));
        let err = read_sections_from(Cursor::new(maimed))
            .expect_err(&format!("truncation at byte {cut} must not parse"));
        assert!(err.is_corruption(), "cut={cut}: unexpected class {err}");
    }
    // the unmodified image still parses (the sweep's control arm)
    assert_eq!(
        read_sections_from(Cursor::new(image)).unwrap(),
        sample_sections(7)
    );
}

/// Every byte of a v2 file is covered by exactly one checksum, so *every*
/// single bit-flip must be detected — exhaustively, all bytes × all bits.
#[test]
fn every_single_bit_flip_of_a_v2_file_is_detected() {
    let image = v2_image(13);
    for byte in 0..image.len() {
        for bit in 0..8u8 {
            let maimed = corrupt(&image, Fault::FlipBit { byte, bit });
            let err = read_sections_from(Cursor::new(maimed))
                .expect_err(&format!("flip of byte {byte} bit {bit} must not parse"));
            assert!(
                err.is_corruption(),
                "byte={byte} bit={bit}: unexpected class {err}"
            );
        }
    }
}

/// A hostile declared section length (up to u64::MAX) is rejected before any
/// allocation is attempted.
#[test]
fn hostile_declared_lengths_never_allocate() {
    let image = v2_image(3);
    // The first section's length field lives right after the 20-byte header
    // (4 magic + 4 version + 8 count + 4 crc) and its 8-byte tag.
    let len_at = 20 + 8;
    for hostile in [u64::MAX, 1 << 62, 1 << 40, (1 << 40) - 1, 1 << 30] {
        let mut maimed = image.clone();
        maimed[len_at..len_at + 8].copy_from_slice(&hostile.to_le_bytes());
        let err = read_sections_from(Cursor::new(maimed)).unwrap_err();
        match err {
            Error::Store(StoreError::Oversized { .. })
            | Error::Store(StoreError::Truncated { .. })
            | Error::Store(StoreError::ChecksumMismatch { .. }) => {}
            other => panic!("hostile len {hostile:#x}: unexpected error {other}"),
        }
    }
}

/// A torn write (silently dropped tail, as from a crashed process or a full
/// disk without error reporting) is always caught on read-back.
#[test]
fn torn_writes_are_caught_on_read_back() {
    let image = v2_image(21);
    for keep in 0..image.len() {
        let mut w = FaultyWriter::new(Vec::new(), keep).silently();
        write_sections_to(&mut w, &sample_sections(21)).unwrap();
        let torn = w.into_inner();
        assert_eq!(torn.len(), keep);
        assert!(
            read_sections_from(Cursor::new(torn)).is_err(),
            "torn file of {keep} bytes must not parse"
        );
    }
}

/// Legacy v1 containers load leniently but are refused in strict mode with
/// the dedicated unchecksummed-version error.
#[test]
fn v1_files_load_leniently_and_are_refused_in_strict_mode() {
    let sections = sample_sections(31);
    let mut v1 = Vec::new();
    write_sections_v1_to(&mut v1, &sections).unwrap();
    assert_eq!(
        read_sections_from(Cursor::new(v1.clone())).unwrap(),
        sections
    );
    match read_sections_strict_from(Cursor::new(v1)).unwrap_err() {
        Error::Store(StoreError::Unchecksummed { version }) => assert_eq!(version, 1),
        other => panic!("unexpected error {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random container shapes, random cut points: truncation always errors,
    /// and never with a panic.
    #[test]
    fn truncation_errors_for_arbitrary_shapes(
        shapes in proptest::collection::vec(0usize..40, 0..6),
        cut in 0usize..400,
        seed in 0u64..1000,
    ) {
        let sections: Vec<Section> = shapes
            .iter()
            .enumerate()
            .map(|(s, &len)| Section::new("SEC", vec![(s as u8) ^ (seed as u8); len]))
            .collect();
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        let cut = cut.min(buf.len().saturating_sub(1));
        let maimed = corrupt(&buf, Fault::Truncate(cut));
        prop_assert!(read_sections_from(Cursor::new(maimed)).is_err());
    }

    /// Random bit-flips over random shapes: always a typed corruption error.
    #[test]
    fn bit_flips_error_for_arbitrary_shapes(
        shapes in proptest::collection::vec(0usize..40, 1..6),
        byte in 0usize..500,
        bit in 0u8..8,
        seed in 0u64..1000,
    ) {
        let sections: Vec<Section> = shapes
            .iter()
            .enumerate()
            .map(|(s, &len)| Section::new("SEC", vec![(s as u8).wrapping_add(seed as u8); len]))
            .collect();
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        let byte = byte % buf.len();
        let maimed = corrupt(&buf, Fault::FlipBit { byte, bit });
        let err = read_sections_from(Cursor::new(maimed)).unwrap_err();
        prop_assert!(err.is_corruption(), "byte={} bit={}: {}", byte, bit, err);
    }

    /// Drip-fed reads (any chunk size ≥ 1) deliver byte-identical results:
    /// the framing layer never mistakes a short read for end-of-file.
    #[test]
    fn short_reads_are_invisible(chunk in 1usize..64, seed in 0u64..1000) {
        let sections = sample_sections(seed);
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        let reader = FaultyReader::new(Cursor::new(buf), Fault::None).with_short_reads(chunk);
        prop_assert_eq!(read_sections_from(reader).unwrap(), sections);
    }

    /// A bit-flip injected *by the transport* (not the file) is equally
    /// detected — the reader does not trust the stream any more than the
    /// disk.
    #[test]
    fn transport_bit_flips_are_detected(byte in 0usize..200, bit in 0u8..8, chunk in 1usize..32) {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sample_sections(5)).unwrap();
        let byte = byte % buf.len();
        let reader = FaultyReader::new(Cursor::new(buf), Fault::FlipBit { byte, bit })
            .with_short_reads(chunk);
        prop_assert!(read_sections_from(reader).is_err());
    }
}

/// `atomic_write` + an injected mid-write failure leaves the previous file
/// byte-identical and no temp litter behind — the crash-consistency half of
/// the durability story (checksums being the detection half).
#[test]
fn failed_atomic_write_preserves_the_previous_generation() {
    use std::io::Write;

    let dir = std::env::temp_dir().join(format!("gkm-fault-atomic-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let target = dir.join("data.gksc");

    let old = v2_image(1);
    std::fs::write(&target, &old).unwrap();

    let fresh = v2_image(2);
    for limit in [0usize, 1, 16, fresh.len().saturating_sub(1)] {
        // Model a crash partway through: `limit` bytes reach the temp file,
        // then the write fails.
        let res = atomic_write(&target, |w| {
            w.write_all(&fresh[..limit]).map_err(Error::Io)?;
            Err(Error::Io(std::io::Error::new(
                std::io::ErrorKind::WriteZero,
                "injected write failure",
            )))
        });
        assert!(res.is_err(), "limit={limit}");
        assert_eq!(std::fs::read(&target).unwrap(), old, "limit={limit}");
    }
    let litter: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name() != "data.gksc")
        .collect();
    assert!(litter.is_empty(), "temp litter: {litter:?}");
    std::fs::remove_dir_all(&dir).ok();
}
