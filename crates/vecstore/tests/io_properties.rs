//! Round-trip property suite for every `vecstore::io` writer/reader pair:
//! `fvecs`, `ivecs`, `bvecs`, the native format and the chunked section
//! container, across the awkward shapes — d = 1, unaligned record counts,
//! empty payloads/record lists — that fixed example tests miss.

use std::io::Cursor;

use proptest::prelude::*;
use vecstore::io::{
    read_bvecs_from, read_fvecs_from, read_ivecs_from, read_native_from, read_sections_from,
    vector_set_from_bytes, vector_set_to_bytes, write_bvecs_to, write_fvecs_to, write_ivecs_to,
    write_native_to, write_sections_to, Section,
};
use vecstore::VectorSet;

/// Deterministic finite f32 from a case seed: exercises negatives, fractions
/// and large magnitudes without ever producing NaN/Inf (which the formats
/// store fine but `==` comparison would reject).
fn value(i: usize, seed: u64) -> f32 {
    let x = (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(seed) % 10_000;
    (x as f32 - 5_000.0) * 0.37
}

fn arbitrary_set(n: usize, d: usize, seed: u64) -> VectorSet {
    let data: Vec<f32> = (0..n * d).map(|i| value(i, seed)).collect();
    VectorSet::from_flat(data, d).expect("whole rows of a positive dim")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// fvecs: write → read is the identity for any rectangular shape with at
    /// least one record (the format cannot represent an empty file's dim).
    #[test]
    fn fvecs_round_trip(n in 1usize..24, d in 1usize..18, seed in 0u64..1000) {
        let vs = arbitrary_set(n, d, seed);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        prop_assert_eq!(buf.len(), n * (4 + d * 4));
        prop_assert_eq!(read_fvecs_from(Cursor::new(buf)).unwrap(), vs);
    }

    /// fvecs: any strict truncation of a valid file is rejected, never
    /// silently read short.
    #[test]
    fn fvecs_truncation_always_errors(n in 1usize..8, d in 1usize..8, cut in 1usize..16, seed in 0u64..1000) {
        let vs = arbitrary_set(n, d, seed);
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        let cut = cut.min(buf.len() - 1).max(1);
        buf.truncate(buf.len() - cut);
        // Cutting a whole number of records leaves a shorter valid file;
        // anything else must error.
        let record = 4 + d * 4;
        if cut % record == 0 {
            let back = read_fvecs_from(Cursor::new(buf)).unwrap();
            prop_assert_eq!(back.len(), n - cut / record);
        } else {
            prop_assert!(read_fvecs_from(Cursor::new(buf)).is_err());
        }
    }

    /// ivecs: ragged rows (differing lengths) round-trip record by record;
    /// the empty file reads as zero records.
    #[test]
    fn ivecs_round_trip(lens in proptest::collection::vec(1usize..9, 0..10), seed in 0u64..1000) {
        let rows: Vec<Vec<i32>> = lens
            .iter()
            .enumerate()
            .map(|(r, &len)| (0..len).map(|i| value(r * 31 + i, seed) as i32).collect())
            .collect();
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).unwrap();
        prop_assert_eq!(read_ivecs_from(Cursor::new(buf)).unwrap(), rows);
    }

    /// bvecs: byte-exact sets round-trip through the widening reader.
    #[test]
    fn bvecs_round_trip(n in 1usize..16, d in 1usize..24, seed in 0u64..1000) {
        let data: Vec<f32> = (0..n * d)
            .map(|i| (((i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(seed)) % 256) as f32)
            .collect();
        let vs = VectorSet::from_flat(data, d).unwrap();
        let mut buf = Vec::new();
        write_bvecs_to(&mut buf, &vs).unwrap();
        prop_assert_eq!(buf.len(), n * (4 + d));
        prop_assert_eq!(read_bvecs_from(Cursor::new(buf)).unwrap(), vs);
    }

    /// native: round-trips every shape including n = 0 (which the record
    /// formats cannot express) and unaligned row counts.
    #[test]
    fn native_round_trip(n in 0usize..24, d in 1usize..18, seed in 0u64..1000) {
        let vs = arbitrary_set(n, d, seed);
        let mut buf = Vec::new();
        write_native_to(&mut buf, &vs).unwrap();
        prop_assert_eq!(buf.len(), 16 + n * d * 4);
        let back = read_native_from(Cursor::new(buf.clone())).unwrap();
        prop_assert_eq!(&back, &vs);
        prop_assert_eq!(back.dim(), d);
        // the in-memory section-payload helpers agree with the streamed form
        prop_assert_eq!(vector_set_to_bytes(&vs), buf.clone());
        prop_assert_eq!(vector_set_from_bytes(&buf).unwrap(), vs);
    }

    /// sections: any list of tagged payloads (duplicate tags, empty payloads,
    /// zero sections) round-trips in order; any strict truncation errors.
    #[test]
    fn sections_round_trip_and_reject_truncation(
        shapes in proptest::collection::vec((0usize..8, 0usize..40), 0..7),
        cut in 1usize..24,
        seed in 0u64..1000,
    ) {
        let tags = ["IVFCENTR", "IVFOFFS", "IVFIDS", "IVFPANEL", "A", "LONGTAG8", "x1", "meta"];
        let sections: Vec<Section> = shapes
            .iter()
            .enumerate()
            .map(|(s, &(tag, len))| {
                let payload = (0..len)
                    .map(|i| (value(s * 97 + i, seed) as i64 & 0xff) as u8)
                    .collect();
                Section::new(tags[tag], payload)
            })
            .collect();
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        prop_assert_eq!(read_sections_from(Cursor::new(buf.clone())).unwrap(), sections);

        let cut = cut.min(buf.len() - 1).max(1);
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - cut);
        prop_assert!(read_sections_from(Cursor::new(truncated)).is_err());
    }
}
