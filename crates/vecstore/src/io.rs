//! Readers/writers for the TexMex vector formats and a native binary format.
//!
//! The paper's datasets (SIFT1M, GIST1M, …, Tab. 1) are distributed in the
//! `fvecs`/`ivecs`/`bvecs` formats: each record is a little-endian `i32`
//! dimensionality followed by `d` components (`f32`, `i32` or `u8`
//! respectively).  The harness uses these readers when real datasets are
//! available and the synthetic generators otherwise; the writers make the
//! synthetic workloads exportable so they can be compared against the
//! original C++ implementation.
//!
//! On top of the flat record formats this module provides a **chunked
//! container** extension of the native format ([`write_sections_to`] /
//! [`read_sections_from`]): a magic/version header followed by tagged,
//! length-prefixed sections.  Composite on-disk artefacts — the IVF serving
//! index is the first — store each constituent (centroid matrix, list
//! offsets, id remap, vector panels) as its own section, so readers can
//! validate shapes section by section and future fields extend the format
//! without breaking old readers' framing.  [`vector_set_to_bytes`] /
//! [`vector_set_from_bytes`] round-trip a [`VectorSet`] through the native
//! encoding for use as a section payload.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::matrix::VectorSet;

/// Reads an `fvecs` file into a [`VectorSet`].
///
/// # Errors
///
/// Returns [`Error::MalformedFile`] on truncated records or inconsistent
/// dimensionality, and [`Error::Io`] for underlying I/O failures.
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<VectorSet> {
    let file = File::open(path)?;
    read_fvecs_from(BufReader::new(file))
}

/// Reads `fvecs` records from an arbitrary reader.
pub fn read_fvecs_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(Error::MalformedFile(format!(
                    "inconsistent dimensionality: {existing} then {d}"
                )));
            }
            Some(_) => {}
        }
        let mut record = vec![0u8; d * 4];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated fvecs record: {e}")))?;
        for chunk in record.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
    }
    let dim = dim.ok_or(Error::EmptyInput("fvecs file holds no records"))?;
    VectorSet::from_flat(data, dim)
}

/// Writes a [`VectorSet`] in the `fvecs` format.
pub fn write_fvecs(path: impl AsRef<Path>, data: &VectorSet) -> Result<()> {
    let file = File::create(path)?;
    write_fvecs_to(BufWriter::new(file), data)
}

/// Writes `fvecs` records to an arbitrary writer.
pub fn write_fvecs_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    let dim = data.dim() as i32;
    for row in data.rows() {
        writer.write_all(&dim.to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads an `ivecs` file (used by TexMex for ground-truth neighbour lists).
///
/// Returns one `Vec<i32>` per record; records may have differing lengths in
/// principle but ground-truth files are rectangular.
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<Vec<Vec<i32>>> {
    let file = File::open(path)?;
    read_ivecs_from(BufReader::new(file))
}

/// Reads `ivecs` records from an arbitrary reader.
pub fn read_ivecs_from(mut reader: impl Read) -> Result<Vec<Vec<i32>>> {
    let mut out = Vec::new();
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        let mut record = vec![0u8; d * 4];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated ivecs record: {e}")))?;
        let row = record
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        out.push(row);
    }
    Ok(out)
}

/// Writes `ivecs` records.
pub fn write_ivecs_to(mut writer: impl Write, rows: &[Vec<i32>]) -> Result<()> {
    for row in rows {
        let d = row.len() as i32;
        writer.write_all(&d.to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads a `bvecs` file (byte-quantised descriptors, e.g. SIFT1B subsets),
/// widening each component to `f32`.
pub fn read_bvecs_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(Error::MalformedFile(format!(
                    "inconsistent dimensionality: {existing} then {d}"
                )));
            }
            Some(_) => {}
        }
        let mut record = vec![0u8; d];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated bvecs record: {e}")))?;
        data.extend(record.iter().map(|&b| f32::from(b)));
    }
    let dim = dim.ok_or(Error::EmptyInput("bvecs file holds no records"))?;
    VectorSet::from_flat(data, dim)
}

/// Writes `bvecs` records (byte-quantised descriptors).
///
/// The inverse of [`read_bvecs_from`]: every component must already be an
/// integer in `0..=255` (the widened form the reader produces), otherwise the
/// set is not representable in the format.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when a component is not a `u8`-exact
/// value, and [`Error::Io`] for underlying I/O failures.
pub fn write_bvecs_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    let dim = data.dim() as i32;
    let mut record = vec![0u8; data.dim()];
    for (i, row) in data.rows().enumerate() {
        for (slot, &v) in record.iter_mut().zip(row) {
            if !(0.0..=255.0).contains(&v) || v.fract() != 0.0 {
                return Err(Error::InvalidParameter(format!(
                    "bvecs component {v} of row {i} is not an integer in 0..=255"
                )));
            }
            *slot = v as u8;
        }
        writer.write_all(&dim.to_le_bytes())?;
        writer.write_all(&record)?;
    }
    writer.flush()?;
    Ok(())
}

/// Native compact binary format: `u64 n`, `u64 d`, then `n·d` little-endian
/// `f32` values.  Roughly 4 bytes/component with an 16-byte header, used by
/// the harness to cache generated workloads between runs.
pub fn write_native(path: impl AsRef<Path>, data: &VectorSet) -> Result<()> {
    let file = File::create(path)?;
    write_native_to(BufWriter::new(file), data)
}

/// Writes the native format to an arbitrary writer.
pub fn write_native_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    writer.write_all(&(data.len() as u64).to_le_bytes())?;
    writer.write_all(&(data.dim() as u64).to_le_bytes())?;
    for &v in data.as_flat() {
        writer.write_all(&v.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads the native format produced by [`write_native`].
pub fn read_native(path: impl AsRef<Path>) -> Result<VectorSet> {
    let file = File::open(path)?;
    read_native_from(BufReader::new(file))
}

/// Reads the native format from an arbitrary reader.
pub fn read_native_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut header = [0u8; 16];
    reader
        .read_exact(&mut header)
        .map_err(|e| Error::MalformedFile(format!("truncated native header: {e}")))?;
    let n = u64::from_le_bytes(header[0..8].try_into().expect("8-byte slice")) as usize;
    let d = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice")) as usize;
    if d == 0 {
        return Err(Error::MalformedFile("zero dimensionality".into()));
    }
    let mut payload = vec![0u8; n * d * 4];
    reader
        .read_exact(&mut payload)
        .map_err(|e| Error::MalformedFile(format!("truncated native payload: {e}")))?;
    let data = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    VectorSet::from_flat(data, d)
}

/// Magic bytes opening a chunked (sectioned) container file.
pub const SECTION_MAGIC: [u8; 4] = *b"GKSC";

/// Current version of the chunked container framing.
pub const SECTION_VERSION: u32 = 1;

/// One tagged, length-prefixed chunk of a sectioned container.
///
/// The tag is a fixed 8-byte field (short ASCII names padded with spaces);
/// the payload is opaque to the framing layer — composite formats such as the
/// IVF index define their own payload encodings per tag (typically the native
/// [`VectorSet`] encoding via [`vector_set_to_bytes`], or packed
/// little-endian integers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// 8-byte section tag (space-padded ASCII by convention).
    pub tag: [u8; 8],
    /// Raw section payload.
    pub payload: Vec<u8>,
}

impl Section {
    /// Creates a section, space-padding `tag` to 8 bytes.
    ///
    /// # Panics
    ///
    /// Panics when `tag` is longer than 8 bytes — tags are compile-time
    /// constants of the composite format, so a long tag is a programming
    /// error, not an input error.
    pub fn new(tag: &str, payload: Vec<u8>) -> Self {
        assert!(tag.len() <= 8, "section tag `{tag}` exceeds 8 bytes");
        let mut t = [b' '; 8];
        t[..tag.len()].copy_from_slice(tag.as_bytes());
        Self { tag: t, payload }
    }

    /// `true` when this section carries the (space-padded) tag `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        Self::new(tag, Vec::new()).tag == self.tag
    }
}

/// Writes a chunked container: [`SECTION_MAGIC`], [`SECTION_VERSION`], the
/// section count, then each section as `tag (8 bytes) · payload length (u64)
/// · payload`.
pub fn write_sections_to(mut writer: impl Write, sections: &[Section]) -> Result<()> {
    writer.write_all(&SECTION_MAGIC)?;
    writer.write_all(&SECTION_VERSION.to_le_bytes())?;
    writer.write_all(&(sections.len() as u64).to_le_bytes())?;
    for section in sections {
        writer.write_all(&section.tag)?;
        writer.write_all(&(section.payload.len() as u64).to_le_bytes())?;
        writer.write_all(&section.payload)?;
    }
    writer.flush()?;
    Ok(())
}

/// Classifies a framing-read failure: a clean end-of-file means the file is
/// truncated ([`Error::MalformedFile`]); any other kind is a genuine I/O
/// failure ([`Error::Io`]) that callers may retry rather than treat as
/// permanent corruption.
fn framing_error(e: std::io::Error, what: &str) -> Error {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        Error::MalformedFile(format!("truncated {what}: {e}"))
    } else {
        Error::Io(e)
    }
}

/// Reads a chunked container written by [`write_sections_to`], returning the
/// sections in file order (duplicate tags are preserved; consumers decide
/// their semantics).
///
/// # Errors
///
/// Returns [`Error::MalformedFile`] on a bad magic, an unsupported version or
/// truncated framing, and [`Error::Io`] for underlying I/O failures.
pub fn read_sections_from(mut reader: impl Read) -> Result<Vec<Section>> {
    let mut header = [0u8; 16];
    reader
        .read_exact(&mut header)
        .map_err(|e| framing_error(e, "container header"))?;
    if header[0..4] != SECTION_MAGIC {
        return Err(Error::MalformedFile(format!(
            "bad container magic {:?}",
            &header[0..4]
        )));
    }
    let version = u32::from_le_bytes(header[4..8].try_into().expect("4-byte slice"));
    if version != SECTION_VERSION {
        return Err(Error::MalformedFile(format!(
            "unsupported container version {version} (expected {SECTION_VERSION})"
        )));
    }
    let count = u64::from_le_bytes(header[8..16].try_into().expect("8-byte slice")) as usize;
    let mut sections = Vec::with_capacity(count.min(1024));
    for i in 0..count {
        let mut tag = [0u8; 8];
        reader
            .read_exact(&mut tag)
            .map_err(|e| framing_error(e, &format!("tag of section {i}")))?;
        let mut len_buf = [0u8; 8];
        reader
            .read_exact(&mut len_buf)
            .map_err(|e| framing_error(e, &format!("length of section {i}")))?;
        let len = u64::from_le_bytes(len_buf);
        // Read through `take` into a growable buffer rather than
        // pre-allocating `len` bytes: a corrupted length field then fails
        // with MalformedFile below instead of aborting on a huge allocation.
        let mut payload = Vec::new();
        let took = reader.by_ref().take(len).read_to_end(&mut payload)?;
        if (took as u64) < len {
            return Err(Error::MalformedFile(format!(
                "truncated payload of section {i}: {took} of {len} bytes"
            )));
        }
        sections.push(Section { tag, payload });
    }
    Ok(sections)
}

/// Encodes a [`VectorSet`] with the native format into an in-memory buffer,
/// the canonical payload encoding for matrix-valued sections.
pub fn vector_set_to_bytes(data: &VectorSet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + data.as_flat().len() * 4);
    write_native_to(&mut buf, data).expect("in-memory write cannot fail");
    buf
}

/// Decodes a [`VectorSet`] from a native-format section payload.
///
/// # Errors
///
/// Returns [`Error::MalformedFile`] on truncated or trailing bytes.
pub fn vector_set_from_bytes(bytes: &[u8]) -> Result<VectorSet> {
    let mut cursor = std::io::Cursor::new(bytes);
    let set = read_native_from(&mut cursor)?;
    if cursor.position() != bytes.len() as u64 {
        return Err(Error::MalformedFile(format!(
            "{} trailing bytes after the vector-set payload",
            bytes.len() as u64 - cursor.position()
        )));
    }
    Ok(set)
}

enum ReadStatus {
    Full,
    Eof,
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF (no bytes at
/// all) from a truncated record (some but not all bytes).
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(ReadStatus::Eof);
            }
            return Err(Error::MalformedFile(
                "unexpected end of file inside a record header".into(),
            ));
        }
        filled += n;
    }
    Ok(ReadStatus::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![-1.0, 0.5, 0.25, 8.0],
            vec![0.0, 0.0, 0.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn fvecs_round_trip() {
        let vs = sample();
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        // each record: 4 bytes dim + 4*4 bytes payload
        assert_eq!(buf.len(), 3 * (4 + 16));
        let back = read_fvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn fvecs_rejects_truncated() {
        let vs = sample();
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_fvecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, Error::MalformedFile(_)));
    }

    #[test]
    fn fvecs_rejects_inconsistent_dim() {
        let mut buf = Vec::new();
        // record of dim 2 then a record of dim 3
        buf.extend(2i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        buf.extend(3i32.to_le_bytes());
        buf.extend([0u8; 12]);
        assert!(matches!(
            read_fvecs_from(Cursor::new(buf)).unwrap_err(),
            Error::MalformedFile(_)
        ));
    }

    #[test]
    fn fvecs_rejects_empty() {
        let err = read_fvecs_from(Cursor::new(Vec::new())).unwrap_err();
        assert!(matches!(err, Error::EmptyInput(_)));
    }

    #[test]
    fn ivecs_round_trip() {
        let rows = vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]];
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).unwrap();
        let back = read_ivecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn ivecs_allows_empty_file() {
        let back = read_ivecs_from(Cursor::new(Vec::new())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bvecs_widens_bytes() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend([10u8, 200u8]);
        buf.extend(2i32.to_le_bytes());
        buf.extend([0u8, 255u8]);
        let vs = read_bvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.row(0), &[10.0, 200.0]);
        assert_eq!(vs.row(1), &[0.0, 255.0]);
    }

    #[test]
    fn native_round_trip() {
        let vs = sample();
        let mut buf = Vec::new();
        write_native_to(&mut buf, &vs).unwrap();
        assert_eq!(buf.len(), 16 + 3 * 4 * 4);
        let back = read_native_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn native_rejects_truncation() {
        let vs = sample();
        let mut buf = Vec::new();
        write_native_to(&mut buf, &vs).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_native_from(Cursor::new(buf)).is_err());
    }

    #[test]
    fn bvecs_round_trip_and_validation() {
        let vs = VectorSet::from_rows(vec![vec![0.0, 255.0, 17.0], vec![3.0, 4.0, 5.0]]).unwrap();
        let mut buf = Vec::new();
        write_bvecs_to(&mut buf, &vs).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3));
        assert_eq!(read_bvecs_from(Cursor::new(buf)).unwrap(), vs);

        let bad = VectorSet::from_rows(vec![vec![0.5, 1.0]]).unwrap();
        assert!(matches!(
            write_bvecs_to(Vec::new(), &bad).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        let out_of_range = VectorSet::from_rows(vec![vec![256.0, 1.0]]).unwrap();
        assert!(write_bvecs_to(Vec::new(), &out_of_range).is_err());
    }

    #[test]
    fn sections_round_trip_preserving_order_and_duplicates() {
        let sections = vec![
            Section::new("CENTROID", vector_set_to_bytes(&sample())),
            Section::new("EMPTY", Vec::new()),
            Section::new("EMPTY", vec![1, 2, 3]),
        ];
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        let back = read_sections_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, sections);
        assert!(back[0].has_tag("CENTROID"));
        assert!(back[1].has_tag("EMPTY") && back[2].has_tag("EMPTY"));
        assert_eq!(vector_set_from_bytes(&back[0].payload).unwrap(), sample());
    }

    #[test]
    fn sections_allow_zero_sections() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[]).unwrap();
        assert!(read_sections_from(Cursor::new(buf)).unwrap().is_empty());
    }

    #[test]
    fn sections_reject_bad_magic_version_and_truncation() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[Section::new("X", vec![9; 32])]).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'!';
        assert!(matches!(
            read_sections_from(Cursor::new(bad_magic)).unwrap_err(),
            Error::MalformedFile(_)
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 0xfe;
        assert!(read_sections_from(Cursor::new(bad_version)).is_err());

        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 5);
        assert!(read_sections_from(Cursor::new(truncated)).is_err());
    }

    #[test]
    fn vector_set_bytes_reject_trailing_garbage() {
        let mut bytes = vector_set_to_bytes(&sample());
        bytes.push(0);
        assert!(matches!(
            vector_set_from_bytes(&bytes).unwrap_err(),
            Error::MalformedFile(_)
        ));
    }

    #[test]
    fn vector_set_bytes_round_trip_empty_set() {
        let empty = VectorSet::zeros(0, 5).unwrap();
        let bytes = vector_set_to_bytes(&empty);
        let back = vector_set_from_bytes(&bytes).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.dim(), 5);
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("vecstore-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vs = sample();
        let fpath = dir.join("x.fvecs");
        write_fvecs(&fpath, &vs).unwrap();
        assert_eq!(read_fvecs(&fpath).unwrap(), vs);
        let npath = dir.join("x.gkm");
        write_native(&npath, &vs).unwrap();
        assert_eq!(read_native(&npath).unwrap(), vs);
        std::fs::remove_dir_all(&dir).ok();
    }
}
