//! Readers/writers for the TexMex vector formats and a native binary format.
//!
//! The paper's datasets (SIFT1M, GIST1M, …, Tab. 1) are distributed in the
//! `fvecs`/`ivecs`/`bvecs` formats: each record is a little-endian `i32`
//! dimensionality followed by `d` components (`f32`, `i32` or `u8`
//! respectively).  The harness uses these readers when real datasets are
//! available and the synthetic generators otherwise; the writers make the
//! synthetic workloads exportable so they can be compared against the
//! original C++ implementation.
//!
//! On top of the flat record formats this module provides a **chunked
//! container** ([`write_sections_to`] / [`read_sections_from`]): a
//! magic/version header followed by tagged, length-prefixed sections.
//! Composite on-disk artefacts — the IVF serving index is the first — store
//! each constituent (centroid matrix, list offsets, id remap, vector panels)
//! as its own section, so readers can validate shapes section by section and
//! future fields extend the format without breaking old readers' framing.
//!
//! # Durability (GKSC v2)
//!
//! Version 2 of the container makes the framing *corruption-proof*: the
//! 16-byte header is followed by its CRC-32C, and every section carries a
//! trailing CRC-32C over its tag, length field and payload, so every byte of
//! a v2 file is covered by some checksum.  The reader validates each declared
//! length against the bytes actually remaining **before** allocating, and all
//! failures surface as the typed [`StoreError`] taxonomy (section tag + byte
//! offset) rather than strings or panics.  Version 1 (unchecksummed) files
//! still load through the lenient readers; [`read_sections_strict_from`]
//! rejects them with [`StoreError::Unchecksummed`].  [`atomic_write`] is the
//! companion save protocol: temp file + fsync + rename, so a crash mid-save
//! leaves the previous artefact loadable.
//!
//! [`vector_set_to_bytes`] / [`vector_set_from_bytes`] round-trip a
//! [`VectorSet`] through the native encoding for use as a section payload.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use crate::checksum::{crc32c, crc32c_append};
use crate::error::{Error, Result, StoreError};
use crate::matrix::VectorSet;

/// Reads an `fvecs` file into a [`VectorSet`].
///
/// # Errors
///
/// Returns [`Error::MalformedFile`] on truncated records or inconsistent
/// dimensionality, and [`Error::Io`] for underlying I/O failures.
pub fn read_fvecs(path: impl AsRef<Path>) -> Result<VectorSet> {
    let file = File::open(path)?;
    read_fvecs_from(BufReader::new(file))
}

/// Reads `fvecs` records from an arbitrary reader.
pub fn read_fvecs_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(Error::MalformedFile(format!(
                    "inconsistent dimensionality: {existing} then {d}"
                )));
            }
            Some(_) => {}
        }
        let mut record = vec![0u8; d * 4];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated fvecs record: {e}")))?;
        for chunk in record.chunks_exact(4) {
            data.push(f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
    }
    let dim = dim.ok_or(Error::EmptyInput("fvecs file holds no records"))?;
    VectorSet::from_flat(data, dim)
}

/// Writes a [`VectorSet`] in the `fvecs` format.
pub fn write_fvecs(path: impl AsRef<Path>, data: &VectorSet) -> Result<()> {
    let file = File::create(path)?;
    write_fvecs_to(BufWriter::new(file), data)
}

/// Writes `fvecs` records to an arbitrary writer.
pub fn write_fvecs_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    let dim = data.dim() as i32;
    for row in data.rows() {
        writer.write_all(&dim.to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads an `ivecs` file (used by TexMex for ground-truth neighbour lists).
///
/// Returns one `Vec<i32>` per record; records may have differing lengths in
/// principle but ground-truth files are rectangular.
pub fn read_ivecs(path: impl AsRef<Path>) -> Result<Vec<Vec<i32>>> {
    let file = File::open(path)?;
    read_ivecs_from(BufReader::new(file))
}

/// Reads `ivecs` records from an arbitrary reader.
pub fn read_ivecs_from(mut reader: impl Read) -> Result<Vec<Vec<i32>>> {
    let mut out = Vec::new();
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        let mut record = vec![0u8; d * 4];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated ivecs record: {e}")))?;
        let row = record
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        out.push(row);
    }
    Ok(out)
}

/// Writes `ivecs` records.
pub fn write_ivecs_to(mut writer: impl Write, rows: &[Vec<i32>]) -> Result<()> {
    for row in rows {
        let d = row.len() as i32;
        writer.write_all(&d.to_le_bytes())?;
        for &v in row {
            writer.write_all(&v.to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// Reads a `bvecs` file (byte-quantised descriptors, e.g. SIFT1B subsets),
/// widening each component to `f32`.
pub fn read_bvecs_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut data: Vec<f32> = Vec::new();
    let mut dim: Option<usize> = None;
    loop {
        let mut dim_buf = [0u8; 4];
        match read_exact_or_eof(&mut reader, &mut dim_buf)? {
            ReadStatus::Eof => break,
            ReadStatus::Full => {}
        }
        let d = i32::from_le_bytes(dim_buf);
        if d <= 0 {
            return Err(Error::MalformedFile(format!(
                "non-positive record dimensionality {d}"
            )));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(Error::MalformedFile(format!(
                    "inconsistent dimensionality: {existing} then {d}"
                )));
            }
            Some(_) => {}
        }
        let mut record = vec![0u8; d];
        reader
            .read_exact(&mut record)
            .map_err(|e| Error::MalformedFile(format!("truncated bvecs record: {e}")))?;
        data.extend(record.iter().map(|&b| f32::from(b)));
    }
    let dim = dim.ok_or(Error::EmptyInput("bvecs file holds no records"))?;
    VectorSet::from_flat(data, dim)
}

/// Writes `bvecs` records (byte-quantised descriptors).
///
/// The inverse of [`read_bvecs_from`]: every component must already be an
/// integer in `0..=255` (the widened form the reader produces), otherwise the
/// set is not representable in the format.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when a component is not a `u8`-exact
/// value, and [`Error::Io`] for underlying I/O failures.
pub fn write_bvecs_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    let dim = data.dim() as i32;
    let mut record = vec![0u8; data.dim()];
    for (i, row) in data.rows().enumerate() {
        for (slot, &v) in record.iter_mut().zip(row) {
            if !(0.0..=255.0).contains(&v) || v.fract() != 0.0 {
                return Err(Error::InvalidParameter(format!(
                    "bvecs component {v} of row {i} is not an integer in 0..=255"
                )));
            }
            *slot = v as u8;
        }
        writer.write_all(&dim.to_le_bytes())?;
        writer.write_all(&record)?;
    }
    writer.flush()?;
    Ok(())
}

/// Native compact binary format: `u64 n`, `u64 d`, then `n·d` little-endian
/// `f32` values.  Roughly 4 bytes/component with an 16-byte header, used by
/// the harness to cache generated workloads between runs.
pub fn write_native(path: impl AsRef<Path>, data: &VectorSet) -> Result<()> {
    let file = File::create(path)?;
    write_native_to(BufWriter::new(file), data)
}

/// Writes the native format to an arbitrary writer.
pub fn write_native_to(mut writer: impl Write, data: &VectorSet) -> Result<()> {
    writer.write_all(&(data.len() as u64).to_le_bytes())?;
    writer.write_all(&(data.dim() as u64).to_le_bytes())?;
    for &v in data.as_flat() {
        writer.write_all(&v.to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads the native format produced by [`write_native`].
pub fn read_native(path: impl AsRef<Path>) -> Result<VectorSet> {
    let file = File::open(path)?;
    read_native_from(BufReader::new(file))
}

/// Reads the native format from an arbitrary reader.
///
/// The `n·d·4` payload size is computed with checked arithmetic and the
/// payload is read through `take` into a growable buffer, so a corrupt header
/// fails with [`Error::MalformedFile`] instead of overflowing or aborting on
/// a huge up-front allocation.
pub fn read_native_from(mut reader: impl Read) -> Result<VectorSet> {
    let mut header = [0u8; 16];
    reader
        .read_exact(&mut header)
        .map_err(|e| Error::MalformedFile(format!("truncated native header: {e}")))?;
    let n = le_u64(&header[0..8]);
    let d = le_u64(&header[8..16]);
    if d == 0 {
        return Err(Error::MalformedFile("zero dimensionality".into()));
    }
    let total = n
        .checked_mul(d)
        .and_then(|c| c.checked_mul(4))
        .filter(|&c| c <= MAX_SECTION_BYTES)
        .ok_or_else(|| {
            Error::MalformedFile(format!("native header declares an absurd size {n}×{d}"))
        })?;
    let mut payload = Vec::new();
    let took = reader.by_ref().take(total).read_to_end(&mut payload)? as u64;
    if took < total {
        return Err(Error::MalformedFile(format!(
            "truncated native payload: {took} of {total} bytes"
        )));
    }
    let data = payload
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    VectorSet::from_flat(data, d as usize)
}

/// Magic bytes opening a chunked (sectioned) container file.
pub const SECTION_MAGIC: [u8; 4] = *b"GKSC";

/// Current version of the chunked container framing (checksummed).
pub const SECTION_VERSION: u32 = 2;

/// Legacy unchecksummed container version, still accepted by the lenient
/// readers.
pub const SECTION_VERSION_V1: u32 = 1;

/// Sanity bound on the section count a header may declare.  A count above
/// this is a corrupt field, not a big file.
pub const MAX_SECTIONS: u64 = 1 << 20;

/// Sanity bound on a single declared payload length (1 TiB).  A length above
/// this is a corrupt field, not a big section.
pub const MAX_SECTION_BYTES: u64 = 1 << 40;

/// One tagged, length-prefixed chunk of a sectioned container.
///
/// The tag is a fixed 8-byte field (short ASCII names padded with spaces);
/// the payload is opaque to the framing layer — composite formats such as the
/// IVF index define their own payload encodings per tag (typically the native
/// [`VectorSet`] encoding via [`vector_set_to_bytes`], or packed
/// little-endian integers).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Section {
    /// 8-byte section tag (space-padded ASCII by convention).
    pub tag: [u8; 8],
    /// Raw section payload.
    pub payload: Vec<u8>,
}

impl Section {
    /// Creates a section, space-padding `tag` to 8 bytes.
    ///
    /// # Panics
    ///
    /// Panics when `tag` is longer than 8 bytes — tags are compile-time
    /// constants of the composite format, so a long tag is a programming
    /// error, not an input error.
    pub fn new(tag: &str, payload: Vec<u8>) -> Self {
        assert!(tag.len() <= 8, "section tag `{tag}` exceeds 8 bytes");
        let mut t = [b' '; 8];
        t[..tag.len()].copy_from_slice(tag.as_bytes());
        Self { tag: t, payload }
    }

    /// `true` when this section carries the (space-padded) tag `tag`.
    pub fn has_tag(&self, tag: &str) -> bool {
        Self::new(tag, Vec::new()).tag == self.tag
    }
}

/// Human-readable name of a section tag for error reporting: the
/// space-trimmed lossy-UTF-8 form, or `(untagged)` when blank.
pub fn tag_name(tag: &[u8; 8]) -> String {
    let name = String::from_utf8_lossy(tag).trim_end().to_string();
    if name.is_empty() {
        "(untagged)".to_string()
    } else {
        name
    }
}

/// Writes a checksummed (v2) chunked container: [`SECTION_MAGIC`],
/// [`SECTION_VERSION`], the section count, the CRC-32C of those 16 header
/// bytes, then each section as `tag (8 bytes) · payload length (u64) ·
/// payload · CRC-32C of the preceding tag‖length‖payload`.  Every byte of the
/// file is covered by exactly one checksum.
pub fn write_sections_to(mut writer: impl Write, sections: &[Section]) -> Result<()> {
    let mut header = [0u8; 16];
    header[0..4].copy_from_slice(&SECTION_MAGIC);
    header[4..8].copy_from_slice(&SECTION_VERSION.to_le_bytes());
    header[8..16].copy_from_slice(&(sections.len() as u64).to_le_bytes());
    writer.write_all(&header)?;
    writer.write_all(&crc32c(&header).to_le_bytes())?;
    for section in sections {
        let len = (section.payload.len() as u64).to_le_bytes();
        let mut state = !0u32;
        state = crc32c_append(state, &section.tag);
        state = crc32c_append(state, &len);
        state = crc32c_append(state, &section.payload);
        writer.write_all(&section.tag)?;
        writer.write_all(&len)?;
        writer.write_all(&section.payload)?;
        writer.write_all(&(state ^ !0u32).to_le_bytes())?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes the legacy unchecksummed (v1) framing.  Kept for compatibility
/// tests and for benchmarking the checksummed reader against the v1 baseline;
/// new artefacts should use [`write_sections_to`].
pub fn write_sections_v1_to(mut writer: impl Write, sections: &[Section]) -> Result<()> {
    writer.write_all(&SECTION_MAGIC)?;
    writer.write_all(&SECTION_VERSION_V1.to_le_bytes())?;
    writer.write_all(&(sections.len() as u64).to_le_bytes())?;
    for section in sections {
        writer.write_all(&section.tag)?;
        writer.write_all(&(section.payload.len() as u64).to_le_bytes())?;
        writer.write_all(&section.payload)?;
    }
    writer.flush()?;
    Ok(())
}

/// Reads a chunked container (v1 or v2), returning the sections in file
/// order (duplicate tags are preserved; consumers decide their semantics).
///
/// v2 files have every checksum verified; v1 files load without checksums
/// (use [`read_sections_strict_from`] to reject them).  Declared lengths are
/// validated against the bytes actually present *before* any allocation, so
/// a corrupt length field yields [`StoreError::Truncated`] or
/// [`StoreError::Oversized`] rather than an OOM abort.
///
/// # Errors
///
/// Returns [`Error::Store`] with the precise [`StoreError`] corruption class
/// (section tag + byte offset), and [`Error::Io`] for underlying I/O
/// failures.
pub fn read_sections_from(reader: impl Read) -> Result<Vec<Section>> {
    read_sections_impl(reader, false)
}

/// Like [`read_sections_from`], but rejects unchecksummed (v1) files with
/// [`StoreError::Unchecksummed`].  Use for `--strict` verification paths
/// where silent bit-rot must be ruled out.
pub fn read_sections_strict_from(reader: impl Read) -> Result<Vec<Section>> {
    read_sections_impl(reader, true)
}

fn read_sections_impl(mut reader: impl Read, strict: bool) -> Result<Vec<Section>> {
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf)?;
    parse_sections(&buf, strict)
}

fn le_u32(bytes: &[u8]) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&bytes[..4]);
    u32::from_le_bytes(a)
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(a)
}

fn parse_sections(buf: &[u8], strict: bool) -> Result<Vec<Section>> {
    if buf.len() >= 4 && buf[0..4] != SECTION_MAGIC {
        return Err(StoreError::BadMagic {
            found: [buf[0], buf[1], buf[2], buf[3]],
        }
        .into());
    }
    if buf.len() < 16 {
        return Err(StoreError::Truncated {
            section: "header".into(),
            offset: 0,
            needed: 16,
            available: buf.len() as u64,
        }
        .into());
    }
    let version = le_u32(&buf[4..8]);
    let count = le_u64(&buf[8..16]);
    let (mut pos, checksummed) = match version {
        SECTION_VERSION_V1 => {
            if strict {
                return Err(StoreError::Unchecksummed { version }.into());
            }
            (16usize, false)
        }
        SECTION_VERSION => {
            if buf.len() < 20 {
                return Err(StoreError::Truncated {
                    section: "header".into(),
                    offset: 16,
                    needed: 4,
                    available: (buf.len() - 16) as u64,
                }
                .into());
            }
            let stored = le_u32(&buf[16..20]);
            let computed = crc32c(&buf[0..16]);
            if stored != computed {
                return Err(StoreError::ChecksumMismatch {
                    section: "header".into(),
                    offset: 16,
                    stored,
                    computed,
                }
                .into());
            }
            (20usize, true)
        }
        other => {
            return Err(StoreError::UnsupportedVersion {
                found: other,
                max_supported: SECTION_VERSION,
            }
            .into());
        }
    };
    if count > MAX_SECTIONS {
        return Err(StoreError::Oversized {
            section: "header".into(),
            offset: 8,
            declared: count,
            limit: MAX_SECTIONS,
        }
        .into());
    }
    // Each section needs at least its fixed framing; checking the count
    // against the remaining bytes up front bounds the `with_capacity` below.
    let min_per_section = if checksummed { 20u64 } else { 16u64 };
    let remaining = (buf.len() - pos) as u64;
    if count.saturating_mul(min_per_section) > remaining {
        return Err(StoreError::Truncated {
            section: "header".into(),
            offset: pos as u64,
            needed: count.saturating_mul(min_per_section),
            available: remaining,
        }
        .into());
    }
    let mut sections = Vec::with_capacity(count as usize);
    for i in 0..count {
        let sec_start = pos;
        let avail = (buf.len() - pos) as u64;
        if avail < 16 {
            return Err(StoreError::Truncated {
                section: format!("section {i}"),
                offset: pos as u64,
                needed: 16,
                available: avail,
            }
            .into());
        }
        let mut tag = [0u8; 8];
        tag.copy_from_slice(&buf[pos..pos + 8]);
        let len = le_u64(&buf[pos + 8..pos + 16]);
        let name = tag_name(&tag);
        if len > MAX_SECTION_BYTES {
            return Err(StoreError::Oversized {
                section: name,
                offset: (pos + 8) as u64,
                declared: len,
                limit: MAX_SECTION_BYTES,
            }
            .into());
        }
        let body_start = pos + 16;
        let after = (buf.len() - body_start) as u64;
        let needed = len + if checksummed { 4 } else { 0 };
        if needed > after {
            return Err(StoreError::Truncated {
                section: name,
                offset: body_start as u64,
                needed,
                available: after,
            }
            .into());
        }
        let payload_end = body_start + len as usize;
        let payload = buf[body_start..payload_end].to_vec();
        pos = payload_end;
        if checksummed {
            let stored = le_u32(&buf[pos..pos + 4]);
            let computed = crc32c(&buf[sec_start..payload_end]);
            if stored != computed {
                return Err(StoreError::ChecksumMismatch {
                    section: name,
                    offset: pos as u64,
                    stored,
                    computed,
                }
                .into());
            }
            pos += 4;
        }
        sections.push(Section { tag, payload });
    }
    if pos != buf.len() {
        return Err(StoreError::Invariant {
            section: "container".into(),
            detail: format!("{} trailing bytes after the last section", buf.len() - pos),
        }
        .into());
    }
    Ok(sections)
}

/// Writes `path` atomically: the content goes to a temp file in the same
/// directory, is flushed and fsynced, and is then renamed over `path`
/// (followed by a best-effort directory fsync so the rename itself is
/// durable).  A crash — or an error from `write_fn` — at any point leaves
/// the previous `path` untouched and loadable; the temp file is removed on
/// failure.
pub fn atomic_write(
    path: impl AsRef<Path>,
    write_fn: impl FnOnce(&mut BufWriter<File>) -> Result<()>,
) -> Result<()> {
    let path = path.as_ref();
    let file_name = path
        .file_name()
        .ok_or_else(|| Error::InvalidParameter(format!("`{}` has no file name", path.display())))?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let write_result = (|| -> Result<()> {
        let file = File::create(&tmp)?;
        let mut writer = BufWriter::new(file);
        write_fn(&mut writer)?;
        writer.flush()?;
        writer.get_ref().sync_all()?;
        Ok(())
    })();
    if let Err(e) = write_result {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(Error::Io(e));
    }
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Encodes a [`VectorSet`] with the native format into an in-memory buffer,
/// the canonical payload encoding for matrix-valued sections.
pub fn vector_set_to_bytes(data: &VectorSet) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16 + data.as_flat().len() * 4);
    buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
    buf.extend_from_slice(&(data.dim() as u64).to_le_bytes());
    for &v in data.as_flat() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Decodes a [`VectorSet`] from a native-format section payload.
///
/// # Errors
///
/// Returns [`Error::MalformedFile`] on truncated or trailing bytes.
pub fn vector_set_from_bytes(bytes: &[u8]) -> Result<VectorSet> {
    let mut cursor = std::io::Cursor::new(bytes);
    let set = read_native_from(&mut cursor)?;
    if cursor.position() != bytes.len() as u64 {
        return Err(Error::MalformedFile(format!(
            "{} trailing bytes after the vector-set payload",
            bytes.len() as u64 - cursor.position()
        )));
    }
    Ok(set)
}

enum ReadStatus {
    Full,
    Eof,
}

/// Reads exactly `buf.len()` bytes, distinguishing a clean EOF (no bytes at
/// all) from a truncated record (some but not all bytes).
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<ReadStatus> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = reader.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(ReadStatus::Eof);
            }
            return Err(Error::MalformedFile(
                "unexpected end of file inside a record header".into(),
            ));
        }
        filled += n;
    }
    Ok(ReadStatus::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![-1.0, 0.5, 0.25, 8.0],
            vec![0.0, 0.0, 0.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn fvecs_round_trip() {
        let vs = sample();
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        // each record: 4 bytes dim + 4*4 bytes payload
        assert_eq!(buf.len(), 3 * (4 + 16));
        let back = read_fvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn fvecs_rejects_truncated() {
        let vs = sample();
        let mut buf = Vec::new();
        write_fvecs_to(&mut buf, &vs).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_fvecs_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, Error::MalformedFile(_)));
    }

    #[test]
    fn fvecs_rejects_inconsistent_dim() {
        let mut buf = Vec::new();
        // record of dim 2 then a record of dim 3
        buf.extend(2i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        buf.extend(3i32.to_le_bytes());
        buf.extend([0u8; 12]);
        assert!(matches!(
            read_fvecs_from(Cursor::new(buf)).unwrap_err(),
            Error::MalformedFile(_)
        ));
    }

    #[test]
    fn fvecs_rejects_empty() {
        let err = read_fvecs_from(Cursor::new(Vec::new())).unwrap_err();
        assert!(matches!(err, Error::EmptyInput(_)));
    }

    #[test]
    fn ivecs_round_trip() {
        let rows = vec![vec![3, 1, 4], vec![1, 5, 9], vec![2, 6, 5]];
        let mut buf = Vec::new();
        write_ivecs_to(&mut buf, &rows).unwrap();
        let back = read_ivecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn ivecs_allows_empty_file() {
        let back = read_ivecs_from(Cursor::new(Vec::new())).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bvecs_widens_bytes() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend([10u8, 200u8]);
        buf.extend(2i32.to_le_bytes());
        buf.extend([0u8, 255u8]);
        let vs = read_bvecs_from(Cursor::new(buf)).unwrap();
        assert_eq!(vs.len(), 2);
        assert_eq!(vs.row(0), &[10.0, 200.0]);
        assert_eq!(vs.row(1), &[0.0, 255.0]);
    }

    #[test]
    fn native_round_trip() {
        let vs = sample();
        let mut buf = Vec::new();
        write_native_to(&mut buf, &vs).unwrap();
        assert_eq!(buf.len(), 16 + 3 * 4 * 4);
        let back = read_native_from(Cursor::new(buf)).unwrap();
        assert_eq!(back, vs);
    }

    #[test]
    fn native_rejects_truncation() {
        let vs = sample();
        let mut buf = Vec::new();
        write_native_to(&mut buf, &vs).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(read_native_from(Cursor::new(buf)).is_err());
    }

    #[test]
    fn native_rejects_absurd_header_without_allocating() {
        let mut buf = Vec::new();
        buf.extend(u64::MAX.to_le_bytes()); // n
        buf.extend(8u64.to_le_bytes()); // d → n·d·4 overflows
        let err = read_native_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, Error::MalformedFile(_)));

        let mut buf = Vec::new();
        buf.extend((MAX_SECTION_BYTES / 4).to_le_bytes()); // n·d·4 > limit
        buf.extend(2u64.to_le_bytes());
        let err = read_native_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, Error::MalformedFile(_)));
    }

    #[test]
    fn bvecs_round_trip_and_validation() {
        let vs = VectorSet::from_rows(vec![vec![0.0, 255.0, 17.0], vec![3.0, 4.0, 5.0]]).unwrap();
        let mut buf = Vec::new();
        write_bvecs_to(&mut buf, &vs).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3));
        assert_eq!(read_bvecs_from(Cursor::new(buf)).unwrap(), vs);

        let bad = VectorSet::from_rows(vec![vec![0.5, 1.0]]).unwrap();
        assert!(matches!(
            write_bvecs_to(Vec::new(), &bad).unwrap_err(),
            Error::InvalidParameter(_)
        ));
        let out_of_range = VectorSet::from_rows(vec![vec![256.0, 1.0]]).unwrap();
        assert!(write_bvecs_to(Vec::new(), &out_of_range).is_err());
    }

    #[test]
    fn sections_round_trip_preserving_order_and_duplicates() {
        let sections = vec![
            Section::new("CENTROID", vector_set_to_bytes(&sample())),
            Section::new("EMPTY", Vec::new()),
            Section::new("EMPTY", vec![1, 2, 3]),
        ];
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        let back = read_sections_from(Cursor::new(buf.clone())).unwrap();
        assert_eq!(back, sections);
        assert!(back[0].has_tag("CENTROID"));
        assert!(back[1].has_tag("EMPTY") && back[2].has_tag("EMPTY"));
        assert_eq!(vector_set_from_bytes(&back[0].payload).unwrap(), sample());
        // v2 files also pass strict loading.
        assert_eq!(
            read_sections_strict_from(Cursor::new(buf)).unwrap(),
            sections
        );
    }

    #[test]
    fn sections_allow_zero_sections() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[]).unwrap();
        assert!(read_sections_from(Cursor::new(buf)).unwrap().is_empty());
    }

    #[test]
    fn v1_sections_load_leniently_but_fail_strict() {
        let sections = vec![Section::new("LEGACY", vec![1, 2, 3, 4, 5])];
        let mut buf = Vec::new();
        write_sections_v1_to(&mut buf, &sections).unwrap();
        assert_eq!(
            read_sections_from(Cursor::new(buf.clone())).unwrap(),
            sections
        );
        let err = read_sections_strict_from(Cursor::new(buf)).unwrap_err();
        assert!(matches!(
            err,
            Error::Store(StoreError::Unchecksummed { version: 1 })
        ));
    }

    #[test]
    fn sections_reject_bad_magic_version_and_truncation() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[Section::new("X", vec![9; 32])]).unwrap();

        let mut bad_magic = buf.clone();
        bad_magic[0] = b'!';
        assert!(matches!(
            read_sections_from(Cursor::new(bad_magic)).unwrap_err(),
            Error::Store(StoreError::BadMagic { .. })
        ));

        let mut bad_version = buf.clone();
        bad_version[4] = 0xfe;
        // The header checksum is computed over the version field, so a
        // version flip in a v2 file surfaces as either error class.
        assert!(matches!(
            read_sections_from(Cursor::new(bad_version)).unwrap_err(),
            Error::Store(
                StoreError::UnsupportedVersion { .. } | StoreError::ChecksumMismatch { .. }
            )
        ));

        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 5);
        assert!(matches!(
            read_sections_from(Cursor::new(truncated)).unwrap_err(),
            Error::Store(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn sections_detect_payload_and_header_bit_flips() {
        let sections = vec![Section::new("DATA", (0u8..64).collect())];
        let mut clean = Vec::new();
        write_sections_to(&mut clean, &sections).unwrap();

        // Flip a payload bit → section checksum mismatch.
        let mut corrupt = clean.clone();
        let payload_byte = clean.len() - 10;
        corrupt[payload_byte] ^= 0x01;
        assert!(matches!(
            read_sections_from(Cursor::new(corrupt)).unwrap_err(),
            Error::Store(StoreError::ChecksumMismatch { .. })
        ));

        // Flip a header count bit → header checksum mismatch.
        let mut corrupt = clean.clone();
        corrupt[8] ^= 0x01;
        assert!(matches!(
            read_sections_from(Cursor::new(corrupt)).unwrap_err(),
            Error::Store(StoreError::ChecksumMismatch { section, .. }) if section == "header"
        ));
    }

    #[test]
    fn sections_reject_oversized_length_field_without_allocating() {
        let sections = vec![Section::new("DATA", vec![7; 16])];
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &sections).unwrap();
        // Overwrite the section length (8 bytes at offset 20+8) with u64::MAX.
        buf[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_sections_from(Cursor::new(buf)).unwrap_err(),
            Error::Store(StoreError::Oversized { .. })
        ));
    }

    #[test]
    fn sections_reject_plausible_but_too_large_length_as_truncated() {
        let sections = vec![Section::new("DATA", vec![7; 16])];
        let mut buf = Vec::new();
        write_sections_v1_to(&mut buf, &sections).unwrap();
        // A length within the sanity bound but beyond the file must be
        // reported as truncation, before any allocation of that size.
        buf[24..32].copy_from_slice(&(1u64 << 30).to_le_bytes());
        assert!(matches!(
            read_sections_from(Cursor::new(buf)).unwrap_err(),
            Error::Store(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn sections_reject_trailing_garbage() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[Section::new("X", vec![1, 2, 3])]).unwrap();
        buf.extend_from_slice(&[0xAA; 7]);
        assert!(matches!(
            read_sections_from(Cursor::new(buf)).unwrap_err(),
            Error::Store(StoreError::Invariant { .. })
        ));
    }

    #[test]
    fn sections_reject_future_version() {
        let mut buf = Vec::new();
        write_sections_to(&mut buf, &[]).unwrap();
        buf[4..8].copy_from_slice(&3u32.to_le_bytes());
        // Re-stamp the header CRC so the version check itself is exercised.
        let crc = crc32c(&buf[0..16]);
        buf[16..20].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            read_sections_from(Cursor::new(buf)).unwrap_err(),
            Error::Store(StoreError::UnsupportedVersion {
                found: 3,
                max_supported: SECTION_VERSION
            })
        ));
    }

    #[test]
    fn tag_name_trims_and_handles_blank() {
        assert_eq!(tag_name(&Section::new("IVFOFFS", vec![]).tag), "IVFOFFS");
        assert_eq!(tag_name(&[b' '; 8]), "(untagged)");
    }

    #[test]
    fn vector_set_bytes_reject_trailing_garbage() {
        let mut bytes = vector_set_to_bytes(&sample());
        bytes.push(0);
        assert!(matches!(
            vector_set_from_bytes(&bytes).unwrap_err(),
            Error::MalformedFile(_)
        ));
    }

    #[test]
    fn vector_set_bytes_round_trip_empty_set() {
        let empty = VectorSet::zeros(0, 5).unwrap();
        let bytes = vector_set_to_bytes(&empty);
        let back = vector_set_from_bytes(&bytes).unwrap();
        assert_eq!(back, empty);
        assert_eq!(back.dim(), 5);
    }

    #[test]
    fn file_round_trip_via_tempdir() {
        let dir = std::env::temp_dir().join(format!("vecstore-io-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vs = sample();
        let fpath = dir.join("x.fvecs");
        write_fvecs(&fpath, &vs).unwrap();
        assert_eq!(read_fvecs(&fpath).unwrap(), vs);
        let npath = dir.join("x.gkm");
        write_native(&npath, &vs).unwrap();
        assert_eq!(read_native(&npath).unwrap(), vs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_replaces_and_preserves_on_error() {
        let dir = std::env::temp_dir().join(format!("vecstore-atomic-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.gksc");

        // First write succeeds.
        atomic_write(&path, |w| {
            write_sections_to(w, &[Section::new("A", vec![1, 2, 3])])
        })
        .unwrap();
        let first = std::fs::read(&path).unwrap();
        assert!(read_sections_from(Cursor::new(first.clone())).is_ok());

        // Failing writer leaves the previous content untouched and no temp
        // files behind.
        let err = atomic_write(&path, |w| {
            w.write_all(b"partial garbage")?;
            Err(Error::Internal("simulated crash".into()))
        })
        .unwrap_err();
        assert!(matches!(err, Error::Internal(_)));
        assert_eq!(std::fs::read(&path).unwrap(), first);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );

        // Second successful write replaces the content.
        atomic_write(&path, |w| {
            write_sections_to(w, &[Section::new("B", vec![9; 8])])
        })
        .unwrap();
        let second = read_sections_from(Cursor::new(std::fs::read(&path).unwrap())).unwrap();
        assert!(second[0].has_tag("B"));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_rejects_pathless_target() {
        assert!(matches!(
            atomic_write(Path::new(""), |_| Ok(())).unwrap_err(),
            Error::InvalidParameter(_)
        ));
    }
}
