//! Dense vector storage and distance primitives for the GK-means reproduction.
//!
//! This crate is the lowest-level substrate shared by every other crate in the
//! workspace.  It provides:
//!
//! * [`VectorSet`] — an owned, row-major `n × d` matrix of `f32` values, the
//!   canonical in-memory representation of a descriptor collection such as
//!   SIFT1M or VLAD10M (Tab. 1 of the paper).
//! * [`distance`] — squared-Euclidean / dot-product / cosine kernels plus the
//!   [`distance::Metric`] abstraction.  All clustering algorithms in the
//!   paper operate in the ℓ² space, so squared Euclidean is the default
//!   metric throughout the workspace.
//! * [`kernels`] — the SIMD engine behind [`distance`]: runtime-dispatched
//!   AVX2+FMA / NEON / scalar implementations and the batched one-to-many
//!   API used by every hot loop.
//! * [`norms`] — pre-computed squared norms that let the assignment step use
//!   the `‖x-c‖² = ‖x‖² - 2·x·c + ‖c‖²` expansion.
//! * [`parallel`] — the deterministic block executor behind the opt-in
//!   threaded epoch engines: a persistent worker pool (spawned lazily once
//!   per process, parked between rounds) running fixed block boundaries with
//!   results merged in block order — bit-identical output at any thread
//!   count.
//! * [`io`] — readers and writers for the TexMex `fvecs`/`ivecs`/`bvecs`
//!   formats used to distribute the paper's datasets, plus a compact native
//!   binary format and the checksummed GKSC sectioned container with atomic
//!   saves; corruption surfaces as the typed [`error::StoreError`] taxonomy.
//! * [`checksum`] — hand-rolled CRC-32C (SSE4.2 / ARMv8-CRC / slicing-by-8)
//!   behind the same one-time runtime dispatch as [`kernels`].
//! * [`wal`] — the GKSL write-ahead log: CRC-32C-per-record mutation
//!   journalling with fsync-acknowledged appends, torn-tail recovery, and
//!   checkpoint truncation — the durability substrate of the mutable index.
//! * [`fault`] — fault-injection adapters ([`fault::FaultyReader`] /
//!   [`fault::FaultyWriter`]) used by the robustness test suites.
//! * [`sample`] — reproducible sub-sampling and shuffling helpers used by the
//!   workload generators and the mini-batch baseline.
//!
//! # Example
//!
//! ```
//! use vecstore::{VectorSet, distance::l2_sq};
//!
//! let data = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![3.0, 4.0]]).unwrap();
//! assert_eq!(data.len(), 2);
//! assert_eq!(data.dim(), 2);
//! assert_eq!(l2_sq(data.row(0), data.row(1)), 25.0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checksum;
pub mod distance;
pub mod error;
pub mod fault;
pub mod io;
pub mod kernels;
pub mod matrix;
pub mod norms;
pub mod parallel;
pub mod sample;
pub mod wal;

pub use distance::Metric;
pub use error::{Error, Result, StoreError};
pub use matrix::VectorSet;
pub use norms::Norms;
