//! NEON kernels for aarch64.
//!
//! Four `f32` lanes per vector with fused multiply-add (`vfmaq_f32`), four
//! independent accumulator chains (16 floats per main-loop step), a 4-lane
//! loop and a scalar tail.  NEON is architecturally guaranteed on every
//! aarch64 target Rust supports, but selection still goes through
//! `is_aarch64_feature_detected!` for symmetry with the x86 level.
//!
//! Safety model mirrors `x86.rs`: the inner `#[target_feature]` functions are
//! only reachable through the safe `*_entry` wrappers in [`KERNELS`], which
//! [`super::active`] installs only after feature detection succeeds.

#![allow(unsafe_code)]

use core::arch::aarch64::{
    vaddq_f32, vaddq_f64, vaddvq_f32, vaddvq_f64, vcvt_f64_f32, vdupq_n_f32, vdupq_n_f64,
    vfmaq_f32, vfmaq_f64, vget_high_f32, vget_low_f32, vld1q_f32, vld1q_f64, vsubq_f32,
};

use super::{DotNorms, Kernels};

#[target_feature(enable = "neon")]
unsafe fn l2_sq_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        let d2 = vsubq_f32(vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
        let d3 = vsubq_f32(vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        acc2 = vfmaq_f32(acc2, d2, d2);
        acc3 = vfmaq_f32(acc3, d3, d3);
        i += 16;
    }
    while i + 4 <= n {
        let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut total = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc2 = vfmaq_f32(acc2, vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
        acc3 = vfmaq_f32(acc3, vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
        i += 16;
    }
    while i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        i += 4;
    }
    let mut total = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
    while i < n {
        total += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn dot_f64_f32_body(a: &[f64], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        // widen four f32 lanes to two f64 pairs and fold them in
        let x = vld1q_f32(pb.add(i));
        let x_lo = vcvt_f64_f32(vget_low_f32(x));
        let x_hi = vcvt_f64_f32(vget_high_f32(x));
        acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(i)), x_lo);
        acc1 = vfmaq_f64(acc1, vld1q_f64(pa.add(i + 2)), x_hi);
        i += 4;
    }
    let mut total = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        total += *pa.add(i) * f64::from(*pb.add(i));
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn fused_dot_norms_body(a: &[f32], b: &[f32]) -> DotNorms {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut dot0 = vdupq_n_f32(0.0);
    let mut na0 = vdupq_n_f32(0.0);
    let mut nb0 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        let x = vld1q_f32(pa.add(i));
        let y = vld1q_f32(pb.add(i));
        dot0 = vfmaq_f32(dot0, x, y);
        na0 = vfmaq_f32(na0, x, x);
        nb0 = vfmaq_f32(nb0, y, y);
        i += 4;
    }
    let mut dot = vaddvq_f32(dot0);
    let mut na = vaddvq_f32(na0);
    let mut nb = vaddvq_f32(nb0);
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        dot += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    DotNorms {
        dot,
        norm_a_sq: na,
        norm_b_sq: nb,
    }
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = l2_sq_body(x, row);
    }
}

#[target_feature(enable = "neon")]
unsafe fn dot_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = dot_body(x, row);
    }
}

// Safe entry points: sound because `KERNELS` is only selected after feature
// detection (see module docs).

fn l2_sq_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_body(a, b) }
}

fn dot_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_body(a, b) }
}

fn dot_f64_f32_entry(a: &[f64], b: &[f32]) -> f64 {
    unsafe { dot_f64_f32_body(a, b) }
}

fn fused_dot_norms_entry(a: &[f32], b: &[f32]) -> DotNorms {
    unsafe { fused_dot_norms_body(a, b) }
}

fn l2_sq_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { l2_sq_one_to_many_body(x, rows, out) }
}

fn dot_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { dot_one_to_many_body(x, rows, out) }
}

/// The NEON level.
pub static KERNELS: Kernels = Kernels {
    name: "neon",
    l2_sq: l2_sq_entry,
    dot: dot_entry,
    dot_f64_f32: dot_f64_f32_entry,
    fused_dot_norms: fused_dot_norms_entry,
    l2_sq_one_to_many: l2_sq_one_to_many_entry,
    dot_one_to_many: dot_one_to_many_entry,
};
