//! NEON kernels for aarch64.
//!
//! Four `f32` lanes per vector with fused multiply-add (`vfmaq_f32`), four
//! independent accumulator chains (16 floats per main-loop step), a 4-lane
//! loop and a scalar tail.  NEON is architecturally guaranteed on every
//! aarch64 target Rust supports, but selection still goes through
//! `is_aarch64_feature_detected!` for symmetry with the x86 level.
//!
//! Safety model mirrors `x86.rs`: the inner `#[target_feature]` functions are
//! only reachable through the safe `*_entry` wrappers in [`KERNELS`], which
//! [`super::active`] installs only after feature detection succeeds.

#![allow(unsafe_code)]

use core::arch::aarch64::{
    vaddq_f32, vaddq_f64, vaddvq_f32, vaddvq_f64, vcvt_f64_f32, vcvtq_f32_u32, vdupq_n_f32,
    vdupq_n_f64, vfmaq_f32, vfmaq_f64, vfmsq_f32, vget_high_f32, vget_high_u16, vget_low_f32,
    vget_low_u16, vld1_u8, vld1q_f32, vld1q_f64, vmovl_u16, vmovl_u8, vst1q_f64, vsubq_f32,
};

use super::{DotNorms, Kernels};

#[target_feature(enable = "neon")]
unsafe fn l2_sq_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        let d0 = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        let d1 = vsubq_f32(vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        let d2 = vsubq_f32(vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
        let d3 = vsubq_f32(vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
        acc0 = vfmaq_f32(acc0, d0, d0);
        acc1 = vfmaq_f32(acc1, d1, d1);
        acc2 = vfmaq_f32(acc2, d2, d2);
        acc3 = vfmaq_f32(acc3, d3, d3);
        i += 16;
    }
    while i + 4 <= n {
        let d = vsubq_f32(vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc0 = vfmaq_f32(acc0, d, d);
        i += 4;
    }
    let mut total = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(pa.add(i + 4)), vld1q_f32(pb.add(i + 4)));
        acc2 = vfmaq_f32(acc2, vld1q_f32(pa.add(i + 8)), vld1q_f32(pb.add(i + 8)));
        acc3 = vfmaq_f32(acc3, vld1q_f32(pa.add(i + 12)), vld1q_f32(pb.add(i + 12)));
        i += 16;
    }
    while i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(pa.add(i)), vld1q_f32(pb.add(i)));
        i += 4;
    }
    let mut total = vaddvq_f32(vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3)));
    while i < n {
        total += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn dot_f64_f32_body(a: &[f64], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = vdupq_n_f64(0.0);
    let mut acc1 = vdupq_n_f64(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        // widen four f32 lanes to two f64 pairs and fold them in
        let x = vld1q_f32(pb.add(i));
        let x_lo = vcvt_f64_f32(vget_low_f32(x));
        let x_hi = vcvt_f64_f32(vget_high_f32(x));
        acc0 = vfmaq_f64(acc0, vld1q_f64(pa.add(i)), x_lo);
        acc1 = vfmaq_f64(acc1, vld1q_f64(pa.add(i + 2)), x_hi);
        i += 4;
    }
    let mut total = vaddvq_f64(vaddq_f64(acc0, acc1));
    while i < n {
        total += *pa.add(i) * f64::from(*pb.add(i));
        i += 1;
    }
    total
}

#[target_feature(enable = "neon")]
unsafe fn fused_dot_norms_body(a: &[f32], b: &[f32]) -> DotNorms {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut dot0 = vdupq_n_f32(0.0);
    let mut na0 = vdupq_n_f32(0.0);
    let mut nb0 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 4 <= n {
        let x = vld1q_f32(pa.add(i));
        let y = vld1q_f32(pb.add(i));
        dot0 = vfmaq_f32(dot0, x, y);
        na0 = vfmaq_f32(na0, x, x);
        nb0 = vfmaq_f32(nb0, y, y);
        i += 4;
    }
    let mut dot = vaddvq_f32(dot0);
    let mut na = vaddvq_f32(na0);
    let mut nb = vaddvq_f32(nb0);
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        dot += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    DotNorms {
        dot,
        norm_a_sq: na,
        norm_b_sq: nb,
    }
}

#[target_feature(enable = "neon")]
unsafe fn l2_sq_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = l2_sq_body(x, row);
    }
}

#[target_feature(enable = "neon")]
unsafe fn dot_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = dot_body(x, row);
    }
}

/// Asymmetric SQ8 distances: eight `u8` codes per step widen through
/// `vmovl_u8` → `vmovl_u16` → `vcvtq_f32_u32` into two 4-lane registers, the
/// difference `aq − scale·code` comes out of fused multiply-subtract, and the
/// square accumulates through FMA — one byte of memory traffic per value with
/// full-width `f32` arithmetic.
#[target_feature(enable = "neon")]
unsafe fn l2_sq_sq8_one_to_many_body(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    let d = aq.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let pq = aq.as_ptr();
    let ps = scales.as_ptr();
    for (slot, row) in out.iter_mut().zip(codes.chunks_exact(d)) {
        let pc = row.as_ptr();
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut i = 0usize;
        while i + 8 <= d {
            let w = vmovl_u8(vld1_u8(pc.add(i)));
            let c_lo = vcvtq_f32_u32(vmovl_u16(vget_low_u16(w)));
            let c_hi = vcvtq_f32_u32(vmovl_u16(vget_high_u16(w)));
            let d_lo = vfmsq_f32(vld1q_f32(pq.add(i)), vld1q_f32(ps.add(i)), c_lo);
            let d_hi = vfmsq_f32(vld1q_f32(pq.add(i + 4)), vld1q_f32(ps.add(i + 4)), c_hi);
            acc0 = vfmaq_f32(acc0, d_lo, d_lo);
            acc1 = vfmaq_f32(acc1, d_hi, d_hi);
            i += 8;
        }
        let mut total = vaddvq_f32(vaddq_f32(acc0, acc1));
        while i < d {
            let df = *pq.add(i) - *ps.add(i) * f32::from(*pc.add(i));
            total += df * df;
            i += 1;
        }
        *slot = total;
    }
}

/// Candidate rows per cache tile of the many-to-many kernels (~128 KiB of
/// `f32` per tile); mirrors `x86::k_tile_rows`.
#[inline]
fn k_tile_rows(d: usize) -> usize {
    (32 * 1024 / d.max(1)).clamp(2, 512)
}

/// Single-accumulator squared-distance pair kernel matching the tile
/// micro-kernel's per-pair reduction order (4-lane steps in ascending order,
/// one horizontal sum, scalar tail), so tile edges are bit-identical to the
/// 4 × 2 interior — the tiling invariant of the `kernels` module docs.
#[target_feature(enable = "neon")]
unsafe fn l2_sq_pair_1acc(a: *const f32, b: *const f32, d: usize) -> f32 {
    let mut acc = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 4 <= d {
        let dv = vsubq_f32(vld1q_f32(a.add(i)), vld1q_f32(b.add(i)));
        acc = vfmaq_f32(acc, dv, dv);
        i += 4;
    }
    let mut total = vaddvq_f32(acc);
    while i < d {
        let df = *a.add(i) - *b.add(i);
        total += df * df;
        i += 1;
    }
    total
}

/// Single-accumulator dot-product pair kernel; see [`l2_sq_pair_1acc`].
#[target_feature(enable = "neon")]
unsafe fn dot_pair_1acc(a: *const f32, b: *const f32, d: usize) -> f32 {
    let mut acc = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 4 <= d {
        acc = vfmaq_f32(acc, vld1q_f32(a.add(i)), vld1q_f32(b.add(i)));
        i += 4;
    }
    let mut total = vaddvq_f32(acc);
    while i < d {
        total += *a.add(i) * *b.add(i);
        i += 1;
    }
    total
}

/// Register-blocked, cache-tiled `m × k` squared-distance tile: the NEON
/// counterpart of the x86 4 × 2 micro-kernel (eight independent 4-lane
/// accumulators, so each step performs 8 FMAs for 6 loads and every loaded
/// candidate vector is reused across four queries).
#[target_feature(enable = "neon")]
unsafe fn l2_sq_many_to_many_body(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let m = xs.len() / d;
    let k = rows.len() / d;
    let px = xs.as_ptr();
    let pr = rows.as_ptr();
    let po = out.as_mut_ptr();
    let k_tile = k_tile_rows(d);
    let mut c_base = 0usize;
    while c_base < k {
        let c_end = (c_base + k_tile).min(k);
        let mut q = 0usize;
        while q + 4 <= m {
            let q0 = px.add(q * d);
            let q1 = px.add((q + 1) * d);
            let q2 = px.add((q + 2) * d);
            let q3 = px.add((q + 3) * d);
            let mut c = c_base;
            while c + 2 <= c_end {
                let r0 = pr.add(c * d);
                let r1 = pr.add((c + 1) * d);
                let mut a00 = vdupq_n_f32(0.0);
                let mut a01 = vdupq_n_f32(0.0);
                let mut a10 = vdupq_n_f32(0.0);
                let mut a11 = vdupq_n_f32(0.0);
                let mut a20 = vdupq_n_f32(0.0);
                let mut a21 = vdupq_n_f32(0.0);
                let mut a30 = vdupq_n_f32(0.0);
                let mut a31 = vdupq_n_f32(0.0);
                let mut i = 0usize;
                while i + 4 <= d {
                    let c0 = vld1q_f32(r0.add(i));
                    let c1 = vld1q_f32(r1.add(i));
                    let x0 = vld1q_f32(q0.add(i));
                    let d00 = vsubq_f32(x0, c0);
                    let d01 = vsubq_f32(x0, c1);
                    a00 = vfmaq_f32(a00, d00, d00);
                    a01 = vfmaq_f32(a01, d01, d01);
                    let x1 = vld1q_f32(q1.add(i));
                    let d10 = vsubq_f32(x1, c0);
                    let d11 = vsubq_f32(x1, c1);
                    a10 = vfmaq_f32(a10, d10, d10);
                    a11 = vfmaq_f32(a11, d11, d11);
                    let x2 = vld1q_f32(q2.add(i));
                    let d20 = vsubq_f32(x2, c0);
                    let d21 = vsubq_f32(x2, c1);
                    a20 = vfmaq_f32(a20, d20, d20);
                    a21 = vfmaq_f32(a21, d21, d21);
                    let x3 = vld1q_f32(q3.add(i));
                    let d30 = vsubq_f32(x3, c0);
                    let d31 = vsubq_f32(x3, c1);
                    a30 = vfmaq_f32(a30, d30, d30);
                    a31 = vfmaq_f32(a31, d31, d31);
                    i += 4;
                }
                let mut s00 = vaddvq_f32(a00);
                let mut s01 = vaddvq_f32(a01);
                let mut s10 = vaddvq_f32(a10);
                let mut s11 = vaddvq_f32(a11);
                let mut s20 = vaddvq_f32(a20);
                let mut s21 = vaddvq_f32(a21);
                let mut s30 = vaddvq_f32(a30);
                let mut s31 = vaddvq_f32(a31);
                while i < d {
                    let c0i = *r0.add(i);
                    let c1i = *r1.add(i);
                    let x0i = *q0.add(i);
                    let x1i = *q1.add(i);
                    let x2i = *q2.add(i);
                    let x3i = *q3.add(i);
                    let t00 = x0i - c0i;
                    s00 += t00 * t00;
                    let t01 = x0i - c1i;
                    s01 += t01 * t01;
                    let t10 = x1i - c0i;
                    s10 += t10 * t10;
                    let t11 = x1i - c1i;
                    s11 += t11 * t11;
                    let t20 = x2i - c0i;
                    s20 += t20 * t20;
                    let t21 = x2i - c1i;
                    s21 += t21 * t21;
                    let t30 = x3i - c0i;
                    s30 += t30 * t30;
                    let t31 = x3i - c1i;
                    s31 += t31 * t31;
                    i += 1;
                }
                *po.add(q * k + c) = s00;
                *po.add(q * k + c + 1) = s01;
                *po.add((q + 1) * k + c) = s10;
                *po.add((q + 1) * k + c + 1) = s11;
                *po.add((q + 2) * k + c) = s20;
                *po.add((q + 2) * k + c + 1) = s21;
                *po.add((q + 3) * k + c) = s30;
                *po.add((q + 3) * k + c + 1) = s31;
                c += 2;
            }
            while c < c_end {
                let r = pr.add(c * d);
                *po.add(q * k + c) = l2_sq_pair_1acc(q0, r, d);
                *po.add((q + 1) * k + c) = l2_sq_pair_1acc(q1, r, d);
                *po.add((q + 2) * k + c) = l2_sq_pair_1acc(q2, r, d);
                *po.add((q + 3) * k + c) = l2_sq_pair_1acc(q3, r, d);
                c += 1;
            }
            q += 4;
        }
        while q < m {
            let qp = px.add(q * d);
            let mut c = c_base;
            while c < c_end {
                *po.add(q * k + c) = l2_sq_pair_1acc(qp, pr.add(c * d), d);
                c += 1;
            }
            q += 1;
        }
        c_base = c_end;
    }
}

/// Register-blocked, cache-tiled `m × k` dot-product tile; same blocking as
/// [`l2_sq_many_to_many_body`].
#[target_feature(enable = "neon")]
unsafe fn dot_many_to_many_body(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let m = xs.len() / d;
    let k = rows.len() / d;
    let px = xs.as_ptr();
    let pr = rows.as_ptr();
    let po = out.as_mut_ptr();
    let k_tile = k_tile_rows(d);
    let mut c_base = 0usize;
    while c_base < k {
        let c_end = (c_base + k_tile).min(k);
        let mut q = 0usize;
        while q + 4 <= m {
            let q0 = px.add(q * d);
            let q1 = px.add((q + 1) * d);
            let q2 = px.add((q + 2) * d);
            let q3 = px.add((q + 3) * d);
            let mut c = c_base;
            while c + 2 <= c_end {
                let r0 = pr.add(c * d);
                let r1 = pr.add((c + 1) * d);
                let mut a00 = vdupq_n_f32(0.0);
                let mut a01 = vdupq_n_f32(0.0);
                let mut a10 = vdupq_n_f32(0.0);
                let mut a11 = vdupq_n_f32(0.0);
                let mut a20 = vdupq_n_f32(0.0);
                let mut a21 = vdupq_n_f32(0.0);
                let mut a30 = vdupq_n_f32(0.0);
                let mut a31 = vdupq_n_f32(0.0);
                let mut i = 0usize;
                while i + 4 <= d {
                    let c0 = vld1q_f32(r0.add(i));
                    let c1 = vld1q_f32(r1.add(i));
                    let x0 = vld1q_f32(q0.add(i));
                    a00 = vfmaq_f32(a00, x0, c0);
                    a01 = vfmaq_f32(a01, x0, c1);
                    let x1 = vld1q_f32(q1.add(i));
                    a10 = vfmaq_f32(a10, x1, c0);
                    a11 = vfmaq_f32(a11, x1, c1);
                    let x2 = vld1q_f32(q2.add(i));
                    a20 = vfmaq_f32(a20, x2, c0);
                    a21 = vfmaq_f32(a21, x2, c1);
                    let x3 = vld1q_f32(q3.add(i));
                    a30 = vfmaq_f32(a30, x3, c0);
                    a31 = vfmaq_f32(a31, x3, c1);
                    i += 4;
                }
                let mut s00 = vaddvq_f32(a00);
                let mut s01 = vaddvq_f32(a01);
                let mut s10 = vaddvq_f32(a10);
                let mut s11 = vaddvq_f32(a11);
                let mut s20 = vaddvq_f32(a20);
                let mut s21 = vaddvq_f32(a21);
                let mut s30 = vaddvq_f32(a30);
                let mut s31 = vaddvq_f32(a31);
                while i < d {
                    let c0i = *r0.add(i);
                    let c1i = *r1.add(i);
                    let x0i = *q0.add(i);
                    let x1i = *q1.add(i);
                    let x2i = *q2.add(i);
                    let x3i = *q3.add(i);
                    s00 += x0i * c0i;
                    s01 += x0i * c1i;
                    s10 += x1i * c0i;
                    s11 += x1i * c1i;
                    s20 += x2i * c0i;
                    s21 += x2i * c1i;
                    s30 += x3i * c0i;
                    s31 += x3i * c1i;
                    i += 1;
                }
                *po.add(q * k + c) = s00;
                *po.add(q * k + c + 1) = s01;
                *po.add((q + 1) * k + c) = s10;
                *po.add((q + 1) * k + c + 1) = s11;
                *po.add((q + 2) * k + c) = s20;
                *po.add((q + 2) * k + c + 1) = s21;
                *po.add((q + 3) * k + c) = s30;
                *po.add((q + 3) * k + c + 1) = s31;
                c += 2;
            }
            while c < c_end {
                let r = pr.add(c * d);
                *po.add(q * k + c) = dot_pair_1acc(q0, r, d);
                *po.add((q + 1) * k + c) = dot_pair_1acc(q1, r, d);
                *po.add((q + 2) * k + c) = dot_pair_1acc(q2, r, d);
                *po.add((q + 3) * k + c) = dot_pair_1acc(q3, r, d);
                c += 1;
            }
            q += 4;
        }
        while q < m {
            let qp = px.add(q * d);
            let mut c = c_base;
            while c < c_end {
                *po.add(q * k + c) = dot_pair_1acc(qp, pr.add(c * d), d);
                c += 1;
            }
            q += 1;
        }
        c_base = c_end;
    }
}

/// Element-wise `acc[i] += row[i]` with the `f32` row widened to `f64`:
/// 4 floats per step (one 128-bit `f32` load split into two `f64` pairs).
/// Element-wise adds carry no summation order, so the result is bit-identical
/// to the scalar level.
#[target_feature(enable = "neon")]
unsafe fn add_assign_f64_f32_body(acc: &mut [f64], row: &[f32]) {
    let n = acc.len().min(row.len());
    let pa = acc.as_mut_ptr();
    let pr = row.as_ptr();
    let mut i = 0usize;
    while i + 4 <= n {
        let r = vld1q_f32(pr.add(i));
        let lo = vcvt_f64_f32(vget_low_f32(r));
        let hi = vcvt_f64_f32(vget_high_f32(r));
        let a0 = vld1q_f64(pa.add(i));
        let a1 = vld1q_f64(pa.add(i + 2));
        vst1q_f64(pa.add(i), vaddq_f64(a0, lo));
        vst1q_f64(pa.add(i + 2), vaddq_f64(a1, hi));
        i += 4;
    }
    while i < n {
        *pa.add(i) += f64::from(*pr.add(i));
        i += 1;
    }
}

// Safe entry points: sound because `KERNELS` is only selected after feature
// detection (see module docs).

fn l2_sq_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_body(a, b) }
}

fn dot_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_body(a, b) }
}

fn dot_f64_f32_entry(a: &[f64], b: &[f32]) -> f64 {
    unsafe { dot_f64_f32_body(a, b) }
}

fn fused_dot_norms_entry(a: &[f32], b: &[f32]) -> DotNorms {
    unsafe { fused_dot_norms_body(a, b) }
}

fn l2_sq_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { l2_sq_one_to_many_body(x, rows, out) }
}

fn l2_sq_sq8_one_to_many_entry(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    unsafe { l2_sq_sq8_one_to_many_body(aq, scales, codes, out) }
}

fn dot_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { dot_one_to_many_body(x, rows, out) }
}

fn l2_sq_many_to_many_entry(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    unsafe { l2_sq_many_to_many_body(xs, rows, d, out) }
}

fn dot_many_to_many_entry(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    unsafe { dot_many_to_many_body(xs, rows, d, out) }
}

fn add_assign_f64_f32_entry(acc: &mut [f64], row: &[f32]) {
    unsafe { add_assign_f64_f32_body(acc, row) }
}

/// The NEON level.
pub static KERNELS: Kernels = Kernels {
    name: "neon",
    l2_sq: l2_sq_entry,
    dot: dot_entry,
    dot_f64_f32: dot_f64_f32_entry,
    fused_dot_norms: fused_dot_norms_entry,
    l2_sq_one_to_many: l2_sq_one_to_many_entry,
    l2_sq_sq8_one_to_many: l2_sq_sq8_one_to_many_entry,
    dot_one_to_many: dot_one_to_many_entry,
    l2_sq_many_to_many: l2_sq_many_to_many_entry,
    dot_many_to_many: dot_many_to_many_entry,
    add_assign_f64_f32: add_assign_f64_f32_entry,
};
