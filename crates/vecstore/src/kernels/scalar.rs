//! Portable scalar kernels: the 4-way unrolled loops the workspace originally
//! shipped, kept both as the fallback level of the dispatch table and as the
//! ground truth the SIMD levels are tested against.
//!
//! The 4-way unroll gives the compiler independent accumulator chains to
//! auto-vectorise; on targets without a dedicated SIMD level this is already
//! within a small factor of optimal.

use super::{DotNorms, Kernels};

/// Squared Euclidean distance, 4-way unrolled.
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc
}

/// Dot product, 4-way unrolled.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        acc += a[j] * b[j];
    }
    acc
}

/// Mixed-precision dot product (`f64` accumulator vector × `f32` row), 4-way
/// unrolled in `f64`.
pub fn dot_f64_f32(a: &[f64], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc0 = 0.0f64;
    let mut acc1 = 0.0f64;
    let mut acc2 = 0.0f64;
    let mut acc3 = 0.0f64;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * f64::from(b[j]);
        acc1 += a[j + 1] * f64::from(b[j + 1]);
        acc2 += a[j + 2] * f64::from(b[j + 2]);
        acc3 += a[j + 3] * f64::from(b[j + 3]);
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        acc += a[j] * f64::from(b[j]);
    }
    acc
}

/// One pass producing `a·b`, `‖a‖²` and `‖b‖²`.
pub fn fused_dot_norms(a: &[f32], b: &[f32]) -> DotNorms {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    DotNorms {
        dot,
        norm_a_sq: na,
        norm_b_sq: nb,
    }
}

/// Batched squared distances from `x` to every row of `rows`.
pub fn l2_sq_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = l2_sq(x, row);
    }
}

/// Asymmetric SQ8 squared distances: `out[r] = Σ_i (aq[i] − scales[i] ·
/// codes[r·d + i])²` with `d = aq.len()`, 4-way unrolled.  This is the ground
/// truth the SIMD SQ8 levels are tested against.
pub fn l2_sq_sq8_one_to_many(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    let d = aq.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(codes.chunks_exact(d)) {
        let chunks = d / 4;
        let mut acc0 = 0.0f32;
        let mut acc1 = 0.0f32;
        let mut acc2 = 0.0f32;
        let mut acc3 = 0.0f32;
        for i in 0..chunks {
            let j = i * 4;
            let d0 = aq[j] - scales[j] * f32::from(row[j]);
            let d1 = aq[j + 1] - scales[j + 1] * f32::from(row[j + 1]);
            let d2 = aq[j + 2] - scales[j + 2] * f32::from(row[j + 2]);
            let d3 = aq[j + 3] - scales[j + 3] * f32::from(row[j + 3]);
            acc0 += d0 * d0;
            acc1 += d1 * d1;
            acc2 += d2 * d2;
            acc3 += d3 * d3;
        }
        let mut acc = (acc0 + acc1) + (acc2 + acc3);
        for j in chunks * 4..d {
            let df = aq[j] - scales[j] * f32::from(row[j]);
            acc += df * df;
        }
        *slot = acc;
    }
}

/// Batched dot products from `x` to every row of `rows`.
pub fn dot_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = dot(x, row);
    }
}

/// `m × k` tile of squared distances: one one-to-many sweep per query row.
/// The scalar level has no register file worth tiling for, so this doubles
/// as the naive reference the SIMD tiles are pinned against.
pub fn l2_sq_many_to_many(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let k = rows.len() / d;
    for (q, tile_row) in xs.chunks_exact(d).zip(out.chunks_exact_mut(k)) {
        l2_sq_one_to_many(q, rows, tile_row);
    }
}

/// Element-wise `acc[i] += row[i]` with the row widened to `f64`, 4-way
/// unrolled.  No reduction is involved, so this is the exact arithmetic every
/// SIMD level must reproduce bit for bit.
pub fn add_assign_f64_f32(acc: &mut [f64], row: &[f32]) {
    let n = acc.len().min(row.len());
    let (acc, row) = (&mut acc[..n], &row[..n]);
    let chunks = n / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[j] += f64::from(row[j]);
        acc[j + 1] += f64::from(row[j + 1]);
        acc[j + 2] += f64::from(row[j + 2]);
        acc[j + 3] += f64::from(row[j + 3]);
    }
    for j in chunks * 4..n {
        acc[j] += f64::from(row[j]);
    }
}

/// `m × k` tile of dot products: one one-to-many sweep per query row.
pub fn dot_many_to_many(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let k = rows.len() / d;
    for (q, tile_row) in xs.chunks_exact(d).zip(out.chunks_exact_mut(k)) {
        dot_one_to_many(q, rows, tile_row);
    }
}

/// The portable fallback level.
pub static KERNELS: Kernels = Kernels {
    name: "scalar",
    l2_sq,
    dot,
    dot_f64_f32,
    fused_dot_norms,
    l2_sq_one_to_many,
    l2_sq_sq8_one_to_many,
    dot_one_to_many,
    l2_sq_many_to_many,
    dot_many_to_many,
    add_assign_f64_f32,
};
