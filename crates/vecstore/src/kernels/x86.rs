//! AVX2 + FMA kernels for x86-64.
//!
//! Eight `f32` lanes per vector with fused multiply-add, four independent
//! accumulator chains (32 floats per main-loop step) to cover the FMA
//! latency, then an 8-lane loop and a scalar tail for the remainder — so
//! every length, alignment and remainder lane count is handled.  All loads
//! are unaligned (`loadu`); callers never need to align their slices.
//!
//! Safety model: the inner `#[target_feature]` functions are only reachable
//! through the safe `*_entry` wrappers stored in [`KERNELS`], and that table
//! is only ever selected by [`super::active`] after
//! `is_x86_feature_detected!("avx2")`/`("fma")` both succeed, which makes the
//! `unsafe` calls sound.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_castps256_ps128, _mm256_cvtps_pd, _mm256_extractf128_ps,
    _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps, _mm256_setzero_pd,
    _mm256_setzero_ps, _mm256_storeu_pd, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32,
    _mm_loadu_ps, _mm_movehdup_ps, _mm_movehl_ps,
};

use super::{DotNorms, Kernels};

/// Horizontal sum of the eight lanes of an AVX register.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let sum4 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehdup_ps(sum4);
    let sum2 = _mm_add_ps(sum4, shuf);
    let hi2 = _mm_movehl_ps(shuf, sum2);
    _mm_cvtss_f32(_mm_add_ss(sum2, hi2))
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        let d1 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
        );
        let d2 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
        );
        let d3 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
        );
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        acc2 = _mm256_fmadd_ps(d2, d2, acc2);
        acc3 = _mm256_fmadd_ps(d3, d3, acc3);
        i += 32;
    }
    while i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut total = hsum256(_mm256_add_ps(
        _mm256_add_ps(acc0, acc1),
        _mm256_add_ps(acc2, acc3),
    ));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            acc1,
        );
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            acc3,
        );
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let mut total = hsum256(_mm256_add_ps(
        _mm256_add_ps(acc0, acc1),
        _mm256_add_ps(acc2, acc3),
    ));
    while i < n {
        total += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f64_f32_body(a: &[f64], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 8 <= n {
        // widen two groups of four f32 lanes to f64 and fold them in
        let x0 = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i)));
        let x1 = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i + 4)));
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), x0, acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i + 4)), x1, acc1);
        i += 8;
    }
    while i + 4 <= n {
        let x = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), x, acc0);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    let folded = {
        let mut sum = [0.0f64; 4];
        _mm256_storeu_pd(sum.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc1);
        (sum[0] + sum[1]) + (sum[2] + sum[3]) + (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    };
    let mut total = folded;
    while i < n {
        total += *pa.add(i) * f64::from(*pb.add(i));
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn fused_dot_norms_body(a: &[f32], b: &[f32]) -> DotNorms {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut dot0 = _mm256_setzero_ps();
    let mut na0 = _mm256_setzero_ps();
    let mut nb0 = _mm256_setzero_ps();
    let mut dot1 = _mm256_setzero_ps();
    let mut na1 = _mm256_setzero_ps();
    let mut nb1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_loadu_ps(pa.add(i));
        let y0 = _mm256_loadu_ps(pb.add(i));
        let x1 = _mm256_loadu_ps(pa.add(i + 8));
        let y1 = _mm256_loadu_ps(pb.add(i + 8));
        dot0 = _mm256_fmadd_ps(x0, y0, dot0);
        na0 = _mm256_fmadd_ps(x0, x0, na0);
        nb0 = _mm256_fmadd_ps(y0, y0, nb0);
        dot1 = _mm256_fmadd_ps(x1, y1, dot1);
        na1 = _mm256_fmadd_ps(x1, x1, na1);
        nb1 = _mm256_fmadd_ps(y1, y1, nb1);
        i += 16;
    }
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pa.add(i));
        let y = _mm256_loadu_ps(pb.add(i));
        dot0 = _mm256_fmadd_ps(x, y, dot0);
        na0 = _mm256_fmadd_ps(x, x, na0);
        nb0 = _mm256_fmadd_ps(y, y, nb0);
        i += 8;
    }
    let mut dot = hsum256(_mm256_add_ps(dot0, dot1));
    let mut na = hsum256(_mm256_add_ps(na0, na1));
    let mut nb = hsum256(_mm256_add_ps(nb0, nb1));
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        dot += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    DotNorms {
        dot,
        norm_a_sq: na,
        norm_b_sq: nb,
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    // One feature-enabled frame for the whole block: the per-row kernel call
    // below is a direct (inlinable) call, and the query stays hot in L1.
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = l2_sq_body(x, row);
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = dot_body(x, row);
    }
}

// Safe entry points: sound because `KERNELS` is only selected after feature
// detection (see module docs).

fn l2_sq_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_body(a, b) }
}

fn dot_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_body(a, b) }
}

fn dot_f64_f32_entry(a: &[f64], b: &[f32]) -> f64 {
    unsafe { dot_f64_f32_body(a, b) }
}

fn fused_dot_norms_entry(a: &[f32], b: &[f32]) -> DotNorms {
    unsafe { fused_dot_norms_body(a, b) }
}

fn l2_sq_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { l2_sq_one_to_many_body(x, rows, out) }
}

fn dot_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { dot_one_to_many_body(x, rows, out) }
}

/// The AVX2 + FMA level.
pub static KERNELS: Kernels = Kernels {
    name: "avx2+fma",
    l2_sq: l2_sq_entry,
    dot: dot_entry,
    dot_f64_f32: dot_f64_f32_entry,
    fused_dot_norms: fused_dot_norms_entry,
    l2_sq_one_to_many: l2_sq_one_to_many_entry,
    dot_one_to_many: dot_one_to_many_entry,
};
