//! AVX2 + FMA kernels for x86-64.
//!
//! Eight `f32` lanes per vector with fused multiply-add, four independent
//! accumulator chains (32 floats per main-loop step) to cover the FMA
//! latency, then an 8-lane loop and a scalar tail for the remainder — so
//! every length, alignment and remainder lane count is handled.  All loads
//! are unaligned (`loadu`); callers never need to align their slices.
//!
//! Safety model: the inner `#[target_feature]` functions are only reachable
//! through the safe `*_entry` wrappers stored in [`KERNELS`], and that table
//! is only ever selected by [`super::active`] after
//! `is_x86_feature_detected!("avx2")`/`("fma")` both succeed, which makes the
//! `unsafe` calls sound.

#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m256, _mm256_add_pd, _mm256_add_ps, _mm256_castps256_ps128, _mm256_cvtepi32_ps,
    _mm256_cvtepu8_epi32, _mm256_cvtps_pd, _mm256_extractf128_ps, _mm256_fmadd_pd, _mm256_fmadd_ps,
    _mm256_fnmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps, _mm256_setzero_pd, _mm256_setzero_ps,
    _mm256_storeu_pd, _mm256_sub_ps, _mm_add_ps, _mm_add_ss, _mm_cvtss_f32, _mm_loadu_ps,
    _mm_loadu_si64, _mm_movehdup_ps, _mm_movehl_ps,
};

use super::{DotNorms, Kernels};

/// Horizontal sum of the eight lanes of an AVX register.
#[target_feature(enable = "avx2,fma")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let sum4 = _mm_add_ps(lo, hi);
    let shuf = _mm_movehdup_ps(sum4);
    let sum2 = _mm_add_ps(sum4, shuf);
    let hi2 = _mm_movehl_ps(shuf, sum2);
    _mm_cvtss_f32(_mm_add_ss(sum2, hi2))
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        let d0 = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        let d1 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
        );
        let d2 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
        );
        let d3 = _mm256_sub_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
        );
        acc0 = _mm256_fmadd_ps(d0, d0, acc0);
        acc1 = _mm256_fmadd_ps(d1, d1, acc1);
        acc2 = _mm256_fmadd_ps(d2, d2, acc2);
        acc3 = _mm256_fmadd_ps(d3, d3, acc3);
        i += 32;
    }
    while i + 8 <= n {
        let d = _mm256_sub_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_ps(d, d, acc0);
        i += 8;
    }
    let mut total = hsum256(_mm256_add_ps(
        _mm256_add_ps(acc0, acc1),
        _mm256_add_ps(acc2, acc3),
    ));
    while i < n {
        let d = *pa.add(i) - *pb.add(i);
        total += d * d;
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_body(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        acc1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            acc1,
        );
        acc2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            acc2,
        );
        acc3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            acc3,
        );
        i += 32;
    }
    while i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), acc0);
        i += 8;
    }
    let mut total = hsum256(_mm256_add_ps(
        _mm256_add_ps(acc0, acc1),
        _mm256_add_ps(acc2, acc3),
    ));
    while i < n {
        total += *pa.add(i) * *pb.add(i);
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_f64_f32_body(a: &[f64], b: &[f32]) -> f64 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc0 = _mm256_setzero_pd();
    let mut acc1 = _mm256_setzero_pd();
    let mut i = 0usize;
    while i + 8 <= n {
        // widen two groups of four f32 lanes to f64 and fold them in
        let x0 = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i)));
        let x1 = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i + 4)));
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), x0, acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i + 4)), x1, acc1);
        i += 8;
    }
    while i + 4 <= n {
        let x = _mm256_cvtps_pd(_mm_loadu_ps(pb.add(i)));
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), x, acc0);
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    let folded = {
        let mut sum = [0.0f64; 4];
        _mm256_storeu_pd(sum.as_mut_ptr(), acc0);
        _mm256_storeu_pd(lanes.as_mut_ptr(), acc1);
        (sum[0] + sum[1]) + (sum[2] + sum[3]) + (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
    };
    let mut total = folded;
    while i < n {
        total += *pa.add(i) * f64::from(*pb.add(i));
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2,fma")]
unsafe fn fused_dot_norms_body(a: &[f32], b: &[f32]) -> DotNorms {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut dot0 = _mm256_setzero_ps();
    let mut na0 = _mm256_setzero_ps();
    let mut nb0 = _mm256_setzero_ps();
    let mut dot1 = _mm256_setzero_ps();
    let mut na1 = _mm256_setzero_ps();
    let mut nb1 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 16 <= n {
        let x0 = _mm256_loadu_ps(pa.add(i));
        let y0 = _mm256_loadu_ps(pb.add(i));
        let x1 = _mm256_loadu_ps(pa.add(i + 8));
        let y1 = _mm256_loadu_ps(pb.add(i + 8));
        dot0 = _mm256_fmadd_ps(x0, y0, dot0);
        na0 = _mm256_fmadd_ps(x0, x0, na0);
        nb0 = _mm256_fmadd_ps(y0, y0, nb0);
        dot1 = _mm256_fmadd_ps(x1, y1, dot1);
        na1 = _mm256_fmadd_ps(x1, x1, na1);
        nb1 = _mm256_fmadd_ps(y1, y1, nb1);
        i += 16;
    }
    while i + 8 <= n {
        let x = _mm256_loadu_ps(pa.add(i));
        let y = _mm256_loadu_ps(pb.add(i));
        dot0 = _mm256_fmadd_ps(x, y, dot0);
        na0 = _mm256_fmadd_ps(x, x, na0);
        nb0 = _mm256_fmadd_ps(y, y, nb0);
        i += 8;
    }
    let mut dot = hsum256(_mm256_add_ps(dot0, dot1));
    let mut na = hsum256(_mm256_add_ps(na0, na1));
    let mut nb = hsum256(_mm256_add_ps(nb0, nb1));
    while i < n {
        let x = *pa.add(i);
        let y = *pb.add(i);
        dot += x * y;
        na += x * x;
        nb += y * y;
        i += 1;
    }
    DotNorms {
        dot,
        norm_a_sq: na,
        norm_b_sq: nb,
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    // One feature-enabled frame for the whole block: the per-row kernel call
    // below is a direct (inlinable) call, and the query stays hot in L1.
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = l2_sq_body(x, row);
    }
}

#[target_feature(enable = "avx2,fma")]
unsafe fn dot_one_to_many_body(x: &[f32], rows: &[f32], out: &mut [f32]) {
    let d = x.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    for (slot, row) in out.iter_mut().zip(rows.chunks_exact(d)) {
        *slot = dot_body(x, row);
    }
}

/// Asymmetric SQ8 distances: eight `u8` codes per step widen through
/// `cvtepu8_epi32` → `cvtepi32_ps` into an 8-lane register, the difference
/// `aq − scale·code` comes out of one fused negated multiply-add, and the
/// square accumulates through FMA — so the per-value memory traffic is one
/// byte while the arithmetic stays full-width `f32`.
#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_sq8_one_to_many_body(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    let d = aq.len();
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let pq = aq.as_ptr();
    let ps = scales.as_ptr();
    for (slot, row) in out.iter_mut().zip(codes.chunks_exact(d)) {
        let pc = row.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut i = 0usize;
        while i + 16 <= d {
            let c0 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadu_si64(pc.add(i))));
            let c1 = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadu_si64(pc.add(i + 8))));
            let d0 = _mm256_fnmadd_ps(_mm256_loadu_ps(ps.add(i)), c0, _mm256_loadu_ps(pq.add(i)));
            let d1 = _mm256_fnmadd_ps(
                _mm256_loadu_ps(ps.add(i + 8)),
                c1,
                _mm256_loadu_ps(pq.add(i + 8)),
            );
            acc0 = _mm256_fmadd_ps(d0, d0, acc0);
            acc1 = _mm256_fmadd_ps(d1, d1, acc1);
            i += 16;
        }
        while i + 8 <= d {
            let cv = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(_mm_loadu_si64(pc.add(i))));
            let dv = _mm256_fnmadd_ps(_mm256_loadu_ps(ps.add(i)), cv, _mm256_loadu_ps(pq.add(i)));
            acc0 = _mm256_fmadd_ps(dv, dv, acc0);
            i += 8;
        }
        let mut total = hsum256(_mm256_add_ps(acc0, acc1));
        while i < d {
            let df = *pq.add(i) - *ps.add(i) * f32::from(*pc.add(i));
            total += df * df;
            i += 1;
        }
        *slot = total;
    }
}

/// Candidate rows per cache tile of the many-to-many kernels: sized so one
/// tile of candidate data (~128 KiB of `f32`) stays L2-resident across the
/// query sweep instead of being re-streamed from memory per query block.
#[inline]
fn k_tile_rows(d: usize) -> usize {
    (32 * 1024 / d.max(1)).clamp(2, 512)
}

/// Single-accumulator squared-distance pair kernel matching the tile
/// micro-kernel's per-pair reduction order exactly (8-lane steps in ascending
/// order, one horizontal sum, scalar tail).  Tile edges go through this so
/// every `(query, candidate)` pair is bit-identical whichever path computes
/// it — the tiling invariant the module docs of `kernels` promise.
#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_pair_1acc(a: *const f32, b: *const f32, d: usize) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= d {
        let dv = _mm256_sub_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)));
        acc = _mm256_fmadd_ps(dv, dv, acc);
        i += 8;
    }
    let mut total = hsum256(acc);
    while i < d {
        let df = *a.add(i) - *b.add(i);
        total += df * df;
        i += 1;
    }
    total
}

/// Single-accumulator dot-product pair kernel; see [`l2_sq_pair_1acc`].
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_pair_1acc(a: *const f32, b: *const f32, d: usize) -> f32 {
    let mut acc = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 8 <= d {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(i)), _mm256_loadu_ps(b.add(i)), acc);
        i += 8;
    }
    let mut total = hsum256(acc);
    while i < d {
        total += *a.add(i) * *b.add(i);
        i += 1;
    }
    total
}

/// Register-blocked, cache-tiled `m × k` squared-distance tile.
///
/// The 4 × 2 micro-kernel holds eight independent accumulators (one per
/// `(query, candidate)` pair), so each 8-lane step performs 8 FMAs for 6
/// loads — versus 1 FMA per 2 loads in the one-to-many sweep — and every
/// loaded candidate vector is reused across four queries.  Candidates are
/// additionally walked in L2-sized tiles (see [`k_tile_rows`]) so at large
/// `k` the candidate matrix is fetched from memory once per ~4-query group
/// of the whole sweep rather than once per query.
#[target_feature(enable = "avx2,fma")]
unsafe fn l2_sq_many_to_many_body(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let m = xs.len() / d;
    let k = rows.len() / d;
    let px = xs.as_ptr();
    let pr = rows.as_ptr();
    let po = out.as_mut_ptr();
    let k_tile = k_tile_rows(d);
    let mut c_base = 0usize;
    while c_base < k {
        let c_end = (c_base + k_tile).min(k);
        let mut q = 0usize;
        while q + 4 <= m {
            let q0 = px.add(q * d);
            let q1 = px.add((q + 1) * d);
            let q2 = px.add((q + 2) * d);
            let q3 = px.add((q + 3) * d);
            let mut c = c_base;
            while c + 2 <= c_end {
                let r0 = pr.add(c * d);
                let r1 = pr.add((c + 1) * d);
                let mut a00 = _mm256_setzero_ps();
                let mut a01 = _mm256_setzero_ps();
                let mut a10 = _mm256_setzero_ps();
                let mut a11 = _mm256_setzero_ps();
                let mut a20 = _mm256_setzero_ps();
                let mut a21 = _mm256_setzero_ps();
                let mut a30 = _mm256_setzero_ps();
                let mut a31 = _mm256_setzero_ps();
                let mut i = 0usize;
                while i + 8 <= d {
                    let c0 = _mm256_loadu_ps(r0.add(i));
                    let c1 = _mm256_loadu_ps(r1.add(i));
                    let x0 = _mm256_loadu_ps(q0.add(i));
                    let d00 = _mm256_sub_ps(x0, c0);
                    let d01 = _mm256_sub_ps(x0, c1);
                    a00 = _mm256_fmadd_ps(d00, d00, a00);
                    a01 = _mm256_fmadd_ps(d01, d01, a01);
                    let x1 = _mm256_loadu_ps(q1.add(i));
                    let d10 = _mm256_sub_ps(x1, c0);
                    let d11 = _mm256_sub_ps(x1, c1);
                    a10 = _mm256_fmadd_ps(d10, d10, a10);
                    a11 = _mm256_fmadd_ps(d11, d11, a11);
                    let x2 = _mm256_loadu_ps(q2.add(i));
                    let d20 = _mm256_sub_ps(x2, c0);
                    let d21 = _mm256_sub_ps(x2, c1);
                    a20 = _mm256_fmadd_ps(d20, d20, a20);
                    a21 = _mm256_fmadd_ps(d21, d21, a21);
                    let x3 = _mm256_loadu_ps(q3.add(i));
                    let d30 = _mm256_sub_ps(x3, c0);
                    let d31 = _mm256_sub_ps(x3, c1);
                    a30 = _mm256_fmadd_ps(d30, d30, a30);
                    a31 = _mm256_fmadd_ps(d31, d31, a31);
                    i += 8;
                }
                let mut s00 = hsum256(a00);
                let mut s01 = hsum256(a01);
                let mut s10 = hsum256(a10);
                let mut s11 = hsum256(a11);
                let mut s20 = hsum256(a20);
                let mut s21 = hsum256(a21);
                let mut s30 = hsum256(a30);
                let mut s31 = hsum256(a31);
                while i < d {
                    let c0i = *r0.add(i);
                    let c1i = *r1.add(i);
                    let x0i = *q0.add(i);
                    let x1i = *q1.add(i);
                    let x2i = *q2.add(i);
                    let x3i = *q3.add(i);
                    let t00 = x0i - c0i;
                    s00 += t00 * t00;
                    let t01 = x0i - c1i;
                    s01 += t01 * t01;
                    let t10 = x1i - c0i;
                    s10 += t10 * t10;
                    let t11 = x1i - c1i;
                    s11 += t11 * t11;
                    let t20 = x2i - c0i;
                    s20 += t20 * t20;
                    let t21 = x2i - c1i;
                    s21 += t21 * t21;
                    let t30 = x3i - c0i;
                    s30 += t30 * t30;
                    let t31 = x3i - c1i;
                    s31 += t31 * t31;
                    i += 1;
                }
                *po.add(q * k + c) = s00;
                *po.add(q * k + c + 1) = s01;
                *po.add((q + 1) * k + c) = s10;
                *po.add((q + 1) * k + c + 1) = s11;
                *po.add((q + 2) * k + c) = s20;
                *po.add((q + 2) * k + c + 1) = s21;
                *po.add((q + 3) * k + c) = s30;
                *po.add((q + 3) * k + c + 1) = s31;
                c += 2;
            }
            while c < c_end {
                let r = pr.add(c * d);
                *po.add(q * k + c) = l2_sq_pair_1acc(q0, r, d);
                *po.add((q + 1) * k + c) = l2_sq_pair_1acc(q1, r, d);
                *po.add((q + 2) * k + c) = l2_sq_pair_1acc(q2, r, d);
                *po.add((q + 3) * k + c) = l2_sq_pair_1acc(q3, r, d);
                c += 1;
            }
            q += 4;
        }
        while q < m {
            let qp = px.add(q * d);
            let mut c = c_base;
            while c < c_end {
                *po.add(q * k + c) = l2_sq_pair_1acc(qp, pr.add(c * d), d);
                c += 1;
            }
            q += 1;
        }
        c_base = c_end;
    }
}

/// Register-blocked, cache-tiled `m × k` dot-product tile (the `X·Cᵀ` of the
/// fused norm expansion); same blocking as [`l2_sq_many_to_many_body`].
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_many_to_many_body(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if d == 0 {
        out.fill(0.0);
        return;
    }
    let m = xs.len() / d;
    let k = rows.len() / d;
    let px = xs.as_ptr();
    let pr = rows.as_ptr();
    let po = out.as_mut_ptr();
    let k_tile = k_tile_rows(d);
    let mut c_base = 0usize;
    while c_base < k {
        let c_end = (c_base + k_tile).min(k);
        let mut q = 0usize;
        while q + 4 <= m {
            let q0 = px.add(q * d);
            let q1 = px.add((q + 1) * d);
            let q2 = px.add((q + 2) * d);
            let q3 = px.add((q + 3) * d);
            let mut c = c_base;
            while c + 2 <= c_end {
                let r0 = pr.add(c * d);
                let r1 = pr.add((c + 1) * d);
                let mut a00 = _mm256_setzero_ps();
                let mut a01 = _mm256_setzero_ps();
                let mut a10 = _mm256_setzero_ps();
                let mut a11 = _mm256_setzero_ps();
                let mut a20 = _mm256_setzero_ps();
                let mut a21 = _mm256_setzero_ps();
                let mut a30 = _mm256_setzero_ps();
                let mut a31 = _mm256_setzero_ps();
                let mut i = 0usize;
                while i + 8 <= d {
                    let c0 = _mm256_loadu_ps(r0.add(i));
                    let c1 = _mm256_loadu_ps(r1.add(i));
                    let x0 = _mm256_loadu_ps(q0.add(i));
                    a00 = _mm256_fmadd_ps(x0, c0, a00);
                    a01 = _mm256_fmadd_ps(x0, c1, a01);
                    let x1 = _mm256_loadu_ps(q1.add(i));
                    a10 = _mm256_fmadd_ps(x1, c0, a10);
                    a11 = _mm256_fmadd_ps(x1, c1, a11);
                    let x2 = _mm256_loadu_ps(q2.add(i));
                    a20 = _mm256_fmadd_ps(x2, c0, a20);
                    a21 = _mm256_fmadd_ps(x2, c1, a21);
                    let x3 = _mm256_loadu_ps(q3.add(i));
                    a30 = _mm256_fmadd_ps(x3, c0, a30);
                    a31 = _mm256_fmadd_ps(x3, c1, a31);
                    i += 8;
                }
                let mut s00 = hsum256(a00);
                let mut s01 = hsum256(a01);
                let mut s10 = hsum256(a10);
                let mut s11 = hsum256(a11);
                let mut s20 = hsum256(a20);
                let mut s21 = hsum256(a21);
                let mut s30 = hsum256(a30);
                let mut s31 = hsum256(a31);
                while i < d {
                    let c0i = *r0.add(i);
                    let c1i = *r1.add(i);
                    let x0i = *q0.add(i);
                    let x1i = *q1.add(i);
                    let x2i = *q2.add(i);
                    let x3i = *q3.add(i);
                    s00 += x0i * c0i;
                    s01 += x0i * c1i;
                    s10 += x1i * c0i;
                    s11 += x1i * c1i;
                    s20 += x2i * c0i;
                    s21 += x2i * c1i;
                    s30 += x3i * c0i;
                    s31 += x3i * c1i;
                    i += 1;
                }
                *po.add(q * k + c) = s00;
                *po.add(q * k + c + 1) = s01;
                *po.add((q + 1) * k + c) = s10;
                *po.add((q + 1) * k + c + 1) = s11;
                *po.add((q + 2) * k + c) = s20;
                *po.add((q + 2) * k + c + 1) = s21;
                *po.add((q + 3) * k + c) = s30;
                *po.add((q + 3) * k + c + 1) = s31;
                c += 2;
            }
            while c < c_end {
                let r = pr.add(c * d);
                *po.add(q * k + c) = dot_pair_1acc(q0, r, d);
                *po.add((q + 1) * k + c) = dot_pair_1acc(q1, r, d);
                *po.add((q + 2) * k + c) = dot_pair_1acc(q2, r, d);
                *po.add((q + 3) * k + c) = dot_pair_1acc(q3, r, d);
                c += 1;
            }
            q += 4;
        }
        while q < m {
            let qp = px.add(q * d);
            let mut c = c_base;
            while c < c_end {
                *po.add(q * k + c) = dot_pair_1acc(qp, pr.add(c * d), d);
                c += 1;
            }
            q += 1;
        }
        c_base = c_end;
    }
}

// Safe entry points: sound because `KERNELS` is only selected after feature
// detection (see module docs).

fn l2_sq_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { l2_sq_body(a, b) }
}

fn dot_entry(a: &[f32], b: &[f32]) -> f32 {
    unsafe { dot_body(a, b) }
}

fn dot_f64_f32_entry(a: &[f64], b: &[f32]) -> f64 {
    unsafe { dot_f64_f32_body(a, b) }
}

fn fused_dot_norms_entry(a: &[f32], b: &[f32]) -> DotNorms {
    unsafe { fused_dot_norms_body(a, b) }
}

fn l2_sq_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { l2_sq_one_to_many_body(x, rows, out) }
}

fn l2_sq_sq8_one_to_many_entry(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    unsafe { l2_sq_sq8_one_to_many_body(aq, scales, codes, out) }
}

fn dot_one_to_many_entry(x: &[f32], rows: &[f32], out: &mut [f32]) {
    unsafe { dot_one_to_many_body(x, rows, out) }
}

/// Element-wise `acc[i] += row[i]` with the `f32` row widened to `f64`:
/// 8 floats per step (one 256-bit `f32` load split into two `f64` quads).
/// Element-wise adds carry no summation order, so the result is bit-identical
/// to the scalar level.
#[target_feature(enable = "avx2,fma")]
unsafe fn add_assign_f64_f32_body(acc: &mut [f64], row: &[f32]) {
    let n = acc.len().min(row.len());
    let pa = acc.as_mut_ptr();
    let pr = row.as_ptr();
    let mut i = 0usize;
    while i + 8 <= n {
        let r = _mm256_loadu_ps(pr.add(i));
        let lo = _mm256_cvtps_pd(_mm256_castps256_ps128(r));
        let hi = _mm256_cvtps_pd(_mm256_extractf128_ps(r, 1));
        let a0 = _mm256_loadu_pd(pa.add(i));
        let a1 = _mm256_loadu_pd(pa.add(i + 4));
        _mm256_storeu_pd(pa.add(i), _mm256_add_pd(a0, lo));
        _mm256_storeu_pd(pa.add(i + 4), _mm256_add_pd(a1, hi));
        i += 8;
    }
    while i < n {
        *pa.add(i) += f64::from(*pr.add(i));
        i += 1;
    }
}

fn l2_sq_many_to_many_entry(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    unsafe { l2_sq_many_to_many_body(xs, rows, d, out) }
}

fn add_assign_f64_f32_entry(acc: &mut [f64], row: &[f32]) {
    unsafe { add_assign_f64_f32_body(acc, row) }
}

fn dot_many_to_many_entry(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    unsafe { dot_many_to_many_body(xs, rows, d, out) }
}

/// The AVX2 + FMA level.
pub static KERNELS: Kernels = Kernels {
    name: "avx2+fma",
    l2_sq: l2_sq_entry,
    dot: dot_entry,
    dot_f64_f32: dot_f64_f32_entry,
    fused_dot_norms: fused_dot_norms_entry,
    l2_sq_one_to_many: l2_sq_one_to_many_entry,
    l2_sq_sq8_one_to_many: l2_sq_sq8_one_to_many_entry,
    dot_one_to_many: dot_one_to_many_entry,
    l2_sq_many_to_many: l2_sq_many_to_many_entry,
    dot_many_to_many: dot_many_to_many_entry,
    add_assign_f64_f32: add_assign_f64_f32_entry,
};
