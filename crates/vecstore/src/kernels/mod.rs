//! Runtime-dispatched SIMD distance kernels.
//!
//! Every hot loop in the workspace — GK-means candidate evaluation (Alg. 2),
//! the intra-cluster refinement of graph construction (Alg. 3), NN-Descent
//! local joins, NSW/greedy ANN search and the Lloyd/Elkan/Hamerly baselines —
//! bottoms out in a handful of dense `f32` primitives.  This module provides
//! explicit SIMD implementations of those primitives behind one-time runtime
//! CPU-feature detection:
//!
//! * **x86-64**: AVX2 + FMA (8-lane `f32`, fused multiply-add), selected via
//!   `is_x86_feature_detected!` on first use;
//! * **aarch64**: NEON (4-lane `f32`), selected via
//!   `is_aarch64_feature_detected!`;
//! * **everything else** (or when detection fails): the portable 4-way
//!   unrolled scalar kernels the workspace originally shipped.
//!
//! The selected [`Kernels`] table is cached in a [`OnceLock`], so detection
//! happens exactly once per process and every later call is a single indirect
//! call.  On top of the pairwise kernels the table carries **batched
//! one-to-many** kernels (`l2_sq_one_to_many`, `dot_one_to_many`) that score
//! one query against a whole block of candidate rows inside a single
//! feature-enabled function — amortising both the dispatch and the query
//! loads across the block.  The free functions in this module add shape
//! checking, an indexed (gather) variant for non-contiguous candidate sets,
//! and a norm-cached variant exploiting `‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²`.
//!
//! # Numerical contract
//!
//! All kernels compute the same mathematical quantity as the scalar
//! reference; only the summation order differs (lane-parallel instead of
//! 4-way unrolled), so results may differ by normal floating-point
//! reassociation error.  The property suite (`tests/kernel_properties.rs`)
//! pins the agreement to a 1e-3 relative tolerance across every remainder
//! lane count and unaligned slices.

use std::sync::OnceLock;

pub mod scalar;

// The SIMD levels are crate-private: their safe entry points are only sound
// after feature detection, so the only way to reach them is through
// [`active`] / [`available`], which perform that detection.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Result of the fused dot-product/norms kernel: one pass over a pair of
/// vectors yielding `a·b`, `‖a‖²` and `‖b‖²` (the three quantities cosine
/// distance needs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DotNorms {
    /// `a · b`
    pub dot: f32,
    /// `‖a‖²`
    pub norm_a_sq: f32,
    /// `‖b‖²`
    pub norm_b_sq: f32,
}

/// A dispatch table of distance kernels for one instruction-set level.
///
/// Pairwise entries take two equal-length slices (callers guarantee the
/// shorter length wins, mirroring [`crate::distance::l2_sq`]).  One-to-many
/// entries take a query `x` of length `d`, a row-major block `rows` of
/// `out.len()` rows of length `d`, and write one result per row.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    /// Human-readable name of the instruction-set level (`"scalar"`,
    /// `"avx2+fma"`, `"neon"`).
    pub name: &'static str,
    /// Squared Euclidean distance between two slices.
    pub l2_sq: fn(&[f32], &[f32]) -> f32,
    /// Dot product of two slices.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Mixed-precision dot product between an `f64` accumulator vector and an
    /// `f32` sample row (the boost-k-means composite·sample product).
    pub dot_f64_f32: fn(&[f64], &[f32]) -> f64,
    /// One-pass `a·b`, `‖a‖²`, `‖b‖²`.
    pub fused_dot_norms: fn(&[f32], &[f32]) -> DotNorms,
    /// Squared Euclidean distances from one query to a contiguous block of
    /// rows.
    pub l2_sq_one_to_many: fn(&[f32], &[f32], &mut [f32]),
    /// Dot products from one query to a contiguous block of rows.
    pub dot_one_to_many: fn(&[f32], &[f32], &mut [f32]),
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The kernel table selected for this process.
///
/// The first call performs CPU-feature detection; every later call is a
/// cached load.  The selection is deterministic per process (and per
/// machine): the widest supported level wins.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(select)
}

/// Detection logic behind [`active`]; kept separate so tests can assert that
/// repeated evaluation is stable.
fn select() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return &x86::KERNELS;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return &neon::KERNELS;
        }
    }
    &scalar::KERNELS
}

/// Every kernel table usable on this machine: the scalar fallback plus the
/// SIMD level when the CPU supports it.  Used by the property suite to check
/// all implementations against the reference, whatever machine runs the
/// tests.
pub fn available() -> Vec<&'static Kernels> {
    let mut sets: Vec<&'static Kernels> = vec![&scalar::KERNELS];
    let selected = active();
    if !std::ptr::eq(selected, &scalar::KERNELS) {
        sets.push(selected);
    }
    sets
}

/// Index types accepted by the indexed one-to-many kernels.
pub trait RowIndex: Copy {
    /// The index as `usize`.
    fn as_index(self) -> usize;
}

impl RowIndex for usize {
    #[inline]
    fn as_index(self) -> usize {
        self
    }
}

impl RowIndex for u32 {
    #[inline]
    fn as_index(self) -> usize {
        self as usize
    }
}

/// Squared Euclidean distances from `x` to every row of the contiguous
/// row-major block `rows`, written into `out` (one value per row).
///
/// # Panics
///
/// Panics when `rows.len() != x.len() * out.len()`.
#[inline]
pub fn l2_sq_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    (active().l2_sq_one_to_many)(x, rows, out);
}

/// Dot products from `x` to every row of the contiguous row-major block
/// `rows`, written into `out`.
///
/// # Panics
///
/// Panics when `rows.len() != x.len() * out.len()`.
#[inline]
pub fn dot_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    (active().dot_one_to_many)(x, rows, out);
}

/// Squared Euclidean distances from `x` to the rows of `flat` (row-major,
/// dimensionality `dim`) selected by `indices`, written into `out`.
///
/// This is the gather form used when the candidate set is not contiguous
/// (GK-means candidate clusters, graph neighbour expansions): the dispatch is
/// resolved once for the whole batch and each row goes through the SIMD
/// pairwise kernel.
///
/// # Panics
///
/// Panics when `out.len() != indices.len()` or an index is out of range.
#[inline]
pub fn l2_sq_one_to_many_indexed<I: RowIndex>(
    x: &[f32],
    flat: &[f32],
    dim: usize,
    indices: &[I],
    out: &mut [f32],
) {
    assert_eq!(indices.len(), out.len(), "index/output length mismatch");
    let kernel = active().l2_sq;
    for (slot, &index) in out.iter_mut().zip(indices) {
        let i = index.as_index();
        *slot = kernel(x, &flat[i * dim..(i + 1) * dim]);
    }
}

/// Norm-cached batched distances: `out[i] = max(0, ‖x‖² − 2·x·rows[i] +
/// row_norms[i])` with `‖x‖²` and the row norms supplied by the caller.
///
/// The assignment steps cache `‖x‖²` per sample across all iterations and the
/// centroid norms once per iteration, so each sample↔centroid evaluation
/// costs a single dot product.  Cancellation can drive the expansion slightly
/// negative; results are clamped to zero like
/// [`crate::distance::l2_sq_via_dot`].
///
/// # Panics
///
/// Panics when the block shape or the norm count disagrees with `out`.
#[inline]
pub fn l2_sq_one_to_many_cached(
    x: &[f32],
    x_norm_sq: f32,
    rows: &[f32],
    row_norms: &[f32],
    out: &mut [f32],
) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    assert_eq!(row_norms.len(), out.len(), "norm cache length mismatch");
    (active().dot_one_to_many)(x, rows, out);
    for (o, &c_norm) in out.iter_mut().zip(row_norms) {
        *o = (x_norm_sq - 2.0 * *o + c_norm).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sq_reference;

    fn vectors(len: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.71).cos() * 2.0).collect();
        (a, b)
    }

    #[test]
    fn dispatch_is_deterministic_per_process() {
        let first = active() as *const Kernels;
        for _ in 0..10 {
            assert!(std::ptr::eq(first, active()));
            assert_eq!(unsafe { &*first }.name, active().name);
        }
        assert!(std::ptr::eq(select(), active()), "re-selection must agree");
    }

    #[test]
    fn every_available_set_matches_the_reference() {
        for kernels in available() {
            for len in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100, 128, 257] {
                let (a, b) = vectors(len);
                let fast = (kernels.l2_sq)(&a, &b);
                let slow = l2_sq_reference(&a, &b);
                assert!(
                    (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                    "{} len={len}: {fast} vs {slow}",
                    kernels.name
                );
            }
        }
    }

    #[test]
    fn one_to_many_matches_pairwise() {
        let dim = 33;
        let n = 7;
        let (x, _) = vectors(dim);
        let rows: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let mut batched = vec![0.0f32; n];
        l2_sq_one_to_many(&x, &rows, &mut batched);
        for (i, &got) in batched.iter().enumerate() {
            let expect = l2_sq_reference(&x, &rows[i * dim..(i + 1) * dim]);
            assert!((got - expect).abs() <= 1e-3 * expect.max(1.0), "row {i}");
        }
    }

    #[test]
    fn indexed_variant_gathers_rows() {
        let dim = 12;
        let flat: Vec<f32> = (0..8 * dim).map(|i| i as f32 * 0.05).collect();
        let (x, _) = vectors(dim);
        let idx: Vec<u32> = vec![5, 0, 7, 5];
        let mut out = vec![0.0f32; idx.len()];
        l2_sq_one_to_many_indexed(&x, &flat, dim, &idx, &mut out);
        for (slot, &i) in out.iter().zip(&idx) {
            let expect = l2_sq_reference(&x, &flat[i as usize * dim..(i as usize + 1) * dim]);
            assert!((slot - expect).abs() <= 1e-3 * expect.max(1.0));
        }
    }

    #[test]
    fn cached_variant_matches_direct() {
        let dim = 48;
        let n = 5;
        let (x, _) = vectors(dim);
        let rows: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.29).cos()).collect();
        let x_norm: f32 = x.iter().map(|v| v * v).sum();
        let row_norms: Vec<f32> = (0..n)
            .map(|i| rows[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum())
            .collect();
        let mut cached = vec![0.0f32; n];
        l2_sq_one_to_many_cached(&x, x_norm, &rows, &row_norms, &mut cached);
        let mut direct = vec![0.0f32; n];
        l2_sq_one_to_many(&x, &rows, &mut direct);
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c - d).abs() <= 1e-2 * d.max(1.0), "{c} vs {d}");
        }
    }

    #[test]
    #[should_panic(expected = "block shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        l2_sq_one_to_many(&[1.0, 2.0], &[0.0; 5], &mut out);
    }

    #[test]
    fn zero_dimension_blocks_are_all_zero() {
        let mut out = vec![9.0f32; 4];
        l2_sq_one_to_many(&[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }
}
