//! Runtime-dispatched SIMD distance kernels.
//!
//! Every hot loop in the workspace — GK-means candidate evaluation (Alg. 2),
//! the intra-cluster refinement of graph construction (Alg. 3), NN-Descent
//! local joins, NSW/greedy ANN search and the Lloyd/Elkan/Hamerly baselines —
//! bottoms out in a handful of dense `f32` primitives.  This module provides
//! explicit SIMD implementations of those primitives behind one-time runtime
//! CPU-feature detection:
//!
//! * **x86-64**: AVX2 + FMA (8-lane `f32`, fused multiply-add), selected via
//!   `is_x86_feature_detected!` on first use;
//! * **aarch64**: NEON (4-lane `f32`), selected via
//!   `is_aarch64_feature_detected!`;
//! * **everything else** (or when detection fails): the portable 4-way
//!   unrolled scalar kernels the workspace originally shipped.
//!
//! The selected [`Kernels`] table is cached in a [`OnceLock`], so detection
//! happens exactly once per process and every later call is a single indirect
//! call.  On top of the pairwise kernels the table carries **batched
//! one-to-many** kernels (`l2_sq_one_to_many`, `dot_one_to_many`) that score
//! one query against a whole block of candidate rows inside a single
//! feature-enabled function — amortising both the dispatch and the query
//! loads across the block.  The free functions in this module add shape
//! checking, an indexed (gather) variant for non-contiguous candidate sets,
//! and a norm-cached variant exploiting `‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²`.
//!
//! The widest tier is **many-to-many**: `l2_sq_many_to_many` /
//! `dot_many_to_many` compute an `m × k` tile of distances (or dot products)
//! between a block of query rows and a block of candidate rows.  The SIMD
//! levels register-block the tile (4 queries × 2 candidates per micro-kernel
//! step, so every loaded candidate vector is reused across four queries and
//! vice versa) and cache-tile the candidate matrix so it is streamed from L2
//! instead of re-fetched from memory once per query — the GEMM-style
//! structure of `‖x‖² − 2·X·Cᵀ + ‖c‖²` without giving up the
//! cancellation-free direct-subtraction form.  On top of the tile kernels sit
//! [`assign_block`] (argmin-fused assignment that never materialises the full
//! `n × k` distance matrix, with sticky tie-breaking and second-best output),
//! [`assign_block_cached`] (the fused dot expansion with a per-sample
//! fallback to the direct tile when cancellation could flip the argmin) and
//! [`assign_accumulate_block`] (the single-pass epoch sweep: while the argmin
//! tile folds, each query row is added — widened to `f64` through the
//! element-wise [`add_assign_f64_f32`] kernel — into its winning centroid's
//! sum, so k-means epochs never re-stream the data for the update step).
//!
//! **Tiling invariant:** inside a tile every `(query, candidate)` pair is
//! accumulated in its own register chain with a fixed summation order (wide
//! lanes over the dimension in ascending order, one horizontal sum, then the
//! scalar tail) that does not depend on where the pair falls in a tile or on
//! the tile shape.  Distances produced by `l2_sq_many_to_many` are therefore
//! bit-identical across any blocking of the same inputs, which is what makes
//! the fused [`assign_block`] provably agree with materialise-then-scan.
//!
//! # Numerical contract
//!
//! All kernels compute the same mathematical quantity as the scalar
//! reference; only the summation order differs (lane-parallel instead of
//! 4-way unrolled), so results may differ by normal floating-point
//! reassociation error.  The property suite (`tests/kernel_properties.rs`)
//! pins the agreement to a 1e-3 relative tolerance across every remainder
//! lane count and unaligned slices.

use std::sync::OnceLock;

pub mod scalar;

// The SIMD levels are crate-private: their safe entry points are only sound
// after feature detection, so the only way to reach them is through
// [`active`] / [`available`], which perform that detection.
#[cfg(target_arch = "aarch64")]
pub(crate) mod neon;
#[cfg(target_arch = "x86_64")]
pub(crate) mod x86;

/// Result of the fused dot-product/norms kernel: one pass over a pair of
/// vectors yielding `a·b`, `‖a‖²` and `‖b‖²` (the three quantities cosine
/// distance needs).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DotNorms {
    /// `a · b`
    pub dot: f32,
    /// `‖a‖²`
    pub norm_a_sq: f32,
    /// `‖b‖²`
    pub norm_b_sq: f32,
}

/// Signature of the asymmetric SQ8 one-to-many kernel:
/// `(adjusted_query, scales, codes, out)` — see
/// [`Kernels::l2_sq_sq8_one_to_many`] for the full contract.
pub type Sq8OneToManyFn = fn(&[f32], &[f32], &[u8], &mut [f32]);

/// A dispatch table of distance kernels for one instruction-set level.
///
/// Pairwise entries take two equal-length slices (callers guarantee the
/// shorter length wins, mirroring [`crate::distance::l2_sq`]).  One-to-many
/// entries take a query `x` of length `d`, a row-major block `rows` of
/// `out.len()` rows of length `d`, and write one result per row.
#[derive(Clone, Copy, Debug)]
pub struct Kernels {
    /// Human-readable name of the instruction-set level (`"scalar"`,
    /// `"avx2+fma"`, `"neon"`).
    pub name: &'static str,
    /// Squared Euclidean distance between two slices.
    pub l2_sq: fn(&[f32], &[f32]) -> f32,
    /// Dot product of two slices.
    pub dot: fn(&[f32], &[f32]) -> f32,
    /// Mixed-precision dot product between an `f64` accumulator vector and an
    /// `f32` sample row (the boost-k-means composite·sample product).
    pub dot_f64_f32: fn(&[f64], &[f32]) -> f64,
    /// One-pass `a·b`, `‖a‖²`, `‖b‖²`.
    pub fused_dot_norms: fn(&[f32], &[f32]) -> DotNorms,
    /// Squared Euclidean distances from one query to a contiguous block of
    /// rows.
    pub l2_sq_one_to_many: fn(&[f32], &[f32], &mut [f32]),
    /// Asymmetric SQ8 squared distances from one adjusted query to a
    /// contiguous block of `u8` code rows: `(aq, scales, codes, out)` with
    /// `out[r] = Σ_i (aq[i] − scales[i] · codes[r·d + i])²`.  The `u8` codes
    /// widen to `f32` lane-by-lane inside the kernel, so the de-quantised row
    /// is never materialised and the memory stream is one byte per value.
    pub l2_sq_sq8_one_to_many: Sq8OneToManyFn,
    /// Dot products from one query to a contiguous block of rows.
    pub dot_one_to_many: fn(&[f32], &[f32], &mut [f32]),
    /// Register-blocked, cache-tiled `m × k` tile of squared Euclidean
    /// distances: `(xs, rows, d, out)` with `xs` holding `m` query rows,
    /// `rows` holding `k` candidate rows and `out[q * k + c]` receiving
    /// `‖xs[q] − rows[c]‖²` (direct subtraction, cancellation-free).
    pub l2_sq_many_to_many: fn(&[f32], &[f32], usize, &mut [f32]),
    /// Register-blocked, cache-tiled `m × k` tile of dot products (the
    /// `X·Cᵀ` of the fused norm expansion): same shape contract as
    /// [`Kernels::l2_sq_many_to_many`].
    pub dot_many_to_many: fn(&[f32], &[f32], usize, &mut [f32]),
    /// Element-wise accumulate `acc[i] += row[i]` with the `f32` row widened
    /// to `f64` — the centroid-sum update of the fused assignment sweep.
    /// Purely element-wise (no reduction), so every dispatch level produces
    /// bit-identical accumulators; only throughput differs.
    pub add_assign_f64_f32: fn(&mut [f64], &[f32]),
}

static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();

/// The kernel table selected for this process.
///
/// The first call performs CPU-feature detection; every later call is a
/// cached load.  The selection is deterministic per process (and per
/// machine): the widest supported level wins.
#[inline]
pub fn active() -> &'static Kernels {
    ACTIVE.get_or_init(select)
}

/// Detection logic behind [`active`]; kept separate so tests can assert that
/// repeated evaluation is stable.
fn select() -> &'static Kernels {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return &x86::KERNELS;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            return &neon::KERNELS;
        }
    }
    &scalar::KERNELS
}

/// Every kernel table usable on this machine: the scalar fallback plus the
/// SIMD level when the CPU supports it.  Used by the property suite to check
/// all implementations against the reference, whatever machine runs the
/// tests.
pub fn available() -> Vec<&'static Kernels> {
    let mut sets: Vec<&'static Kernels> = vec![&scalar::KERNELS];
    let selected = active();
    if !std::ptr::eq(selected, &scalar::KERNELS) {
        sets.push(selected);
    }
    sets
}

/// Index types accepted by the indexed one-to-many kernels.
pub trait RowIndex: Copy {
    /// The index as `usize`.
    fn as_index(self) -> usize;
}

impl RowIndex for usize {
    #[inline]
    fn as_index(self) -> usize {
        self
    }
}

impl RowIndex for u32 {
    #[inline]
    fn as_index(self) -> usize {
        self as usize
    }
}

/// Squared Euclidean distances from `x` to every row of the contiguous
/// row-major block `rows`, written into `out` (one value per row).
///
/// # Panics
///
/// Panics when `rows.len() != x.len() * out.len()`.
#[inline]
pub fn l2_sq_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    (active().l2_sq_one_to_many)(x, rows, out);
}

/// Dot products from `x` to every row of the contiguous row-major block
/// `rows`, written into `out`.
///
/// # Panics
///
/// Panics when `rows.len() != x.len() * out.len()`.
#[inline]
pub fn dot_one_to_many(x: &[f32], rows: &[f32], out: &mut [f32]) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    (active().dot_one_to_many)(x, rows, out);
}

/// Asymmetric SQ8 squared distances from the adjusted query `aq` (the query
/// with the quantizer's per-dimension minimums already subtracted) to every
/// `u8` code row of `codes`, written into `out` (one value per row):
/// `out[r] = Σ_i (aq[i] − scales[i] · codes[r·d + i])²` where `d = aq.len()`.
///
/// This is the approximate-scan primitive of the quantized serving tier: the
/// de-quantised value `min[i] + scales[i]·code` appears only through the
/// algebraic rewrite `(q[i] − min[i]) − scales[i]·code`, so the panel stream
/// is one byte per value — 4× less memory traffic than the `f32` scan.
///
/// # Panics
///
/// Panics when `codes.len() != aq.len() * out.len()` or
/// `scales.len() != aq.len()`.
#[inline]
pub fn l2_sq_sq8_one_to_many(aq: &[f32], scales: &[f32], codes: &[u8], out: &mut [f32]) {
    assert_eq!(
        codes.len(),
        aq.len() * out.len(),
        "block shape mismatch: {} codes is not {} rows of dim {}",
        codes.len(),
        out.len(),
        aq.len()
    );
    assert_eq!(
        scales.len(),
        aq.len(),
        "scale vector length {} does not match the query dimensionality {}",
        scales.len(),
        aq.len()
    );
    (active().l2_sq_sq8_one_to_many)(aq, scales, codes, out);
}

/// Cache lines of the *next* gathered row to request ahead of time.  Four
/// lines (256 B) cover a d=64 `f32` row entirely and give the hardware
/// prefetcher a head start on longer rows; beyond that the sequential
/// streamer takes over.
const GATHER_PREFETCH_LINES: usize = 4;

/// Best-effort software prefetch of the cache line holding `p` plus the next
/// `lines − 1` lines.  A hint only: never faults, compiles to nothing on
/// architectures without a stable prefetch primitive.
#[inline(always)]
fn prefetch_lines<T>(p: *const T, bytes: usize) {
    let lines = bytes.div_ceil(64).min(GATHER_PREFETCH_LINES);
    #[cfg(target_arch = "x86_64")]
    {
        // `_mm_prefetch` is part of SSE, which x86-64 guarantees; it is a
        // pure hint, so issuing it outside any feature-detected region is
        // sound.
        #[allow(unsafe_code)]
        for l in 0..lines {
            unsafe {
                core::arch::x86_64::_mm_prefetch(
                    p.cast::<i8>().add(l * 64),
                    core::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // aarch64 has no stable prefetch intrinsic; `prfm pldl1keep` via
        // inline asm is the canonical spelling and likewise a pure hint.
        #[allow(unsafe_code)]
        for l in 0..lines {
            unsafe {
                core::arch::asm!(
                    "prfm pldl1keep, [{addr}]",
                    addr = in(reg) p.cast::<u8>().wrapping_add(l * 64),
                    options(nostack, preserves_flags, readonly)
                );
            }
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        let _ = (p, lines);
    }
}

/// Squared Euclidean distances from `x` to the rows of `flat` (row-major,
/// dimensionality `dim`) selected by `indices`, written into `out`.
///
/// This is the gather form used when the candidate set is not contiguous
/// (GK-means candidate clusters, graph neighbour expansions): the dispatch is
/// resolved once for the whole batch, each row goes through the SIMD pairwise
/// kernel, and the head of the *next* gathered row is software-prefetched
/// while the current row is being scored — the gather order is data-dependent,
/// so the hardware stride prefetcher cannot anticipate it.
///
/// # Panics
///
/// Panics when `out.len() != indices.len()` or an index is out of range.
#[inline]
pub fn l2_sq_one_to_many_indexed<I: RowIndex>(
    x: &[f32],
    flat: &[f32],
    dim: usize,
    indices: &[I],
    out: &mut [f32],
) {
    assert_eq!(indices.len(), out.len(), "index/output length mismatch");
    let kernel = active().l2_sq;
    let row_bytes = dim * core::mem::size_of::<f32>();
    if let Some(&first) = indices.first() {
        let i = first.as_index();
        prefetch_lines(flat[i * dim..(i + 1) * dim].as_ptr(), row_bytes);
    }
    for (pos, (slot, &index)) in out.iter_mut().zip(indices).enumerate() {
        if let Some(next) = indices.get(pos + 1) {
            let n = next.as_index();
            prefetch_lines(flat[n * dim..(n + 1) * dim].as_ptr(), row_bytes);
        }
        let i = index.as_index();
        *slot = kernel(x, &flat[i * dim..(i + 1) * dim]);
    }
}

/// Mixed-precision gather form: `out[j] = flat[indices[j]] · x` where `flat`
/// holds `f64` rows (the boost-k-means composite vectors) and `x` is an `f32`
/// sample.  Same dispatch-once + prefetch-ahead structure as
/// [`l2_sq_one_to_many_indexed`].
///
/// # Panics
///
/// Panics when `out.len() != indices.len()` or an index is out of range.
#[inline]
pub fn dot_f64_f32_one_to_many_indexed<I: RowIndex>(
    x: &[f32],
    flat: &[f64],
    dim: usize,
    indices: &[I],
    out: &mut [f64],
) {
    assert_eq!(indices.len(), out.len(), "index/output length mismatch");
    let kernel = active().dot_f64_f32;
    let row_bytes = dim * core::mem::size_of::<f64>();
    if let Some(&first) = indices.first() {
        let i = first.as_index();
        prefetch_lines(flat[i * dim..(i + 1) * dim].as_ptr(), row_bytes);
    }
    for (pos, (slot, &index)) in out.iter_mut().zip(indices).enumerate() {
        if let Some(next) = indices.get(pos + 1) {
            let n = next.as_index();
            prefetch_lines(flat[n * dim..(n + 1) * dim].as_ptr(), row_bytes);
        }
        let i = index.as_index();
        *slot = kernel(&flat[i * dim..(i + 1) * dim], x);
    }
}

/// Norm-cached batched distances: `out[i] = max(0, ‖x‖² − 2·x·rows[i] +
/// row_norms[i])` with `‖x‖²` and the row norms supplied by the caller.
///
/// The assignment steps cache `‖x‖²` per sample across all iterations and the
/// centroid norms once per iteration, so each sample↔centroid evaluation
/// costs a single dot product.  Cancellation can drive the expansion slightly
/// negative; results are clamped to zero like
/// [`crate::distance::l2_sq_via_dot`].
///
/// # Panics
///
/// Panics when the block shape or the norm count disagrees with `out`.
#[inline]
pub fn l2_sq_one_to_many_cached(
    x: &[f32],
    x_norm_sq: f32,
    rows: &[f32],
    row_norms: &[f32],
    out: &mut [f32],
) {
    assert_eq!(
        rows.len(),
        x.len() * out.len(),
        "block shape mismatch: {} values is not {} rows of dim {}",
        rows.len(),
        out.len(),
        x.len()
    );
    assert_eq!(row_norms.len(), out.len(), "norm cache length mismatch");
    (active().dot_one_to_many)(x, rows, out);
    for (o, &c_norm) in out.iter_mut().zip(row_norms) {
        *o = (x_norm_sq - 2.0 * *o + c_norm).max(0.0);
    }
}

/// Validates the `m × k` tile shape shared by the many-to-many entry points
/// and returns `(m, k)`.  A zero dimensionality is degenerate (every distance
/// and dot product is 0) and reported as `None`.
#[inline]
fn tile_shape(xs: &[f32], rows: &[f32], d: usize, out_len: usize) -> Option<(usize, usize)> {
    if d == 0 {
        return None;
    }
    assert_eq!(
        xs.len() % d,
        0,
        "query block of {} values is not whole rows of dim {d}",
        xs.len()
    );
    assert_eq!(
        rows.len() % d,
        0,
        "candidate block of {} values is not whole rows of dim {d}",
        rows.len()
    );
    let m = xs.len() / d;
    let k = rows.len() / d;
    assert_eq!(
        out_len,
        m * k,
        "tile shape mismatch: output of {out_len} values is not {m} × {k}"
    );
    Some((m, k))
}

/// Squared Euclidean distances between every query row of `xs` and every
/// candidate row of `rows` (both row-major with dimensionality `d`), written
/// as the row-major `m × k` tile `out[q * k + c] = ‖xs[q] − rows[c]‖²`.
///
/// This is the direct-subtraction tile: no norm expansion, so there is no
/// cancellation and results are safe for exhaustive exact assignment.  Within
/// one dispatch level results are bit-identical across any blocking of the
/// same inputs (see the module docs).
///
/// # Panics
///
/// Panics when `xs` or `rows` is not whole rows of `d` values, or when
/// `out.len()` is not `m * k`.  When `d == 0` the tile is all zeros and `out`
/// is filled accordingly.
#[inline]
pub fn l2_sq_many_to_many(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if tile_shape(xs, rows, d, out.len()).is_none() {
        out.fill(0.0);
        return;
    }
    (active().l2_sq_many_to_many)(xs, rows, d, out);
}

/// Dot products between every query row of `xs` and every candidate row of
/// `rows`, written as the row-major `m × k` tile `out[q * k + c] =
/// xs[q] · rows[c]` — the `X·Cᵀ` building block of the fused norm expansion.
///
/// # Panics
///
/// Same shape contract as [`l2_sq_many_to_many`].
#[inline]
pub fn dot_many_to_many(xs: &[f32], rows: &[f32], d: usize, out: &mut [f32]) {
    if tile_shape(xs, rows, d, out.len()).is_none() {
        out.fill(0.0);
        return;
    }
    (active().dot_many_to_many)(xs, rows, d, out);
}

/// Norm-cached many-to-many tile: `out[q * k + c] = max(0, x_norms[q] −
/// 2 · xs[q]·rows[c] + row_norms[c])` with all norms supplied by the caller.
///
/// One GEMM-style dot tile plus an `O(m·k)` rank-1 correction — the cheapest
/// way to fill a large distance tile when norms are already cached.  Shares
/// the cancellation caveat of [`l2_sq_one_to_many_cached`]; use
/// [`assign_block_cached`] when the results feed an argmin.
///
/// # Panics
///
/// Panics on a tile shape mismatch or when a norm count disagrees.
pub fn l2_sq_many_to_many_cached(
    xs: &[f32],
    x_norms: &[f32],
    rows: &[f32],
    row_norms: &[f32],
    d: usize,
    out: &mut [f32],
) {
    let Some((m, k)) = tile_shape(xs, rows, d, out.len()) else {
        out.fill(0.0);
        return;
    };
    assert_eq!(x_norms.len(), m, "query norm cache length mismatch");
    assert_eq!(row_norms.len(), k, "candidate norm cache length mismatch");
    (active().dot_many_to_many)(xs, rows, d, out);
    for (q, tile_row) in out.chunks_exact_mut(k).enumerate() {
        let xn = x_norms[q];
        for (o, &cn) in tile_row.iter_mut().zip(row_norms) {
            *o = (xn - 2.0 * *o + cn).max(0.0);
        }
    }
}

/// Queries per assignment panel: small enough that the panel of distances
/// stays far inside L1 next to the candidate tile, large enough to amortise
/// the per-panel fold.
const ASSIGN_M_PANEL: usize = 16;
/// Candidates per assignment panel (panel buffer = 16 × 256 × 4 B = 16 KiB).
const ASSIGN_K_PANEL: usize = 256;

/// Fold one panel row into the running `(best, best_dist, second_dist)`
/// argmin state, also capturing the distance to `current` when it appears in
/// this panel.  Scanning is in ascending candidate order with strict `<`, so
/// the fold selects the *first* index attaining the minimum — combined with
/// the sticky correction in [`assign_block_core`] this reproduces the
/// semantics of a scan that starts from the current assignment.
#[inline]
fn fold_panel_row(
    panel_row: &[f32],
    c0: usize,
    current: usize,
    best: &mut usize,
    best_d: &mut f32,
    second_d: &mut f32,
    current_d: &mut f32,
) {
    for (off, &dist) in panel_row.iter().enumerate() {
        let c = c0 + off;
        if dist < *best_d {
            *second_d = *best_d;
            *best_d = dist;
            *best = c;
        } else if dist < *second_d {
            *second_d = dist;
        }
        if c == current {
            *current_d = dist;
        }
    }
}

/// Shared panel loop of [`assign_block`] / [`assign_block_cached`] /
/// [`assign_accumulate_block`]: `fill_panel(query_range, candidate_range,
/// panel)` materialises one distance panel; the fold never keeps more than
/// one panel alive.  `after_panel(q0, winners)` fires once per query panel
/// after its outputs are final (sticky-tie correction applied), with
/// `winners[qi]` the committed candidate index of query `q0 + qi` — the hook
/// the fused accumulation rides on while the query rows are still cache-hot.
#[allow(clippy::too_many_arguments)]
fn assign_block_core(
    m: usize,
    k: usize,
    current: &[u32],
    out_idx: &mut [u32],
    out_dist: &mut [f32],
    out_second: &mut [f32],
    mut fill_panel: impl FnMut(core::ops::Range<usize>, core::ops::Range<usize>, &mut [f32]),
    mut after_panel: impl FnMut(usize, &[usize]),
) {
    let mut panel = [0.0f32; ASSIGN_M_PANEL * ASSIGN_K_PANEL];
    // Per-panel fold state lives on the stack (the panel height is the
    // compile-time constant ASSIGN_M_PANEL) — this loop runs once per 16
    // queries of every assignment pass, so no allocations here.
    let mut best = [usize::MAX; ASSIGN_M_PANEL];
    let mut best_d = [f32::INFINITY; ASSIGN_M_PANEL];
    let mut second_d = [f32::INFINITY; ASSIGN_M_PANEL];
    let mut current_d = [f32::INFINITY; ASSIGN_M_PANEL];
    let mut q0 = 0usize;
    while q0 < m {
        let q1 = (q0 + ASSIGN_M_PANEL).min(m);
        let mb = q1 - q0;
        best[..mb].fill(usize::MAX);
        best_d[..mb].fill(f32::INFINITY);
        second_d[..mb].fill(f32::INFINITY);
        current_d[..mb].fill(f32::INFINITY);
        let mut c0 = 0usize;
        while c0 < k {
            let c1 = (c0 + ASSIGN_K_PANEL).min(k);
            let kb = c1 - c0;
            let panel = &mut panel[..mb * kb];
            fill_panel(q0..q1, c0..c1, panel);
            for (qi, panel_row) in panel.chunks_exact(kb).enumerate() {
                fold_panel_row(
                    panel_row,
                    c0,
                    (current[q0 + qi] as usize).min(k - 1),
                    &mut best[qi],
                    &mut best_d[qi],
                    &mut second_d[qi],
                    &mut current_d[qi],
                );
            }
            c0 = c1;
        }
        for qi in 0..mb {
            let cur = (current[q0 + qi] as usize).min(k - 1);
            // Sticky ties: when the current assignment attains the minimum it
            // wins, and the displaced first-minimum index shows that at least
            // two candidates share the best distance.
            if best[qi] != cur && current_d[qi] == best_d[qi] {
                best[qi] = cur;
                second_d[qi] = best_d[qi];
            }
            out_idx[q0 + qi] = best[qi] as u32;
            out_dist[q0 + qi] = best_d[qi];
            out_second[q0 + qi] = second_d[qi];
        }
        after_panel(q0, &best[..mb]);
        q0 = q1;
    }
}

/// Argmin-fused blocked assignment: for every query row of `xs` find the
/// closest candidate row of `rows` by squared Euclidean distance, without
/// materialising the full `m × k` distance matrix (distances are computed in
/// 16 × 256 panels through the tiled kernel and folded immediately).
///
/// Tie-breaking is *sticky*: a tie between `current[q]` and any other
/// candidate keeps the query where it is; among other tied candidates the
/// smallest index wins — exactly the semantics of scanning a materialised
/// row starting from the current assignment.  `current` entries are clamped
/// to `k − 1` (callers with no meaningful previous assignment pass zeros).
///
/// Outputs per query: the winning index, its squared distance, and the
/// second-best squared distance (`∞` when `k == 1`) — the latter is what
/// Hamerly-style bound seeding needs for free.
///
/// The labels this produces are bit-identical to materialising the tile with
/// [`l2_sq_many_to_many`] and scanning, for every dispatch level (see the
/// module docs for why).
///
/// ```
/// use vecstore::kernels::assign_block;
///
/// // two 2-d queries against two candidate rows
/// let xs = [0.0f32, 0.1, 5.0, 5.0];
/// let rows = [0.0f32, 0.0, 5.0, 4.0];
/// let current = [1u32, 1];
/// let (mut idx, mut dist, mut second) = ([0u32; 2], [0.0f32; 2], [0.0f32; 2]);
/// assign_block(&xs, &rows, 2, &current, &mut idx, &mut dist, &mut second);
/// assert_eq!(idx, [0, 1]); // each query lands on its nearest row
/// assert_eq!(dist, [0.1f32 * 0.1, 1.0]);
/// ```
///
/// # Panics
///
/// Panics when `d == 0`, when a block is not whole rows of `d` values, when
/// `rows` is empty, or when the output/`current` lengths disagree with the
/// number of query rows.
pub fn assign_block(
    xs: &[f32],
    rows: &[f32],
    d: usize,
    current: &[u32],
    out_idx: &mut [u32],
    out_dist: &mut [f32],
    out_second: &mut [f32],
) {
    assert!(d > 0, "assign_block requires a positive dimensionality");
    assert_eq!(xs.len() % d, 0, "query block is not whole rows of dim {d}");
    assert_eq!(
        rows.len() % d,
        0,
        "candidate block is not whole rows of dim {d}"
    );
    let m = xs.len() / d;
    let k = rows.len() / d;
    assert!(k > 0, "assign_block requires at least one candidate row");
    assert_eq!(current.len(), m, "current assignment length mismatch");
    assert_eq!(out_idx.len(), m, "index output length mismatch");
    assert_eq!(out_dist.len(), m, "distance output length mismatch");
    assert_eq!(out_second.len(), m, "second-best output length mismatch");
    let kernel = active().l2_sq_many_to_many;
    assign_block_core(
        m,
        k,
        current,
        out_idx,
        out_dist,
        out_second,
        |qs, cs, panel| {
            kernel(
                &xs[qs.start * d..qs.end * d],
                &rows[cs.start * d..cs.end * d],
                d,
                panel,
            );
        },
        |_, _| {},
    );
}

/// Element-wise `acc[i] += row[i]` with the `f32` row widened to `f64`,
/// through the dispatched kernel — the accumulation primitive shared by the
/// fused assignment sweep and the centroid recomputation.  Element-wise adds
/// have no summation order, so all dispatch levels agree bit for bit.
///
/// Accumulates over the shorter of the two lengths, mirroring the pairwise
/// distance kernels.
#[inline]
pub fn add_assign_f64_f32(acc: &mut [f64], row: &[f32]) {
    (active().add_assign_f64_f32)(acc, row);
}

/// Argmin-fused blocked assignment that **also accumulates the centroid
/// update**: behaves exactly like [`assign_block`] (same outputs, same sticky
/// tie-breaking, bit-identical labels) and additionally, for every query row
/// `q` with winning candidate `c`, performs `sums[c*d..] += xs[q*d..]`
/// (widened to `f64`) and `counts[c] += 1`.
///
/// The accumulation happens panel-by-panel right after each 16-query panel
/// commits its winners, while those query rows are still in L1/L2 from the
/// distance tile — so a Lloyd/GK-means⁻ epoch makes **one pass over the data
/// instead of two** (no re-streaming for the centroid update step).
///
/// Within one call the accumulation order is ascending query index; callers
/// that split a dataset into row blocks and merge per-block partial
/// accumulators in fixed block order therefore obtain `f64` sums that are
/// independent of how blocks were scheduled across threads.
///
/// `sums` and `counts` are accumulated into, not overwritten: zero them for a
/// fresh epoch.
///
/// ```
/// use vecstore::kernels::assign_accumulate_block;
///
/// let xs = [0.0f32, 0.2, 4.0, 4.0]; // two 2-d queries
/// let rows = [0.0f32, 0.0, 4.0, 4.0]; // two candidate rows
/// let current = [0u32, 0];
/// let (mut idx, mut dist, mut second) = ([0u32; 2], [0.0f32; 2], [0.0f32; 2]);
/// let (mut sums, mut counts) = ([0.0f64; 4], [0u64; 2]);
/// assign_accumulate_block(
///     &xs, &rows, 2, &current, &mut idx, &mut dist, &mut second, &mut sums, &mut counts,
/// );
/// assert_eq!(idx, [0, 1]);
/// assert_eq!(counts, [1, 1]); // each winner received its query row
/// assert_eq!(&sums[2..], &[4.0, 4.0]); // cluster 1's sum is query 1
/// ```
///
/// # Panics
///
/// Panics on the [`assign_block`] contract violations, or when
/// `sums.len() != k * d` or `counts.len() != k`.
#[allow(clippy::too_many_arguments)]
pub fn assign_accumulate_block(
    xs: &[f32],
    rows: &[f32],
    d: usize,
    current: &[u32],
    out_idx: &mut [u32],
    out_dist: &mut [f32],
    out_second: &mut [f32],
    sums: &mut [f64],
    counts: &mut [u64],
) {
    assert!(
        d > 0,
        "assign_accumulate_block requires a positive dimensionality"
    );
    assert_eq!(xs.len() % d, 0, "query block is not whole rows of dim {d}");
    assert_eq!(
        rows.len() % d,
        0,
        "candidate block is not whole rows of dim {d}"
    );
    let m = xs.len() / d;
    let k = rows.len() / d;
    assert!(
        k > 0,
        "assign_accumulate_block requires at least one candidate row"
    );
    assert_eq!(current.len(), m, "current assignment length mismatch");
    assert_eq!(out_idx.len(), m, "index output length mismatch");
    assert_eq!(out_dist.len(), m, "distance output length mismatch");
    assert_eq!(out_second.len(), m, "second-best output length mismatch");
    assert_eq!(
        sums.len(),
        k * d,
        "centroid sum accumulator length mismatch"
    );
    assert_eq!(
        counts.len(),
        k,
        "centroid count accumulator length mismatch"
    );
    let kernel = active().l2_sq_many_to_many;
    let add = active().add_assign_f64_f32;
    assign_block_core(
        m,
        k,
        current,
        out_idx,
        out_dist,
        out_second,
        |qs, cs, panel| {
            kernel(
                &xs[qs.start * d..qs.end * d],
                &rows[cs.start * d..cs.end * d],
                d,
                panel,
            );
        },
        |q0, winners| {
            for (qi, &c) in winners.iter().enumerate() {
                let q = q0 + qi;
                counts[c] += 1;
                add(&mut sums[c * d..(c + 1) * d], &xs[q * d..(q + 1) * d]);
            }
        },
    );
}

/// Cancellation guard of [`assign_block_cached`]: the fused expansion
/// `‖x‖² − 2·x·c + ‖c‖²` carries an absolute error that scales with the
/// magnitudes of the cancelled terms (and mildly with the dimension through
/// the dot-product accumulation), not with the distance itself.  When the
/// best/second-best gap is within this bound the expansion cannot be trusted
/// to rank the two candidates and the direct tile decides instead.
#[inline]
fn cancellation_guard(x_norm_sq: f32, c_norm_sq: f32, d: usize) -> f32 {
    f32::EPSILON * (x_norm_sq + c_norm_sq) * (8.0 + d as f32 / 8.0)
}

/// Norm-cached argmin-fused blocked assignment with cancellation
/// compensation.
///
/// Distances are evaluated through the GEMM-style dot tile plus the cached
/// norm expansion (clamped at zero), which makes each evaluation a single
/// fused multiply-add stream.  Because the expansion cancels two large terms
/// in `f32`, a query whose best/second-best gap falls inside the
/// `cancellation_guard` error bound is **re-scored through the direct
/// subtraction tile**, so the returned assignment always matches
/// [`assign_block`] — the property suite enforces this on large-norm
/// descriptors where the naive expansion demonstrably flips labels.
///
/// Same outputs, tie-breaking and shape contract as [`assign_block`], plus
/// `x_norms[q] = ‖xs[q]‖²` and `row_norms[c] = ‖rows[c]‖²` supplied by the
/// caller.
///
/// # Panics
///
/// Panics on the [`assign_block`] contract violations or mismatched norm
/// cache lengths.
#[allow(clippy::too_many_arguments)]
pub fn assign_block_cached(
    xs: &[f32],
    x_norms: &[f32],
    rows: &[f32],
    row_norms: &[f32],
    d: usize,
    current: &[u32],
    out_idx: &mut [u32],
    out_dist: &mut [f32],
    out_second: &mut [f32],
) {
    assert!(
        d > 0,
        "assign_block_cached requires a positive dimensionality"
    );
    assert_eq!(xs.len() % d, 0, "query block is not whole rows of dim {d}");
    assert_eq!(
        rows.len() % d,
        0,
        "candidate block is not whole rows of dim {d}"
    );
    let m = xs.len() / d;
    let k = rows.len() / d;
    assert!(
        k > 0,
        "assign_block_cached requires at least one candidate row"
    );
    assert_eq!(x_norms.len(), m, "query norm cache length mismatch");
    assert_eq!(row_norms.len(), k, "candidate norm cache length mismatch");
    assert_eq!(current.len(), m, "current assignment length mismatch");
    assert_eq!(out_idx.len(), m, "index output length mismatch");
    assert_eq!(out_dist.len(), m, "distance output length mismatch");
    assert_eq!(out_second.len(), m, "second-best output length mismatch");
    let dot_kernel = active().dot_many_to_many;
    assign_block_core(
        m,
        k,
        current,
        out_idx,
        out_dist,
        out_second,
        |qs, cs, panel| {
            dot_kernel(
                &xs[qs.start * d..qs.end * d],
                &rows[cs.start * d..cs.end * d],
                d,
                panel,
            );
            let kb = cs.len();
            for (qi, tile_row) in panel.chunks_exact_mut(kb).enumerate() {
                let xn = x_norms[qs.start + qi];
                for (o, &cn) in tile_row.iter_mut().zip(&row_norms[cs.clone()]) {
                    *o = (xn - 2.0 * *o + cn).max(0.0);
                }
            }
        },
        |_, _| {},
    );
    // Compensation pass: re-run any query whose winning margin the expansion
    // cannot certify through the exact (direct-subtraction) tile.  Each
    // fallback is a 1 × k call into the same tile kernel `assign_block`
    // uses, so fallen-back queries agree with the direct path bit-for-bit.
    // The guard is evaluated against the *largest* candidate norm, not the
    // winner's: the ranking error of a near-tie is dominated by whichever of
    // the two contenders cancels hardest, and the runner-up's index is not
    // tracked — bounding by the panel maximum is conservative (it can only
    // trigger extra exact re-scores, never miss one the winner-norm form
    // would have caught).
    let max_row_norm = row_norms.iter().fold(0.0f32, |acc, &v| acc.max(v));
    let direct_kernel = active().l2_sq_many_to_many;
    for q in 0..m {
        let guard = cancellation_guard(x_norms[q], max_row_norm, d);
        if out_second[q] - out_dist[q] > guard {
            continue;
        }
        assign_block_core(
            1,
            k,
            &current[q..=q],
            &mut out_idx[q..=q],
            &mut out_dist[q..=q],
            &mut out_second[q..=q],
            |_, cs, panel| {
                direct_kernel(
                    &xs[q * d..(q + 1) * d],
                    &rows[cs.start * d..cs.end * d],
                    d,
                    panel,
                );
            },
            |_, _| {},
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::l2_sq_reference;

    fn vectors(len: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.71).cos() * 2.0).collect();
        (a, b)
    }

    #[test]
    fn dispatch_is_deterministic_per_process() {
        let first = active() as *const Kernels;
        for _ in 0..10 {
            assert!(std::ptr::eq(first, active()));
            assert_eq!(unsafe { &*first }.name, active().name);
        }
        assert!(std::ptr::eq(select(), active()), "re-selection must agree");
    }

    #[test]
    fn every_available_set_matches_the_reference() {
        for kernels in available() {
            for len in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100, 128, 257] {
                let (a, b) = vectors(len);
                let fast = (kernels.l2_sq)(&a, &b);
                let slow = l2_sq_reference(&a, &b);
                assert!(
                    (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                    "{} len={len}: {fast} vs {slow}",
                    kernels.name
                );
            }
        }
    }

    #[test]
    fn one_to_many_matches_pairwise() {
        let dim = 33;
        let n = 7;
        let (x, _) = vectors(dim);
        let rows: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.13).sin()).collect();
        let mut batched = vec![0.0f32; n];
        l2_sq_one_to_many(&x, &rows, &mut batched);
        for (i, &got) in batched.iter().enumerate() {
            let expect = l2_sq_reference(&x, &rows[i * dim..(i + 1) * dim]);
            assert!((got - expect).abs() <= 1e-3 * expect.max(1.0), "row {i}");
        }
    }

    #[test]
    fn indexed_variant_gathers_rows() {
        let dim = 12;
        let flat: Vec<f32> = (0..8 * dim).map(|i| i as f32 * 0.05).collect();
        let (x, _) = vectors(dim);
        let idx: Vec<u32> = vec![5, 0, 7, 5];
        let mut out = vec![0.0f32; idx.len()];
        l2_sq_one_to_many_indexed(&x, &flat, dim, &idx, &mut out);
        for (slot, &i) in out.iter().zip(&idx) {
            let expect = l2_sq_reference(&x, &flat[i as usize * dim..(i as usize + 1) * dim]);
            assert!((slot - expect).abs() <= 1e-3 * expect.max(1.0));
        }
    }

    #[test]
    fn cached_variant_matches_direct() {
        let dim = 48;
        let n = 5;
        let (x, _) = vectors(dim);
        let rows: Vec<f32> = (0..n * dim).map(|i| (i as f32 * 0.29).cos()).collect();
        let x_norm: f32 = x.iter().map(|v| v * v).sum();
        let row_norms: Vec<f32> = (0..n)
            .map(|i| rows[i * dim..(i + 1) * dim].iter().map(|v| v * v).sum())
            .collect();
        let mut cached = vec![0.0f32; n];
        l2_sq_one_to_many_cached(&x, x_norm, &rows, &row_norms, &mut cached);
        let mut direct = vec![0.0f32; n];
        l2_sq_one_to_many(&x, &rows, &mut direct);
        for (c, d) in cached.iter().zip(&direct) {
            assert!((c - d).abs() <= 1e-2 * d.max(1.0), "{c} vs {d}");
        }
    }

    #[test]
    #[should_panic(expected = "block shape mismatch")]
    fn shape_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        l2_sq_one_to_many(&[1.0, 2.0], &[0.0; 5], &mut out);
    }

    #[test]
    fn many_to_many_matches_pairwise() {
        let d = 19;
        let (m, k) = (5, 6);
        let xs: Vec<f32> = (0..m * d).map(|i| (i as f32 * 0.23).sin() * 2.0).collect();
        let rows: Vec<f32> = (0..k * d).map(|i| (i as f32 * 0.41).cos() * 1.5).collect();
        let mut tile = vec![0.0f32; m * k];
        l2_sq_many_to_many(&xs, &rows, d, &mut tile);
        let mut dots = vec![0.0f32; m * k];
        dot_many_to_many(&xs, &rows, d, &mut dots);
        for q in 0..m {
            for c in 0..k {
                let a = &xs[q * d..(q + 1) * d];
                let b = &rows[c * d..(c + 1) * d];
                let expect = l2_sq_reference(a, b);
                let got = tile[q * k + c];
                assert!((got - expect).abs() <= 1e-3 * expect.max(1.0), "({q},{c})");
                let dot_expect: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
                let dot_got = dots[q * k + c];
                assert!(
                    (dot_got - dot_expect).abs() <= 1e-3 * dot_expect.abs().max(1.0),
                    "dot ({q},{c})"
                );
            }
        }
    }

    #[test]
    fn many_to_many_cached_matches_direct_tile() {
        let d = 24;
        let (m, k) = (3, 4);
        let xs: Vec<f32> = (0..m * d).map(|i| (i as f32 * 0.31).sin()).collect();
        let rows: Vec<f32> = (0..k * d).map(|i| (i as f32 * 0.17).cos()).collect();
        let x_norms: Vec<f32> = (0..m)
            .map(|q| xs[q * d..(q + 1) * d].iter().map(|v| v * v).sum())
            .collect();
        let row_norms: Vec<f32> = (0..k)
            .map(|c| rows[c * d..(c + 1) * d].iter().map(|v| v * v).sum())
            .collect();
        let mut cached = vec![0.0f32; m * k];
        l2_sq_many_to_many_cached(&xs, &x_norms, &rows, &row_norms, d, &mut cached);
        let mut direct = vec![0.0f32; m * k];
        l2_sq_many_to_many(&xs, &rows, d, &mut direct);
        for (c, d_) in cached.iter().zip(&direct) {
            assert!((c - d_).abs() <= 1e-2 * d_.max(1.0), "{c} vs {d_}");
        }
    }

    #[test]
    fn assign_block_finds_closest_and_second() {
        let d = 2;
        // queries at (0,0) and (9,9); candidates at (0,1), (10,10), (5,5)
        let xs = [0.0, 0.0, 9.0, 9.0];
        let rows = [0.0, 1.0, 10.0, 10.0, 5.0, 5.0];
        let current = [0u32, 0];
        let mut idx = [9u32; 2];
        let mut dist = [0.0f32; 2];
        let mut second = [0.0f32; 2];
        assign_block(&xs, &rows, d, &current, &mut idx, &mut dist, &mut second);
        assert_eq!(idx, [0, 1]);
        assert_eq!(dist, [1.0, 2.0]);
        assert_eq!(second, [50.0, 32.0]);
    }

    #[test]
    fn assign_block_sticky_on_duplicate_candidates() {
        let d = 1;
        let xs = [3.0f32, 3.0];
        let rows = [5.0f32, 5.0]; // two identical candidates
        let current = [1u32, 0];
        let mut idx = [9u32; 2];
        let mut dist = [0.0f32; 2];
        let mut second = [0.0f32; 2];
        assign_block(&xs, &rows, d, &current, &mut idx, &mut dist, &mut second);
        assert_eq!(idx, [1, 0], "exact ties must keep the current assignment");
        assert_eq!(dist, second, "a tied pair shares best and second-best");
    }

    #[test]
    fn assign_block_single_candidate_has_infinite_second() {
        let xs = [1.0f32, 2.0];
        let rows = [0.0f32, 0.0];
        let current = [0u32];
        let mut idx = [9u32; 1];
        let mut dist = [0.0f32; 1];
        let mut second = [0.0f32; 1];
        assign_block(&xs, &rows, 2, &current, &mut idx, &mut dist, &mut second);
        assert_eq!(idx, [0]);
        assert_eq!(dist, [5.0]);
        assert_eq!(second, [f32::INFINITY]);
    }

    #[test]
    fn assign_block_cached_agrees_with_direct_assign() {
        let d = 8;
        let (m, k) = (40, 7);
        let xs: Vec<f32> = (0..m * d).map(|i| (i as f32 * 0.7).sin() * 4.0).collect();
        let rows: Vec<f32> = (0..k * d).map(|i| (i as f32 * 0.3).cos() * 4.0).collect();
        let x_norms: Vec<f32> = (0..m)
            .map(|q| xs[q * d..(q + 1) * d].iter().map(|v| v * v).sum())
            .collect();
        let row_norms: Vec<f32> = (0..k)
            .map(|c| rows[c * d..(c + 1) * d].iter().map(|v| v * v).sum())
            .collect();
        let current = vec![0u32; m];
        let mut idx_a = vec![0u32; m];
        let mut dist_a = vec![0.0f32; m];
        let mut sec_a = vec![0.0f32; m];
        assign_block(&xs, &rows, d, &current, &mut idx_a, &mut dist_a, &mut sec_a);
        let mut idx_b = vec![0u32; m];
        let mut dist_b = vec![0.0f32; m];
        let mut sec_b = vec![0.0f32; m];
        assign_block_cached(
            &xs,
            &x_norms,
            &rows,
            &row_norms,
            d,
            &current,
            &mut idx_b,
            &mut dist_b,
            &mut sec_b,
        );
        assert_eq!(idx_a, idx_b);
    }

    #[test]
    fn assign_accumulate_matches_assign_plus_manual_accumulate() {
        let d = 5;
        let (m, k) = (37, 6);
        let xs: Vec<f32> = (0..m * d).map(|i| (i as f32 * 0.19).sin() * 3.0).collect();
        let rows: Vec<f32> = (0..k * d).map(|i| (i as f32 * 0.43).cos() * 2.0).collect();
        let current = vec![2u32; m];

        let mut idx_a = vec![0u32; m];
        let mut dist_a = vec![0.0f32; m];
        let mut sec_a = vec![0.0f32; m];
        assign_block(&xs, &rows, d, &current, &mut idx_a, &mut dist_a, &mut sec_a);

        let mut idx_b = vec![0u32; m];
        let mut dist_b = vec![0.0f32; m];
        let mut sec_b = vec![0.0f32; m];
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        assign_accumulate_block(
            &xs,
            &rows,
            d,
            &current,
            &mut idx_b,
            &mut dist_b,
            &mut sec_b,
            &mut sums,
            &mut counts,
        );
        assert_eq!(idx_a, idx_b, "fused accumulation must not change labels");
        assert_eq!(dist_a, dist_b);
        assert_eq!(sec_a, sec_b);

        // Reference accumulation in ascending query order.
        let mut ref_sums = vec![0.0f64; k * d];
        let mut ref_counts = vec![0u64; k];
        for q in 0..m {
            let c = idx_a[q] as usize;
            ref_counts[c] += 1;
            for (slot, &x) in ref_sums[c * d..(c + 1) * d].iter_mut().zip(&xs[q * d..]) {
                *slot += f64::from(x);
            }
        }
        assert_eq!(counts, ref_counts);
        for (got, expect) in sums.iter().zip(&ref_sums) {
            assert_eq!(got.to_bits(), expect.to_bits(), "sums must be bit-exact");
        }
    }

    #[test]
    fn add_assign_widens_and_accumulates() {
        let mut acc = vec![1.0f64; 11];
        let row: Vec<f32> = (0..11).map(|i| i as f32 * 0.5).collect();
        add_assign_f64_f32(&mut acc, &row);
        for (i, &a) in acc.iter().enumerate() {
            assert_eq!(a, 1.0 + f64::from(row[i]));
        }
    }

    #[test]
    #[should_panic(expected = "tile shape mismatch")]
    fn many_to_many_shape_mismatch_panics() {
        let mut out = vec![0.0f32; 3];
        l2_sq_many_to_many(&[0.0; 4], &[0.0; 4], 2, &mut out);
    }

    #[test]
    fn zero_dimension_tiles_are_all_zero() {
        let mut out = vec![7.0f32; 6];
        l2_sq_many_to_many(&[], &[], 0, &mut out);
        assert_eq!(out, vec![0.0; 6]);
        let mut out = vec![7.0f32; 6];
        dot_many_to_many(&[], &[], 0, &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }

    #[test]
    fn indexed_f64_variant_gathers_rows() {
        let dim = 9;
        let flat: Vec<f64> = (0..6 * dim).map(|i| i as f64 * 0.11).collect();
        let (x, _) = vectors(dim);
        let idx: Vec<usize> = vec![4, 0, 4, 2];
        let mut out = vec![0.0f64; idx.len()];
        dot_f64_f32_one_to_many_indexed(&x, &flat, dim, &idx, &mut out);
        for (slot, &i) in out.iter().zip(&idx) {
            let expect: f64 = flat[i * dim..(i + 1) * dim]
                .iter()
                .zip(&x)
                .map(|(a, &b)| a * f64::from(b))
                .sum();
            assert!((slot - expect).abs() <= 1e-9 * expect.abs().max(1.0));
        }
    }

    #[test]
    fn zero_dimension_blocks_are_all_zero() {
        let mut out = vec![9.0f32; 4];
        l2_sq_one_to_many(&[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
        let mut out = vec![9.0f32; 4];
        l2_sq_sq8_one_to_many(&[], &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 4]);
    }

    #[test]
    fn sq8_one_to_many_matches_dequantised_reference() {
        let dim = 19;
        let n = 6;
        let (x, _) = vectors(dim);
        let scales: Vec<f32> = (0..dim)
            .map(|i| 0.01 + (i as f32 * 0.29).sin().abs())
            .collect();
        let codes: Vec<u8> = (0..n * dim).map(|i| (i * 37 % 256) as u8).collect();
        let mut out = vec![0.0f32; n];
        l2_sq_sq8_one_to_many(&x, &scales, &codes, &mut out);
        for (r, &got) in out.iter().enumerate() {
            let deq: Vec<f32> = codes[r * dim..(r + 1) * dim]
                .iter()
                .zip(&scales)
                .map(|(&c, &s)| s * f32::from(c))
                .collect();
            let expect = l2_sq_reference(&x, &deq);
            assert!((got - expect).abs() <= 1e-3 * expect.max(1.0), "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "block shape mismatch")]
    fn sq8_shape_mismatch_panics() {
        let mut out = vec![0.0f32; 2];
        l2_sq_sq8_one_to_many(&[1.0, 2.0], &[1.0, 1.0], &[0u8; 5], &mut out);
    }
}
