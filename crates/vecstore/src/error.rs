//! Error types shared by the vector-store primitives.
//!
//! [`Error`] is the crate-wide umbrella; [`StoreError`] is the typed
//! corruption taxonomy of the durable GKSC container ([`crate::io`]) — every
//! way a sectioned file can be wrong maps to one variant carrying the section
//! tag and byte offset where the damage was detected, so a failed `index
//! build`/load reports *what* is corrupt instead of a free-form string, and
//! callers (the CLI's exit-code mapping, the fault-injection harness) can
//! branch on the class.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Typed corruption taxonomy of the sectioned (GKSC) container.
///
/// Every variant names the *section* where the damage was detected (the
/// space-trimmed tag, or `"header"`/`"section N"` when the tag itself is
/// unreadable) and the *byte offset* into the file at which detection
/// happened.  The fault-injection suite asserts the "no panic, no garbage"
/// invariant: any single corruption of a valid file — truncation, bit flip,
/// oversized length field — surfaces as exactly one of these, never as a
/// panic, an allocation abort, or a silently wrong index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The file ends before the bytes the framing promises: `needed` bytes
    /// of `section` were declared at `offset` but only `available` remain.
    Truncated {
        /// Section being read when the file ran out.
        section: String,
        /// Byte offset at which the missing bytes were expected.
        offset: u64,
        /// Bytes the framing declared.
        needed: u64,
        /// Bytes actually remaining.
        available: u64,
    },
    /// The leading magic is not `GKSC` — the file is not a sectioned
    /// container at all.
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The container version is newer than this reader understands.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u32,
        /// Highest version this reader can parse.
        max_supported: u32,
    },
    /// A stored CRC-32C disagrees with the checksum recomputed over the
    /// bytes it covers.
    ChecksumMismatch {
        /// Section whose checksum failed (`"header"` for the file header).
        section: String,
        /// Byte offset of the stored checksum.
        offset: u64,
        /// Checksum stored in the file.
        stored: u32,
        /// Checksum recomputed from the file's bytes.
        computed: u32,
    },
    /// A declared size exceeds the format's sanity bound — the length field
    /// itself is corrupt (e.g. a flipped high bit), not merely truncated.
    Oversized {
        /// Section whose length field is absurd.
        section: String,
        /// Byte offset of the length field.
        offset: u64,
        /// The declared size.
        declared: u64,
        /// The largest size the format accepts.
        limit: u64,
    },
    /// The file is a valid pre-checksum (v1) container but the reader was
    /// asked for strict (checksummed-only) loading.
    Unchecksummed {
        /// The legacy version found.
        version: u32,
    },
    /// The sections parse individually but a cross-section invariant of the
    /// composite format does not hold (mismatched shapes, non-monotone or
    /// overlapping list offsets, a missing section…).
    Invariant {
        /// Section (or section pair) violating the invariant.
        section: String,
        /// What is violated.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated {
                section,
                offset,
                needed,
                available,
            } => write!(
                f,
                "truncated container: {section} at byte {offset} declares {needed} bytes but only {available} remain"
            ),
            StoreError::BadMagic { found } => {
                write!(f, "bad container magic {found:?} (expected `GKSC`)")
            }
            StoreError::UnsupportedVersion {
                found,
                max_supported,
            } => write!(
                f,
                "unsupported container version {found} (this reader understands up to {max_supported})"
            ),
            StoreError::ChecksumMismatch {
                section,
                offset,
                stored,
                computed,
            } => write!(
                f,
                "checksum mismatch in {section}: stored {stored:#010x} at byte {offset}, computed {computed:#010x}"
            ),
            StoreError::Oversized {
                section,
                offset,
                declared,
                limit,
            } => write!(
                f,
                "oversized field in {section}: {declared} declared at byte {offset} exceeds the format limit {limit}"
            ),
            StoreError::Unchecksummed { version } => write!(
                f,
                "container is an unchecksummed v{version} file and strict loading was requested"
            ),
            StoreError::Invariant { section, detail } => {
                write!(f, "cross-section invariant violated in {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Errors produced by vector storage, I/O and validation routines.
#[derive(Debug)]
pub enum Error {
    /// The caller supplied rows whose lengths disagree, or a buffer whose
    /// length is not a multiple of the declared dimensionality.
    DimensionMismatch {
        /// Dimensionality expected by the container.
        expected: usize,
        /// Dimensionality that was actually supplied.
        found: usize,
    },
    /// A dataset with zero rows or zero dimensionality was supplied where a
    /// non-empty one is required.
    EmptyInput(&'static str),
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the container.
        len: usize,
    },
    /// A parameter failed validation (message explains which and why).
    InvalidParameter(String),
    /// Underlying I/O failure while reading or writing a vector file.
    Io(std::io::Error),
    /// A vector file was malformed (truncated record, inconsistent header…).
    MalformedFile(String),
    /// A sectioned (GKSC) container failed validation — see the typed
    /// [`StoreError`] taxonomy for the corruption class.
    Store(StoreError),
    /// An internal execution failure (a contained worker-pool panic) that is
    /// neither the caller's input nor the file's fault.
    Internal(String),
}

impl Error {
    /// `true` when the error indicates a corrupt or unreadable on-disk
    /// artefact (as opposed to bad parameters or transient I/O).
    pub fn is_corruption(&self) -> bool {
        matches!(self, Error::Store(_) | Error::MalformedFile(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::MalformedFile(msg) => write!(f, "malformed vector file: {msg}"),
            Error::Store(e) => write!(f, "corrupt container: {e}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<Error> = vec![
            Error::DimensionMismatch {
                expected: 4,
                found: 3,
            },
            Error::EmptyInput("rows"),
            Error::IndexOutOfBounds { index: 7, len: 3 },
            Error::InvalidParameter("k must be > 0".into()),
            Error::Io(std::io::Error::other("boom")),
            Error::MalformedFile("truncated".into()),
            Error::Store(StoreError::BadMagic { found: *b"NOPE" }),
            Error::Internal("worker panicked".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn store_error_display_covers_all_variants() {
        let cases: Vec<StoreError> = vec![
            StoreError::Truncated {
                section: "IVFPANEL".into(),
                offset: 128,
                needed: 4096,
                available: 17,
            },
            StoreError::BadMagic { found: *b"ELF\0" },
            StoreError::UnsupportedVersion {
                found: 9,
                max_supported: 2,
            },
            StoreError::ChecksumMismatch {
                section: "header".into(),
                offset: 16,
                stored: 0xdead_beef,
                computed: 0x1234_5678,
            },
            StoreError::Oversized {
                section: "section 2".into(),
                offset: 40,
                declared: u64::MAX,
                limit: 1 << 48,
            },
            StoreError::Unchecksummed { version: 1 },
            StoreError::Invariant {
                section: "IVFOFFS".into(),
                detail: "offsets overlap".into(),
            },
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn store_error_converts_with_source_and_classification() {
        let err: Error = StoreError::Unchecksummed { version: 1 }.into();
        assert!(matches!(err, Error::Store(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(err.is_corruption());
        assert!(Error::MalformedFile("x".into()).is_corruption());
        assert!(!Error::EmptyInput("rows").is_corruption());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let err = Error::EmptyInput("rows");
        assert!(std::error::Error::source(&err).is_none());
    }
}
