//! Error type shared by the vector-store primitives.

use std::fmt;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by vector storage, I/O and validation routines.
#[derive(Debug)]
pub enum Error {
    /// The caller supplied rows whose lengths disagree, or a buffer whose
    /// length is not a multiple of the declared dimensionality.
    DimensionMismatch {
        /// Dimensionality expected by the container.
        expected: usize,
        /// Dimensionality that was actually supplied.
        found: usize,
    },
    /// A dataset with zero rows or zero dimensionality was supplied where a
    /// non-empty one is required.
    EmptyInput(&'static str),
    /// An index was out of bounds for the container.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Number of rows in the container.
        len: usize,
    },
    /// A parameter failed validation (message explains which and why).
    InvalidParameter(String),
    /// Underlying I/O failure while reading or writing a vector file.
    Io(std::io::Error),
    /// A vector file was malformed (truncated record, inconsistent header…).
    MalformedFile(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Error::EmptyInput(what) => write!(f, "empty input: {what}"),
            Error::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Error::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::MalformedFile(msg) => write!(f, "malformed vector file: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<Error> = vec![
            Error::DimensionMismatch {
                expected: 4,
                found: 3,
            },
            Error::EmptyInput("rows"),
            Error::IndexOutOfBounds { index: 7, len: 3 },
            Error::InvalidParameter("k must be > 0".into()),
            Error::Io(std::io::Error::other("boom")),
            Error::MalformedFile("truncated".into()),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let err: Error = io.into();
        assert!(matches!(err, Error::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn non_io_errors_have_no_source() {
        let err = Error::EmptyInput("rows");
        assert!(std::error::Error::source(&err).is_none());
    }
}
