//! Pre-computed squared norms for a [`VectorSet`].
//!
//! Several accelerated k-means variants (Elkan, Hamerly, and the inner-product
//! form of the Lloyd assignment step) need `‖x_i‖²` for every sample.  Those
//! values never change during clustering, so they are computed once and
//! carried alongside the data.

use crate::distance::norm_sq;
use crate::matrix::VectorSet;

/// Cached squared ℓ² norms of every row of a [`VectorSet`].
#[derive(Clone, Debug)]
pub struct Norms {
    values: Vec<f32>,
}

impl Norms {
    /// Computes the squared norm of every row.
    pub fn compute(data: &VectorSet) -> Self {
        let values = data.rows().map(norm_sq).collect();
        Self { values }
    }

    /// Squared norm of row `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of bounds.
    #[inline]
    pub fn get(&self, i: usize) -> f32 {
        self.values[i]
    }

    /// Number of cached norms (equals the number of rows of the source set).
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no norms are cached.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All norms as a slice, indexed by row.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_match_direct_computation() {
        let vs =
            VectorSet::from_rows(vec![vec![3.0, 4.0], vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
        let norms = Norms::compute(&vs);
        assert_eq!(norms.len(), 3);
        assert!(!norms.is_empty());
        assert_eq!(norms.get(0), 25.0);
        assert_eq!(norms.get(1), 2.0);
        assert_eq!(norms.get(2), 0.0);
        assert_eq!(norms.as_slice(), &[25.0, 2.0, 0.0]);
    }

    #[test]
    fn empty_set_gives_empty_norms() {
        let vs = VectorSet::zeros(0, 8).unwrap();
        let norms = Norms::compute(&vs);
        assert!(norms.is_empty());
        assert_eq!(norms.len(), 0);
    }
}
