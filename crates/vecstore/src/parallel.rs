//! Deterministic block-parallel execution on a persistent worker pool.
//!
//! The k-means epoch engines (fused Lloyd sweeps, delta-batched GK-means
//! rounds, the two-means-tree bisections, the Elkan/Hamerly bounds
//! maintenance) guarantee **bit-identical output at any thread count**.  They
//! get that guarantee from one structural rule: work is cut into *fixed*
//! blocks whose boundaries never depend on how many threads run, each block
//! produces a self-contained result, and results are consumed **in block
//! order** by the (sequential) caller.  Threads only decide *when* a block is
//! computed, never *what* it computes or *where* its result lands.
//!
//! [`run_blocks`] is that rule as an executor.  Work is carried out by a
//! [`WorkerPool`]: resident worker threads spawned lazily once per process
//! and **parked between rounds**, so an epoch engine that calls the executor
//! thousands of times per fit pays the thread-creation cost zero times
//! instead of once per round.  Each call publishes one *round* — a
//! type-erased job plus a shared atomic block counter — through a
//! round-sequence barrier; parked workers wake, claim blocks from the
//! counter (stragglers are load-balanced), and park again once the round's
//! counter is exhausted.  Results land in a slot vector indexed by block, so
//! the caller's merge loop is the same code whether 1 or 64 threads ran.
//! [`run_blocks_scoped`] keeps the previous fork/join implementation as the
//! measured baseline for the pool-overhead benchmark (`bench_kernels`'s
//! `executor_round` entry).
//!
//! [`run_mut_blocks`] extends the same rule to in-place updates over two
//! parallel slices cut into matching fixed blocks — the shape of the
//! Elkan/Hamerly per-epoch bound maintenance (`upper` rows next to an
//! `n × k` or `n`-length `lower` array).
//!
//! [`threads_from_env`] reads the `GKM_THREADS` override that the CI matrix
//! uses to re-run the entire test suite with threading enabled: because
//! threaded output is bit-identical, every test must pass unchanged.
//!
//! # Panic safety
//!
//! A panicking block body must never take the serving process down or wedge
//! the resident pool.  Panics are contained **per round**: each participant
//! catches a block-body panic, records the first one (block index plus
//! payload) in the round state, and the round drains normally.  Callers
//! choose the reporting style — [`run_blocks`] re-raises the original
//! payload after the round has fully completed (the historical behaviour),
//! while the opt-in [`run_blocks_checked`] / [`WorkerPool::try_run`] return
//! a structured [`RoundPanic`] instead so long-running servers can log and
//! keep serving.  A resident worker whose block panicked retires after the
//! round and is respawned on the next one, and all pool locks are
//! poison-tolerant — a panic can never poison the round state for later
//! rounds.

use std::any::Any;
use std::cell::Cell;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::thread::JoinHandle;

/// Resolves an optional thread-count knob to an effective worker count:
/// `None` (the paper-faithful default) and `Some(0)` both mean sequential
/// execution on the calling thread.
#[inline]
pub fn effective_threads(threads: Option<usize>) -> usize {
    threads.unwrap_or(1).max(1)
}

/// The `GKM_THREADS` environment override, read once per process.
///
/// When set to a positive integer, the `threads` fields of `KMeansConfig`
/// and `GkParams` default to it instead of `None`.  Output is unaffected by
/// design (the epoch engines are bit-identical at any thread count), which is
/// exactly why CI runs the full test suite under `GKM_THREADS=4`: any
/// divergence fails an existing test rather than needing a dedicated one.
pub fn threads_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GKM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

/// Upper bound on resident workers a pool will spawn, a backstop against
/// pathological `threads` requests; real requests (CI uses 4, the property
/// suite up to 8) sit far below it.
const MAX_POOL_WORKERS: usize = 64;

/// One round's job: the type-erased block body plus the block count.  The
/// pointer is only dereferenced between the round's publication and its
/// completion, both of which happen inside [`WorkerPool::run`]'s borrow of
/// the real closure — see the safety notes there.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    n_blocks: usize,
}

// SAFETY: the pointer is only dereferenced by workers participating in the
// round that published it, and `WorkerPool::run` does not return (or unwind
// past its guard) until every participant has finished — the pointee is a
// live stack closure for the entire window in which the pointer is used.
unsafe impl Send for Job {}

/// Pool state guarded by the round mutex.
struct State {
    /// Monotonic round sequence number; workers use it to recognise a round
    /// they have not joined yet.
    round: u64,
    /// The published job of the in-flight round (`None` between rounds).
    job: Option<Job>,
    /// Worker slots still claimable in the in-flight round.
    helpers_left: usize,
    /// Workers currently executing the in-flight round.
    active: usize,
    /// First contained block-body panic of the in-flight round: block index
    /// plus the original payload, re-raised or converted by the caller.
    panic_payload: Option<(usize, Box<dyn Any + Send>)>,
    /// Worker threads currently alive (parked or executing).  Falls when a
    /// worker retires after a contained panic; the next round respawns up to
    /// its target.
    alive: usize,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

/// Locks the pool state, tolerating poison: the state is kept consistent by
/// RAII guards on every unwind path, so a panic elsewhere must not convert
/// later rounds into lock panics.
fn lock_state(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Poison-tolerant condvar wait, pairing with [`lock_state`].
fn wait_on<'a>(cv: &Condvar, guard: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// A block body panicked during a pool round; the round itself completed
/// (every other block ran) and the pool remains usable.
///
/// Returned by the opt-in [`WorkerPool::try_run`] / [`run_blocks_checked`];
/// the panicking APIs re-raise the original payload via
/// [`RoundPanic::resume`].  Converts into [`crate::error::Error::Internal`]
/// for propagation through `Result` pipelines (the conversion drops the
/// payload and keeps the message).
pub struct RoundPanic {
    /// Index of the first block whose body panicked.
    pub block: usize,
    /// Human-readable panic message (`&str`/`String` payloads; a placeholder
    /// otherwise).
    pub message: String,
    payload: Box<dyn Any + Send>,
}

impl RoundPanic {
    fn new(block: usize, payload: Box<dyn Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        Self {
            block,
            message,
            payload,
        }
    }

    /// Re-raises the original panic payload on the calling thread.
    pub fn resume(self) -> ! {
        resume_unwind(self.payload)
    }
}

impl fmt::Debug for RoundPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundPanic")
            .field("block", &self.block)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl fmt::Display for RoundPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "block {} panicked: {}", self.block, self.message)
    }
}

impl std::error::Error for RoundPanic {}

impl From<RoundPanic> for crate::error::Error {
    fn from(rp: RoundPanic) -> Self {
        crate::error::Error::Internal(format!("worker pool round failed: {rp}"))
    }
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work_cv: Condvar,
    /// Callers wait here for round completion and for the job slot.
    done_cv: Condvar,
    /// Block-claim counter of the in-flight round.
    next_block: AtomicUsize,
}

thread_local! {
    /// Set while this thread is executing pool work (as a resident worker or
    /// as a caller participating in its own round).  A nested executor call
    /// made from inside a block body runs sequentially instead of deadlocking
    /// on the single job slot.
    static POOL_BUSY: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag for [`POOL_BUSY`], exception-safe under unwinding.
struct BusyGuard;

impl BusyGuard {
    fn enter() -> Self {
        POOL_BUSY.with(|b| b.set(true));
        BusyGuard
    }
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        POOL_BUSY.with(|b| b.set(false));
    }
}

/// A persistent pool of parked worker threads executing fixed-block rounds.
///
/// Workers are spawned lazily (first round that needs them) and then stay
/// resident, parked on a condition variable between rounds — the per-round
/// cost is a wake-up and a park instead of `threads − 1` thread creations
/// and joins.  One round runs at a time; concurrent callers queue on the job
/// slot, and a caller that is itself a pool worker (nested use) degrades to
/// sequential execution instead of deadlocking.
///
/// Determinism is structural and identical to the scoped executor's: block
/// boundaries are fixed by the caller, blocks are claimed dynamically from an
/// atomic counter (so stragglers are load-balanced), and every result is
/// written to the slot its block index owns — the merge order the caller
/// observes never depends on the thread count.
///
/// Most code should use the free function [`run_blocks`], which runs on the
/// process-wide [`WorkerPool::global`] pool:
///
/// ```
/// use vecstore::parallel::run_blocks;
///
/// let squares = run_blocks(4, 8, |block| block * block);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned on first demand.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    round: 0,
                    job: None,
                    helpers_left: 0,
                    active: 0,
                    panic_payload: None,
                    alive: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                next_block: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every [`run_blocks`] call executes on.  Workers
    /// accumulate to the largest `threads − 1` ever requested (capped) and
    /// stay parked when idle, so the pool costs nothing while no round runs.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Runs `f(block)` for every block in `0..n_blocks` on up to `threads`
    /// participants (the calling thread plus parked pool workers) and returns
    /// the results **in block order**.
    ///
    /// With one effective worker (or at most one block, or when called from
    /// inside another round's block body) everything runs on the calling
    /// thread — no synchronisation, and, crucially, the *same* per-block
    /// results the threaded path reassembles.
    ///
    /// # Panics
    ///
    /// Re-raises a panic from any block body with its original payload —
    /// after the round has fully completed, so no worker still references
    /// the caller's stack and the pool stays usable.  Callers that must not
    /// unwind (long-running servers) should use [`WorkerPool::try_run`].
    pub fn run<R, F>(&self, threads: usize, n_blocks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = threads.max(1).min(n_blocks);
        if workers <= 1 || POOL_BUSY.with(|b| b.get()) {
            // Catch-free sequential fast path: the epoch engines run it once
            // per round at `threads = 1`, and a panic here propagates
            // naturally.
            return (0..n_blocks).map(f).collect();
        }
        match self.run_threaded(workers, n_blocks, f) {
            Ok(out) => out,
            Err(rp) => rp.resume(),
        }
    }

    /// Panic-containing flavour of [`WorkerPool::run`]: a panicking block
    /// body yields `Err(`[`RoundPanic`]`)` (first panicking block index +
    /// message) instead of unwinding, and the pool remains fully usable —
    /// the next round completes and stays bit-identical to sequential.
    pub fn try_run<R, F>(
        &self,
        threads: usize,
        n_blocks: usize,
        f: F,
    ) -> std::result::Result<Vec<R>, RoundPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = threads.max(1).min(n_blocks);
        if workers <= 1 || POOL_BUSY.with(|b| b.get()) {
            let mut out = Vec::with_capacity(n_blocks);
            for b in 0..n_blocks {
                match catch_unwind(AssertUnwindSafe(|| f(b))) {
                    Ok(r) => out.push(r),
                    Err(p) => return Err(RoundPanic::new(b, p)),
                }
            }
            return Ok(out);
        }
        self.run_threaded(workers, n_blocks, f)
    }

    fn run_threaded<R, F>(
        &self,
        workers: usize,
        n_blocks: usize,
        f: F,
    ) -> std::result::Result<Vec<R>, RoundPanic>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let helpers = workers - 1;

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n_blocks);
        slots.resize_with(n_blocks, || None);
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let runner = move |b: usize| {
            let r = f(b);
            // SAFETY: the claim counter hands each block index to exactly one
            // participant, so this slot is written once, and `slots` outlives
            // the round (the guard below blocks until every participant is
            // done).  The slot holds `None`, so the drop-free write leaks
            // nothing.
            unsafe { slots_ptr.get().add(b).write(Some(r)) };
        };

        let _busy = BusyGuard::enter();
        {
            let mut st = lock_state(&self.shared);
            // One round at a time: queue behind any in-flight round.
            while st.job.is_some() {
                st = wait_on(&self.shared.done_cv, st);
            }
            // Respawn up to the round's target: workers retired by a
            // contained panic are replaced here, before the round publishes.
            while st.alive < helpers.min(MAX_POOL_WORKERS) {
                st.alive += 1;
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::Builder::new()
                    .name("gkm-pool-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker");
                self.handles
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(handle);
            }
            self.shared.next_block.store(0, Ordering::Relaxed);
            st.round = st.round.wrapping_add(1);
            st.helpers_left = helpers;
            st.panic_payload = None;
            let erased: &(dyn Fn(usize) + Sync) = &runner;
            // SAFETY: erases the borrow of `runner` (and through it `f` and
            // `slots`); the guard below keeps this function's frame alive
            // until the round completes and the job slot is cleared, so the
            // pointer never outlives its pointee.
            let func = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    erased,
                )
            };
            st.job = Some(Job { func, n_blocks });
            self.shared.work_cv.notify_all();
        }

        // From here on, the guard *must* run before `runner`/`slots` drop —
        // it waits out the round on every exit path, including unwinding.
        let guard = RoundGuard {
            shared: &self.shared,
            finished: false,
        };
        let mut caller_failure: Option<(usize, Box<dyn Any + Send>)> = None;
        loop {
            let b = self.shared.next_block.fetch_add(1, Ordering::Relaxed);
            if b >= n_blocks {
                break;
            }
            if let Err(p) = catch_unwind(AssertUnwindSafe(|| runner(b))) {
                caller_failure = Some((b, p));
                break;
            }
        }
        let worker_failure = guard.finish();

        if let Some((b, p)) = caller_failure.or(worker_failure) {
            return Err(RoundPanic::new(b, p));
        }
        Ok(slots
            .into_iter()
            .map(|s| s.expect("every block index below n_blocks is claimed exactly once"))
            .collect())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock_state(&self.shared);
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self
            .handles
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// Waits out the in-flight round, clears the job slot and collects the first
/// contained panic.  Created right after a round is published so the wait
/// runs on every exit path of the publishing call, including caller-side
/// unwinding — the published job pointer must never outlive the caller's
/// frame.
struct RoundGuard<'a> {
    shared: &'a Shared,
    finished: bool,
}

impl<'a> RoundGuard<'a> {
    /// Normal-path teardown: drains the round and hands back the first
    /// contained panic for the caller to report.
    fn finish(mut self) -> Option<(usize, Box<dyn Any + Send>)> {
        self.finished = true;
        Self::drain(self.shared)
    }

    fn drain(shared: &Shared) -> Option<(usize, Box<dyn Any + Send>)> {
        let mut st = lock_state(shared);
        // Workers that have not joined yet must not pick the job up while we
        // are tearing the round down.
        st.helpers_left = 0;
        while st.active > 0 {
            st = wait_on(&shared.done_cv, st);
        }
        st.job = None;
        let payload = st.panic_payload.take();
        drop(st);
        // Wake callers queued on the job slot.
        shared.done_cv.notify_all();
        payload
    }
}

impl Drop for RoundGuard<'_> {
    fn drop(&mut self) {
        if !self.finished {
            // Unwind path: still wait the round out (the job pointer borrows
            // the dying frame), but discard any recorded panic — the caller
            // is already propagating one.
            let _ = Self::drain(self.shared);
        }
    }
}

/// RAII decrement of the pool's live-worker count, so even an unexpected
/// unwind out of [`worker_loop`] lets the next round respawn a replacement.
struct AliveGuard<'a>(&'a Shared);

impl Drop for AliveGuard<'_> {
    fn drop(&mut self) {
        let mut st = lock_state(self.0);
        st.alive -= 1;
    }
}

/// Body of a resident worker: park on the round barrier, join rounds newer
/// than the last one seen (while helper slots remain), claim blocks until the
/// round's counter is exhausted, park again.
///
/// A block-body panic is caught per block: the worker records the first
/// (block, payload) pair in the round state, leaves the rest of the round to
/// the other participants, and retires — the next published round respawns a
/// replacement.  The worker thread itself never unwinds, so a panicking job
/// can neither abort the process nor poison the pool.
fn worker_loop(shared: &Shared) {
    POOL_BUSY.with(|b| b.set(true));
    let _alive = AliveGuard(shared);
    let mut last_round = 0u64;
    let mut st = lock_state(shared);
    loop {
        if st.shutdown {
            return;
        }
        if st.round != last_round {
            last_round = st.round;
            let claimable = if st.helpers_left > 0 { st.job } else { None };
            if let Some(job) = claimable {
                st.helpers_left -= 1;
                st.active += 1;
                drop(st);
                let mut failure: Option<(usize, Box<dyn Any + Send>)> = None;
                {
                    // SAFETY: `active` was incremented under the lock, so the
                    // publishing caller's round guard blocks until this
                    // worker decrements it — the closure behind the pointer
                    // stays alive for the whole dereference window.
                    let f = unsafe { &*job.func };
                    loop {
                        let b = shared.next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= job.n_blocks {
                            break;
                        }
                        if let Err(p) = catch_unwind(AssertUnwindSafe(|| f(b))) {
                            failure = Some((b, p));
                            break;
                        }
                    }
                }
                st = lock_state(shared);
                let retire = failure.is_some();
                if let Some((b, p)) = failure {
                    if st.panic_payload.is_none() {
                        st.panic_payload = Some((b, p));
                    }
                }
                st.active -= 1;
                if st.active == 0 {
                    shared.done_cv.notify_all();
                }
                if retire {
                    // Retire after a contained panic; `AliveGuard` lets the
                    // next round spawn a replacement.
                    return;
                }
                continue;
            }
        }
        st = wait_on(&shared.work_cv, st);
    }
}

/// Runs `f(block)` for every block in `0..n_blocks` on up to `threads`
/// participants of the process-wide [`WorkerPool`] and returns the results
/// **in block order**.
///
/// Blocks are claimed from a shared atomic counter, so a slow block does not
/// stall the queue; determinism is unaffected because the result vector is
/// indexed by block, not by completion order.  With one worker (or one
/// block) everything runs on the calling thread — no synchronisation, and,
/// crucially, the *same* per-block results the threaded path reassembles.
pub fn run_blocks<R, F>(threads: usize, n_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    WorkerPool::global().run(threads, n_blocks, f)
}

/// Panic-containing flavour of [`run_blocks`] on the process-wide pool: a
/// panicking block body becomes `Err(`[`RoundPanic`]`)` — which converts into
/// [`crate::error::Error::Internal`] via `?` — instead of unwinding into the
/// caller.  Results are identical to [`run_blocks`] on the `Ok` path, and the
/// pool stays fully usable after an `Err`.
pub fn run_blocks_checked<R, F>(
    threads: usize,
    n_blocks: usize,
    f: F,
) -> std::result::Result<Vec<R>, RoundPanic>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    WorkerPool::global().try_run(threads, n_blocks, f)
}

/// The pre-pool executor: forks a scoped thread team, runs the round, joins.
///
/// Functionally identical to [`run_blocks`] (same fixed blocks, same
/// block-order results) but pays `threads − 1` thread spawns and joins on
/// **every call** — the ~0.2 ms/round overhead the persistent pool
/// amortises away.  Kept as the measured baseline of the `executor_round`
/// benchmark case; production paths should always use [`run_blocks`].
pub fn run_blocks_scoped<R, F>(threads: usize, n_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n_blocks);
    if workers <= 1 {
        return (0..n_blocks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n_blocks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        produced.push((b, f(b)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (b, r) in handle.join().expect("worker thread panicked") {
                slots[b] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every block index below n_blocks is claimed exactly once"))
        .collect()
}

/// A raw pointer asserted to be safe to move across threads.  Every use in
/// this module hands each thread a *disjoint* region behind the pointer
/// (slot `b`, or block `b`'s sub-slice), with the round-completion barrier
/// ordering the writes before the caller reads them back.
struct SendPtr<T>(*mut T);

// Manual impls: the derives would add unwanted `T: Clone`/`T: Copy` bounds.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than direct field reads) so closures capture
    /// the whole wrapper — edition-2021 disjoint capture would otherwise pull
    /// in only the bare `*mut T`, which is deliberately not `Send`/`Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: see the type docs — disjoint per-block access plus the round
// barrier make the raw accesses race-free.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f(block, a_chunk, b_chunk)` over two mutable slices cut into
/// matching fixed blocks (`a_block` elements of `a` next to `b_block`
/// elements of `b` per block), on up to `threads` pool participants, and
/// returns the per-block results **in block order**.
///
/// This is the in-place flavour of [`run_blocks`] for the bounds-maintenance
/// pattern of the accelerated k-means baselines: per row block, Elkan updates
/// `upper[lo..hi]` alongside the `lower[lo*k..hi*k]` bound matrix rows, and
/// Hamerly updates `upper` alongside the same-length `lower`.  Block
/// boundaries depend only on the slice lengths, each block's chunks are
/// disjoint from every other block's, and the final chunk is simply shorter
/// when the lengths are not multiples of the block sizes — so the result (and
/// the slice contents) is bit-identical at any thread count.
///
/// # Panics
///
/// Panics when a block length is zero or the two slices disagree on the
/// number of blocks they form.
pub fn run_mut_blocks<A, B, R, F>(
    threads: usize,
    a: &mut [A],
    a_block: usize,
    b: &mut [B],
    b_block: usize,
    f: F,
) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut [A], &mut [B]) -> R + Sync,
{
    assert!(a_block > 0 && b_block > 0, "block lengths must be positive");
    let n_blocks = a.len().div_ceil(a_block);
    assert_eq!(
        n_blocks,
        b.len().div_ceil(b_block),
        "the two slices must form the same number of blocks"
    );
    let (a_len, b_len) = (a.len(), b.len());
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    run_blocks(threads, n_blocks, move |blk| {
        let a_lo = blk * a_block;
        let a_hi = ((blk + 1) * a_block).min(a_len);
        let b_lo = blk * b_block;
        let b_hi = ((blk + 1) * b_block).min(b_len);
        // SAFETY: each block index is claimed exactly once and the half-open
        // ranges of distinct blocks never overlap, so these are disjoint
        // exclusive borrows; the round barrier orders them before the
        // caller's slices are touched again.
        let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(a_lo), a_hi - a_lo) };
        let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(b_lo), b_hi - b_lo) };
        f(blk, ca, cb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_the_knob() {
        assert_eq!(effective_threads(None), 1);
        assert_eq!(effective_threads(Some(0)), 1);
        assert_eq!(effective_threads(Some(1)), 1);
        assert_eq!(effective_threads(Some(7)), 7);
    }

    #[test]
    fn run_blocks_returns_results_in_block_order() {
        for threads in [1usize, 2, 4, 7] {
            let out = run_blocks(threads, 23, |b| b * b);
            let expect: Vec<usize> = (0..23).map(|b| b * b).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_blocks_scoped_matches_pool_executor() {
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(
                run_blocks_scoped(threads, 23, |b| b * 3 + 1),
                run_blocks(threads, 23, |b| b * 3 + 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_blocks_handles_empty_and_single() {
        assert_eq!(run_blocks(4, 0, |b| b), Vec::<usize>::new());
        assert_eq!(run_blocks(4, 1, |b| b + 10), vec![10]);
        assert_eq!(run_blocks_scoped(4, 0, |b| b), Vec::<usize>::new());
        assert_eq!(run_blocks_scoped(4, 1, |b| b + 10), vec![10]);
    }

    #[test]
    fn pool_workers_survive_many_rounds() {
        // The whole point of the pool: thousands of rounds reuse the same
        // parked workers.  Each round must still merge in block order.
        let pool = WorkerPool::new();
        for round in 0..500usize {
            let out = pool.run(4, 9, |b| b + round);
            let expect: Vec<usize> = (0..9).map(|b| b + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn dedicated_pool_shuts_down_cleanly_on_drop() {
        let pool = WorkerPool::new();
        assert_eq!(pool.run(3, 5, |b| b), vec![0, 1, 2, 3, 4]);
        drop(pool); // joins the resident workers; must not hang or panic
    }

    #[test]
    fn nested_calls_degrade_to_sequential_instead_of_deadlocking() {
        let out = run_blocks(4, 6, |outer| {
            let inner = run_blocks(4, 3, move |b| outer * 10 + b);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|outer| outer * 30 + 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panics_propagate_and_leave_the_pool_usable() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 16, |b| {
                if b == 7 {
                    panic!("block body failed");
                }
                b
            })
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The original payload must survive the containment round trip.
        let payload = result.unwrap_err();
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .or_else(|| payload.downcast_ref::<String>().map(String::as_str));
        assert_eq!(message, Some("block body failed"));
        // The failed round must not wedge the job slot.
        assert_eq!(pool.run(4, 4, |b| b * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn try_run_contains_panics_and_reports_the_block() {
        let pool = WorkerPool::new();
        let err = pool
            .try_run(4, 16, |b| {
                if b == 5 {
                    panic!("bad block {b}");
                }
                b
            })
            .unwrap_err();
        assert_eq!(err.block, 5);
        assert_eq!(err.message, "bad block 5");
        assert!(err.to_string().contains("block 5 panicked"));
        let as_error: crate::error::Error = pool
            .try_run(4, 16, |b| {
                if b == 5 {
                    panic!("bad block {b}");
                }
                b
            })
            .unwrap_err()
            .into();
        assert!(matches!(as_error, crate::error::Error::Internal(_)));
    }

    #[test]
    fn pool_reuse_after_panic_is_bit_identical_to_sequential() {
        // The satellite regression: a panicking job must not poison the
        // resident pool — the next round must complete and match the
        // sequential result exactly, at several thread counts, repeatedly.
        let pool = WorkerPool::new();
        for attempt in 0..5usize {
            for threads in [2usize, 4, 7] {
                assert!(
                    pool.try_run(threads, 32, |b| {
                        if b % 11 == 3 {
                            panic!("injected failure");
                        }
                        b
                    })
                    .is_err(),
                    "attempt {attempt} threads {threads}"
                );
                let expect: Vec<u64> = (0..32u64).map(|b| b * b + attempt as u64).collect();
                let got = pool
                    .try_run(threads, 32, |b| (b as u64) * (b as u64) + attempt as u64)
                    .unwrap();
                assert_eq!(got, expect, "attempt {attempt} threads {threads}");
            }
        }
    }

    #[test]
    fn retired_workers_are_respawned_for_the_next_round() {
        let pool = WorkerPool::new();
        // 4 participants × 4 blocks, and every block body spins until all
        // four have entered before panicking: each participant is pinned in
        // its one block, so all three helpers are guaranteed to take part —
        // and all three retire.
        let entered = AtomicUsize::new(0);
        let err = pool
            .try_run(4, 4, |b| -> usize {
                entered.fetch_add(1, Ordering::SeqCst);
                while entered.load(Ordering::SeqCst) < 4 {
                    std::hint::spin_loop();
                }
                panic!("kill block {b}")
            })
            .unwrap_err();
        assert!(err.message.starts_with("kill block"));
        // Retirement (the `alive` decrement) completes shortly after the
        // round returns; wait it out rather than racing the worker exits.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if lock_state(&pool.shared).alive == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "workers never retired"
            );
            std::thread::yield_now();
        }
        // The next round respawns to target and completes correctly.
        assert_eq!(
            pool.try_run(4, 6, |b| b + 1).unwrap(),
            vec![1, 2, 3, 4, 5, 6]
        );
        assert_eq!(
            lock_state(&pool.shared).alive,
            3,
            "round with threads=4 must respawn its 3 helpers"
        );
    }

    #[test]
    fn try_run_sequential_paths_also_contain_panics() {
        let pool = WorkerPool::new();
        // threads = 1 → sequential catching path.
        let err = pool
            .try_run(1, 4, |b| {
                if b == 2 {
                    panic!("sequential failure");
                }
                b
            })
            .unwrap_err();
        assert_eq!(err.block, 2);
        // Nested inside a pool round → POOL_BUSY sequential degradation.
        let outer = pool.try_run(4, 3, |outer| {
            let inner = WorkerPool::global().try_run(4, 3, move |b| {
                if outer == 1 && b == 1 {
                    panic!("nested failure");
                }
                b
            });
            match inner {
                Ok(v) => v.iter().sum::<usize>(),
                Err(rp) => 100 + rp.block,
            }
        });
        assert_eq!(outer.unwrap(), vec![3, 101, 3]);
    }

    #[test]
    fn run_blocks_checked_matches_run_blocks_on_success() {
        for threads in [1usize, 2, 4] {
            assert_eq!(
                run_blocks_checked(threads, 17, |b| b * 5).unwrap(),
                run_blocks(threads, 17, |b| b * 5),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_mut_blocks_updates_matching_chunks_at_any_thread_count() {
        // Elkan's maintenance shape: n "upper" values next to n*k "lower"
        // values, k = 3, cut into 4-row blocks (final block short).
        let k = 3usize;
        let n = 10usize;
        let reference: (Vec<f32>, Vec<f32>) = {
            let mut upper: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut lower: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.5).collect();
            for i in 0..n {
                upper[i] += 1.0;
                for c in 0..k {
                    lower[i * k + c] -= 0.25;
                }
            }
            (upper, lower)
        };
        for threads in [1usize, 2, 4, 7] {
            let mut upper: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut lower: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.5).collect();
            let rows = run_mut_blocks(threads, &mut upper, 4, &mut lower, 4 * k, |_, up, lo| {
                for u in up.iter_mut() {
                    *u += 1.0;
                }
                for l in lo.iter_mut() {
                    *l -= 0.25;
                }
                up.len()
            });
            assert_eq!(rows, vec![4, 4, 2], "threads={threads}");
            assert_eq!(upper, reference.0, "threads={threads}");
            assert_eq!(lower, reference.1, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "same number of blocks")]
    fn run_mut_blocks_rejects_mismatched_shapes() {
        let mut a = [0u8; 10];
        let mut b = [0u8; 4];
        let _ = run_mut_blocks(2, &mut a, 2, &mut b, 3, |_, _, _| ());
    }

    #[test]
    fn threads_from_env_is_stable() {
        assert_eq!(threads_from_env(), threads_from_env());
    }

    #[test]
    fn concurrent_try_run_callers_survive_respawn_after_panic() {
        // Shutdown-ordering stress: several caller threads race rounds on
        // one pool while a fraction of rounds panic, so callers repeatedly
        // queue on the job slot *while* panicked workers retire and the next
        // publisher respawns replacements.  Every round must either succeed
        // bit-identically to sequential or report the contained panic —
        // never hang, never corrupt another caller's round.
        let pool = Arc::new(WorkerPool::new());
        let iterations = 40usize;
        let handles: Vec<_> = (0..4usize)
            .map(|caller| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    let mut ok_rounds = 0usize;
                    let mut contained = 0usize;
                    for i in 0..iterations {
                        let poison = (i + caller) % 3 == 0;
                        let result = pool.try_run(4, 16, move |b| {
                            if poison && b == 9 {
                                panic!("caller {caller} round {i} block {b}");
                            }
                            b * 2 + caller
                        });
                        match result {
                            Ok(v) => {
                                assert!(!poison, "poisoned round must not succeed");
                                let expect: Vec<usize> = (0..16).map(|b| b * 2 + caller).collect();
                                assert_eq!(v, expect, "caller {caller} round {i}");
                                ok_rounds += 1;
                            }
                            Err(rp) => {
                                assert!(poison, "clean round must not fail: {rp}");
                                assert_eq!(rp.block, 9);
                                contained += 1;
                            }
                        }
                    }
                    (ok_rounds, contained)
                })
            })
            .collect();
        for h in handles {
            let (ok_rounds, contained) = h.join().expect("caller thread panicked");
            assert!(ok_rounds > 0 && contained > 0);
            assert_eq!(ok_rounds + contained, iterations);
        }
        // The pool is still healthy after the storm.
        assert_eq!(pool.run(4, 5, |b| b), vec![0, 1, 2, 3, 4]);
    }

    /// Thread ids under `/proc/self/task` whose comm equals the pool-worker
    /// thread name (15 bytes — exactly the kernel's comm width).
    #[cfg(target_os = "linux")]
    fn pool_worker_tids() -> Vec<u64> {
        let mut tids = Vec::new();
        let Ok(entries) = std::fs::read_dir("/proc/self/task") else {
            return tids;
        };
        for entry in entries.flatten() {
            let Some(tid) = entry
                .file_name()
                .to_str()
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            let comm_path = format!("/proc/self/task/{tid}/comm");
            if let Ok(comm) = std::fs::read_to_string(comm_path) {
                if comm.trim_end() == "gkm-pool-worker" {
                    tids.push(tid);
                }
            }
        }
        tids
    }

    /// Cumulative CPU ticks (utime + stime) of one thread, from its stat
    /// line.  The comm field is parenthesised and may not contain further
    /// parens for our fixed thread name, so split after the last ')'.
    #[cfg(target_os = "linux")]
    fn thread_cpu_ticks(tid: u64) -> Option<u64> {
        let stat = std::fs::read_to_string(format!("/proc/self/task/{tid}/stat")).ok()?;
        let rest = &stat[stat.rfind(')')? + 2..];
        let fields: Vec<&str> = rest.split_whitespace().collect();
        // Fields after comm/state: utime is index 11, stime index 12
        // (proc(5) fields 14 and 15, 1-based over the full line).
        let utime: u64 = fields.get(11)?.parse().ok()?;
        let stime: u64 = fields.get(12)?.parse().ok()?;
        Some(utime + stime)
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn idle_pool_parks_without_busy_waiting() {
        // Regression for the "drained pool parks" guarantee: once a round
        // completes, resident workers must block on the condvar — a
        // busy-wait (e.g. a spin on the round counter) would burn a core per
        // worker for the lifetime of the process.  Measured via per-thread
        // CPU accounting: tids are snapshotted before the dedicated pool
        // exists, so concurrently-running tests' pool workers are excluded.
        let before: std::collections::HashSet<u64> = pool_worker_tids().into_iter().collect();
        let pool = WorkerPool::new();
        assert_eq!(pool.run(4, 8, |b| b), (0..8).collect::<Vec<_>>());
        let ours: Vec<u64> = pool_worker_tids()
            .into_iter()
            .filter(|tid| !before.contains(tid))
            .collect();
        assert!(
            !ours.is_empty(),
            "a threads=4 round must leave resident workers parked"
        );
        // Let the final park settle, then look for a quiet window.  A parked
        // thread accrues zero ticks; a busy-waiting one accrues ~all of them
        // (a 250 ms window is ~25 ticks at CONFIG_HZ=100), so one zero-delta
        // window decides the question even on a loaded CI box.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut quiet = false;
        for _ in 0..5 {
            let start: u64 = ours.iter().filter_map(|&t| thread_cpu_ticks(t)).sum();
            std::thread::sleep(std::time::Duration::from_millis(250));
            let end: u64 = ours.iter().filter_map(|&t| thread_cpu_ticks(t)).sum();
            if end == start {
                quiet = true;
                break;
            }
        }
        assert!(
            quiet,
            "idle pool workers consumed CPU in every observation window — busy-wait?"
        );
        // And they are genuinely parked, not exited: the next round reuses
        // them and stays correct.
        assert_eq!(pool.run(4, 8, |b| b + 1), (1..9).collect::<Vec<_>>());
    }
}
