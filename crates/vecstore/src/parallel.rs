//! Deterministic block-parallel execution for the threaded epoch engines.
//!
//! The k-means epoch engines (fused Lloyd sweeps, delta-batched GK-means
//! rounds) guarantee **bit-identical output at any thread count**.  They get
//! that guarantee from one structural rule: work is cut into *fixed* blocks
//! whose boundaries never depend on how many threads run, each block produces
//! a self-contained result, and results are consumed **in block order** by
//! the (sequential) caller.  Threads only decide *when* a block is computed,
//! never *what* it computes or *where* its result lands.
//!
//! [`run_blocks`] is that rule as an executor: a scoped thread pool with a
//! dynamic (atomic-counter) block queue — stragglers are load-balanced — that
//! hands the results back as a `Vec` indexed by block, so the caller's merge
//! loop is the same code whether 1 or 64 threads ran.
//!
//! [`threads_from_env`] reads the `GKM_THREADS` override that the CI matrix
//! uses to re-run the entire test suite with threading enabled: because
//! threaded output is bit-identical, every test must pass unchanged.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Resolves an optional thread-count knob to an effective worker count:
/// `None` (the paper-faithful default) and `Some(0)` both mean sequential
/// execution on the calling thread.
#[inline]
pub fn effective_threads(threads: Option<usize>) -> usize {
    threads.unwrap_or(1).max(1)
}

/// The `GKM_THREADS` environment override, read once per process.
///
/// When set to a positive integer, the `threads` fields of `KMeansConfig`
/// and `GkParams` default to it instead of `None`.  Output is unaffected by
/// design (the epoch engines are bit-identical at any thread count), which is
/// exactly why CI runs the full test suite under `GKM_THREADS=4`: any
/// divergence fails an existing test rather than needing a dedicated one.
pub fn threads_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GKM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

/// Runs `f(block)` for every block in `0..n_blocks` on up to `threads`
/// workers and returns the results **in block order**.
///
/// Blocks are pulled from a shared atomic counter, so a slow block does not
/// stall the queue; determinism is unaffected because the result vector is
/// indexed by block, not by completion order.  With one worker (or one
/// block) everything runs on the calling thread — no threads are spawned, so
/// the sequential path has zero synchronisation cost and, crucially,
/// produces the *same* per-block results the threaded path reassembles.
pub fn run_blocks<R, F>(threads: usize, n_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n_blocks);
    if workers <= 1 {
        return (0..n_blocks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n_blocks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        produced.push((b, f(b)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (b, r) in handle.join().expect("worker thread panicked") {
                slots[b] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every block index below n_blocks is claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_the_knob() {
        assert_eq!(effective_threads(None), 1);
        assert_eq!(effective_threads(Some(0)), 1);
        assert_eq!(effective_threads(Some(1)), 1);
        assert_eq!(effective_threads(Some(7)), 7);
    }

    #[test]
    fn run_blocks_returns_results_in_block_order() {
        for threads in [1usize, 2, 4, 7] {
            let out = run_blocks(threads, 23, |b| b * b);
            let expect: Vec<usize> = (0..23).map(|b| b * b).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_blocks_handles_empty_and_single() {
        assert_eq!(run_blocks(4, 0, |b| b), Vec::<usize>::new());
        assert_eq!(run_blocks(4, 1, |b| b + 10), vec![10]);
    }

    #[test]
    fn threads_from_env_is_stable() {
        assert_eq!(threads_from_env(), threads_from_env());
    }
}
