//! Deterministic block-parallel execution on a persistent worker pool.
//!
//! The k-means epoch engines (fused Lloyd sweeps, delta-batched GK-means
//! rounds, the two-means-tree bisections, the Elkan/Hamerly bounds
//! maintenance) guarantee **bit-identical output at any thread count**.  They
//! get that guarantee from one structural rule: work is cut into *fixed*
//! blocks whose boundaries never depend on how many threads run, each block
//! produces a self-contained result, and results are consumed **in block
//! order** by the (sequential) caller.  Threads only decide *when* a block is
//! computed, never *what* it computes or *where* its result lands.
//!
//! [`run_blocks`] is that rule as an executor.  Work is carried out by a
//! [`WorkerPool`]: resident worker threads spawned lazily once per process
//! and **parked between rounds**, so an epoch engine that calls the executor
//! thousands of times per fit pays the thread-creation cost zero times
//! instead of once per round.  Each call publishes one *round* — a
//! type-erased job plus a shared atomic block counter — through a
//! round-sequence barrier; parked workers wake, claim blocks from the
//! counter (stragglers are load-balanced), and park again once the round's
//! counter is exhausted.  Results land in a slot vector indexed by block, so
//! the caller's merge loop is the same code whether 1 or 64 threads ran.
//! [`run_blocks_scoped`] keeps the previous fork/join implementation as the
//! measured baseline for the pool-overhead benchmark (`bench_kernels`'s
//! `executor_round` entry).
//!
//! [`run_mut_blocks`] extends the same rule to in-place updates over two
//! parallel slices cut into matching fixed blocks — the shape of the
//! Elkan/Hamerly per-epoch bound maintenance (`upper` rows next to an
//! `n × k` or `n`-length `lower` array).
//!
//! [`threads_from_env`] reads the `GKM_THREADS` override that the CI matrix
//! uses to re-run the entire test suite with threading enabled: because
//! threaded output is bit-identical, every test must pass unchanged.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Resolves an optional thread-count knob to an effective worker count:
/// `None` (the paper-faithful default) and `Some(0)` both mean sequential
/// execution on the calling thread.
#[inline]
pub fn effective_threads(threads: Option<usize>) -> usize {
    threads.unwrap_or(1).max(1)
}

/// The `GKM_THREADS` environment override, read once per process.
///
/// When set to a positive integer, the `threads` fields of `KMeansConfig`
/// and `GkParams` default to it instead of `None`.  Output is unaffected by
/// design (the epoch engines are bit-identical at any thread count), which is
/// exactly why CI runs the full test suite under `GKM_THREADS=4`: any
/// divergence fails an existing test rather than needing a dedicated one.
pub fn threads_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("GKM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
    })
}

/// Upper bound on resident workers a pool will spawn, a backstop against
/// pathological `threads` requests; real requests (CI uses 4, the property
/// suite up to 8) sit far below it.
const MAX_POOL_WORKERS: usize = 64;

/// One round's job: the type-erased block body plus the block count.  The
/// pointer is only dereferenced between the round's publication and its
/// completion, both of which happen inside [`WorkerPool::run`]'s borrow of
/// the real closure — see the safety notes there.
#[derive(Clone, Copy)]
struct Job {
    func: *const (dyn Fn(usize) + Sync),
    n_blocks: usize,
}

// SAFETY: the pointer is only dereferenced by workers participating in the
// round that published it, and `WorkerPool::run` does not return (or unwind
// past its guard) until every participant has finished — the pointee is a
// live stack closure for the entire window in which the pointer is used.
unsafe impl Send for Job {}

/// Pool state guarded by the round mutex.
struct State {
    /// Monotonic round sequence number; workers use it to recognise a round
    /// they have not joined yet.
    round: u64,
    /// The published job of the in-flight round (`None` between rounds).
    job: Option<Job>,
    /// Worker slots still claimable in the in-flight round.
    helpers_left: usize,
    /// Workers currently executing the in-flight round.
    active: usize,
    /// Set when any participant's block body panicked this round.
    panicked: bool,
    /// Worker threads spawned so far.
    spawned: usize,
    /// Tells workers to exit (pool drop).
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between rounds.
    work_cv: Condvar,
    /// Callers wait here for round completion and for the job slot.
    done_cv: Condvar,
    /// Block-claim counter of the in-flight round.
    next_block: AtomicUsize,
}

thread_local! {
    /// Set while this thread is executing pool work (as a resident worker or
    /// as a caller participating in its own round).  A nested executor call
    /// made from inside a block body runs sequentially instead of deadlocking
    /// on the single job slot.
    static POOL_BUSY: Cell<bool> = const { Cell::new(false) };
}

/// RAII flag for [`POOL_BUSY`], exception-safe under unwinding.
struct BusyGuard;

impl BusyGuard {
    fn enter() -> Self {
        POOL_BUSY.with(|b| b.set(true));
        BusyGuard
    }
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        POOL_BUSY.with(|b| b.set(false));
    }
}

/// A persistent pool of parked worker threads executing fixed-block rounds.
///
/// Workers are spawned lazily (first round that needs them) and then stay
/// resident, parked on a condition variable between rounds — the per-round
/// cost is a wake-up and a park instead of `threads − 1` thread creations
/// and joins.  One round runs at a time; concurrent callers queue on the job
/// slot, and a caller that is itself a pool worker (nested use) degrades to
/// sequential execution instead of deadlocking.
///
/// Determinism is structural and identical to the scoped executor's: block
/// boundaries are fixed by the caller, blocks are claimed dynamically from an
/// atomic counter (so stragglers are load-balanced), and every result is
/// written to the slot its block index owns — the merge order the caller
/// observes never depends on the thread count.
///
/// Most code should use the free function [`run_blocks`], which runs on the
/// process-wide [`WorkerPool::global`] pool:
///
/// ```
/// use vecstore::parallel::run_blocks;
///
/// let squares = run_blocks(4, 8, |block| block * block);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool; workers are spawned on first demand.
    pub fn new() -> Self {
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    round: 0,
                    job: None,
                    helpers_left: 0,
                    active: 0,
                    panicked: false,
                    spawned: 0,
                    shutdown: false,
                }),
                work_cv: Condvar::new(),
                done_cv: Condvar::new(),
                next_block: AtomicUsize::new(0),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide pool every [`run_blocks`] call executes on.  Workers
    /// accumulate to the largest `threads − 1` ever requested (capped) and
    /// stay parked when idle, so the pool costs nothing while no round runs.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(WorkerPool::new)
    }

    /// Runs `f(block)` for every block in `0..n_blocks` on up to `threads`
    /// participants (the calling thread plus parked pool workers) and returns
    /// the results **in block order**.
    ///
    /// With one effective worker (or at most one block, or when called from
    /// inside another round's block body) everything runs on the calling
    /// thread — no synchronisation, and, crucially, the *same* per-block
    /// results the threaded path reassembles.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any block body (after the round has fully
    /// completed, so no worker still references the caller's stack).
    pub fn run<R, F>(&self, threads: usize, n_blocks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = threads.max(1).min(n_blocks);
        if workers <= 1 || POOL_BUSY.with(|b| b.get()) {
            return (0..n_blocks).map(f).collect();
        }
        let helpers = workers - 1;

        let mut slots: Vec<Option<R>> = Vec::with_capacity(n_blocks);
        slots.resize_with(n_blocks, || None);
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let runner = move |b: usize| {
            let r = f(b);
            // SAFETY: the claim counter hands each block index to exactly one
            // participant, so this slot is written once, and `slots` outlives
            // the round (the guard below blocks until every participant is
            // done).  The slot holds `None`, so the drop-free write leaks
            // nothing.
            unsafe { slots_ptr.get().add(b).write(Some(r)) };
        };

        let _busy = BusyGuard::enter();
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            // One round at a time: queue behind any in-flight round.
            while st.job.is_some() {
                st = self.shared.done_cv.wait(st).expect("pool state poisoned");
            }
            while st.spawned < helpers.min(MAX_POOL_WORKERS) {
                st.spawned += 1;
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::Builder::new()
                    .name("gkm-pool-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker");
                self.handles
                    .lock()
                    .expect("pool handles poisoned")
                    .push(handle);
            }
            self.shared.next_block.store(0, Ordering::Relaxed);
            st.round = st.round.wrapping_add(1);
            st.helpers_left = helpers;
            st.panicked = false;
            let erased: &(dyn Fn(usize) + Sync) = &runner;
            // SAFETY: erases the borrow of `runner` (and through it `f` and
            // `slots`); the guard below keeps this function's frame alive
            // until the round completes and the job slot is cleared, so the
            // pointer never outlives its pointee.
            let func = unsafe {
                std::mem::transmute::<&(dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                    erased,
                )
            };
            st.job = Some(Job { func, n_blocks });
            self.shared.work_cv.notify_all();
        }

        // From here on, the guard *must* run before `runner`/`slots` drop —
        // it waits out the round on every exit path, including unwinding.
        let guard = RoundGuard {
            shared: &self.shared,
        };
        loop {
            let b = self.shared.next_block.fetch_add(1, Ordering::Relaxed);
            if b >= n_blocks {
                break;
            }
            runner(b);
        }
        drop(guard);

        slots
            .into_iter()
            .map(|s| s.expect("every block index below n_blocks is claimed exactly once"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state poisoned");
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self
            .handles
            .lock()
            .expect("pool handles poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

/// Waits out the in-flight round, clears the job slot and re-raises worker
/// panics.  Created right after a round is published so the wait runs on
/// every exit path of [`WorkerPool::run`], including caller-side unwinding —
/// the published job pointer must never outlive the caller's frame.
struct RoundGuard<'a> {
    shared: &'a Shared,
}

impl Drop for RoundGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().expect("pool state poisoned");
        // Workers that have not joined yet must not pick the job up while we
        // are tearing the round down.
        st.helpers_left = 0;
        while st.active > 0 {
            st = self.shared.done_cv.wait(st).expect("pool state poisoned");
        }
        st.job = None;
        let panicked = st.panicked;
        st.panicked = false;
        drop(st);
        // Wake callers queued on the job slot.
        self.shared.done_cv.notify_all();
        if panicked && !std::thread::panicking() {
            panic!("worker thread panicked");
        }
    }
}

/// Body of a resident worker: park on the round barrier, join rounds newer
/// than the last one seen (while helper slots remain), claim blocks until the
/// round's counter is exhausted, park again.
fn worker_loop(shared: &Shared) {
    POOL_BUSY.with(|b| b.set(true));
    let mut last_round = 0u64;
    let mut st = shared.state.lock().expect("pool state poisoned");
    loop {
        if st.shutdown {
            return;
        }
        if st.round != last_round {
            last_round = st.round;
            let claimable = if st.helpers_left > 0 { st.job } else { None };
            if let Some(job) = claimable {
                st.helpers_left -= 1;
                st.active += 1;
                drop(st);
                let ok = catch_unwind(AssertUnwindSafe(|| {
                    // SAFETY: `active` was incremented under the lock, so the
                    // publishing caller's round guard blocks until this
                    // worker decrements it — the closure behind the pointer
                    // stays alive for the whole dereference window.
                    let f = unsafe { &*job.func };
                    loop {
                        let b = shared.next_block.fetch_add(1, Ordering::Relaxed);
                        if b >= job.n_blocks {
                            break;
                        }
                        f(b);
                    }
                }))
                .is_ok();
                st = shared.state.lock().expect("pool state poisoned");
                if !ok {
                    st.panicked = true;
                }
                st.active -= 1;
                if st.active == 0 {
                    shared.done_cv.notify_all();
                }
                continue;
            }
        }
        st = shared.work_cv.wait(st).expect("pool state poisoned");
    }
}

/// Runs `f(block)` for every block in `0..n_blocks` on up to `threads`
/// participants of the process-wide [`WorkerPool`] and returns the results
/// **in block order**.
///
/// Blocks are claimed from a shared atomic counter, so a slow block does not
/// stall the queue; determinism is unaffected because the result vector is
/// indexed by block, not by completion order.  With one worker (or one
/// block) everything runs on the calling thread — no synchronisation, and,
/// crucially, the *same* per-block results the threaded path reassembles.
pub fn run_blocks<R, F>(threads: usize, n_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    WorkerPool::global().run(threads, n_blocks, f)
}

/// The pre-pool executor: forks a scoped thread team, runs the round, joins.
///
/// Functionally identical to [`run_blocks`] (same fixed blocks, same
/// block-order results) but pays `threads − 1` thread spawns and joins on
/// **every call** — the ~0.2 ms/round overhead the persistent pool
/// amortises away.  Kept as the measured baseline of the `executor_round`
/// benchmark case; production paths should always use [`run_blocks`].
pub fn run_blocks_scoped<R, F>(threads: usize, n_blocks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = threads.max(1).min(n_blocks);
    if workers <= 1 {
        return (0..n_blocks).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = (0..n_blocks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                scope.spawn(move || {
                    let mut produced: Vec<(usize, R)> = Vec::new();
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= n_blocks {
                            break;
                        }
                        produced.push((b, f(b)));
                    }
                    produced
                })
            })
            .collect();
        for handle in handles {
            for (b, r) in handle.join().expect("worker thread panicked") {
                slots[b] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every block index below n_blocks is claimed exactly once"))
        .collect()
}

/// A raw pointer asserted to be safe to move across threads.  Every use in
/// this module hands each thread a *disjoint* region behind the pointer
/// (slot `b`, or block `b`'s sub-slice), with the round-completion barrier
/// ordering the writes before the caller reads them back.
struct SendPtr<T>(*mut T);

// Manual impls: the derives would add unwanted `T: Clone`/`T: Copy` bounds.
impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor method (rather than direct field reads) so closures capture
    /// the whole wrapper — edition-2021 disjoint capture would otherwise pull
    /// in only the bare `*mut T`, which is deliberately not `Send`/`Sync`.
    fn get(self) -> *mut T {
        self.0
    }
}

// SAFETY: see the type docs — disjoint per-block access plus the round
// barrier make the raw accesses race-free.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

/// Runs `f(block, a_chunk, b_chunk)` over two mutable slices cut into
/// matching fixed blocks (`a_block` elements of `a` next to `b_block`
/// elements of `b` per block), on up to `threads` pool participants, and
/// returns the per-block results **in block order**.
///
/// This is the in-place flavour of [`run_blocks`] for the bounds-maintenance
/// pattern of the accelerated k-means baselines: per row block, Elkan updates
/// `upper[lo..hi]` alongside the `lower[lo*k..hi*k]` bound matrix rows, and
/// Hamerly updates `upper` alongside the same-length `lower`.  Block
/// boundaries depend only on the slice lengths, each block's chunks are
/// disjoint from every other block's, and the final chunk is simply shorter
/// when the lengths are not multiples of the block sizes — so the result (and
/// the slice contents) is bit-identical at any thread count.
///
/// # Panics
///
/// Panics when a block length is zero or the two slices disagree on the
/// number of blocks they form.
pub fn run_mut_blocks<A, B, R, F>(
    threads: usize,
    a: &mut [A],
    a_block: usize,
    b: &mut [B],
    b_block: usize,
    f: F,
) -> Vec<R>
where
    A: Send,
    B: Send,
    R: Send,
    F: Fn(usize, &mut [A], &mut [B]) -> R + Sync,
{
    assert!(a_block > 0 && b_block > 0, "block lengths must be positive");
    let n_blocks = a.len().div_ceil(a_block);
    assert_eq!(
        n_blocks,
        b.len().div_ceil(b_block),
        "the two slices must form the same number of blocks"
    );
    let (a_len, b_len) = (a.len(), b.len());
    let pa = SendPtr(a.as_mut_ptr());
    let pb = SendPtr(b.as_mut_ptr());
    run_blocks(threads, n_blocks, move |blk| {
        let a_lo = blk * a_block;
        let a_hi = ((blk + 1) * a_block).min(a_len);
        let b_lo = blk * b_block;
        let b_hi = ((blk + 1) * b_block).min(b_len);
        // SAFETY: each block index is claimed exactly once and the half-open
        // ranges of distinct blocks never overlap, so these are disjoint
        // exclusive borrows; the round barrier orders them before the
        // caller's slices are touched again.
        let ca = unsafe { std::slice::from_raw_parts_mut(pa.get().add(a_lo), a_hi - a_lo) };
        let cb = unsafe { std::slice::from_raw_parts_mut(pb.get().add(b_lo), b_hi - b_lo) };
        f(blk, ca, cb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolves_the_knob() {
        assert_eq!(effective_threads(None), 1);
        assert_eq!(effective_threads(Some(0)), 1);
        assert_eq!(effective_threads(Some(1)), 1);
        assert_eq!(effective_threads(Some(7)), 7);
    }

    #[test]
    fn run_blocks_returns_results_in_block_order() {
        for threads in [1usize, 2, 4, 7] {
            let out = run_blocks(threads, 23, |b| b * b);
            let expect: Vec<usize> = (0..23).map(|b| b * b).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn run_blocks_scoped_matches_pool_executor() {
        for threads in [1usize, 2, 4, 7] {
            assert_eq!(
                run_blocks_scoped(threads, 23, |b| b * 3 + 1),
                run_blocks(threads, 23, |b| b * 3 + 1),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn run_blocks_handles_empty_and_single() {
        assert_eq!(run_blocks(4, 0, |b| b), Vec::<usize>::new());
        assert_eq!(run_blocks(4, 1, |b| b + 10), vec![10]);
        assert_eq!(run_blocks_scoped(4, 0, |b| b), Vec::<usize>::new());
        assert_eq!(run_blocks_scoped(4, 1, |b| b + 10), vec![10]);
    }

    #[test]
    fn pool_workers_survive_many_rounds() {
        // The whole point of the pool: thousands of rounds reuse the same
        // parked workers.  Each round must still merge in block order.
        let pool = WorkerPool::new();
        for round in 0..500usize {
            let out = pool.run(4, 9, |b| b + round);
            let expect: Vec<usize> = (0..9).map(|b| b + round).collect();
            assert_eq!(out, expect, "round {round}");
        }
    }

    #[test]
    fn dedicated_pool_shuts_down_cleanly_on_drop() {
        let pool = WorkerPool::new();
        assert_eq!(pool.run(3, 5, |b| b), vec![0, 1, 2, 3, 4]);
        drop(pool); // joins the resident workers; must not hang or panic
    }

    #[test]
    fn nested_calls_degrade_to_sequential_instead_of_deadlocking() {
        let out = run_blocks(4, 6, |outer| {
            let inner = run_blocks(4, 3, move |b| outer * 10 + b);
            inner.iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..6).map(|outer| outer * 30 + 3).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn worker_panics_propagate_and_leave_the_pool_usable() {
        let pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(4, 16, |b| {
                if b == 7 {
                    panic!("block body failed");
                }
                b
            })
        }));
        assert!(result.is_err(), "the panic must propagate to the caller");
        // The failed round must not wedge the job slot.
        assert_eq!(pool.run(4, 4, |b| b * 2), vec![0, 2, 4, 6]);
    }

    #[test]
    fn run_mut_blocks_updates_matching_chunks_at_any_thread_count() {
        // Elkan's maintenance shape: n "upper" values next to n*k "lower"
        // values, k = 3, cut into 4-row blocks (final block short).
        let k = 3usize;
        let n = 10usize;
        let reference: (Vec<f32>, Vec<f32>) = {
            let mut upper: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut lower: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.5).collect();
            for i in 0..n {
                upper[i] += 1.0;
                for c in 0..k {
                    lower[i * k + c] -= 0.25;
                }
            }
            (upper, lower)
        };
        for threads in [1usize, 2, 4, 7] {
            let mut upper: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let mut lower: Vec<f32> = (0..n * k).map(|i| i as f32 * 0.5).collect();
            let rows = run_mut_blocks(threads, &mut upper, 4, &mut lower, 4 * k, |_, up, lo| {
                for u in up.iter_mut() {
                    *u += 1.0;
                }
                for l in lo.iter_mut() {
                    *l -= 0.25;
                }
                up.len()
            });
            assert_eq!(rows, vec![4, 4, 2], "threads={threads}");
            assert_eq!(upper, reference.0, "threads={threads}");
            assert_eq!(lower, reference.1, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "same number of blocks")]
    fn run_mut_blocks_rejects_mismatched_shapes() {
        let mut a = [0u8; 10];
        let mut b = [0u8; 4];
        let _ = run_mut_blocks(2, &mut a, 2, &mut b, 3, |_, _, _| ());
    }

    #[test]
    fn threads_from_env_is_stable() {
        assert_eq!(threads_from_env(), threads_from_env());
    }
}
