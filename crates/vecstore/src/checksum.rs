//! Hand-rolled CRC-32C (Castagnoli) behind one-time runtime dispatch.
//!
//! The durable GKSC v2 container ([`crate::io`]) checksums every section and
//! its header so a flipped bit or a short write is *detected* as a typed
//! [`crate::error::StoreError`] instead of being served as silently wrong
//! neighbours.  The container sits on the serving path — `index build` writes
//! it, every server start reads it — so the checksum must not make loading
//! meaningfully slower than the unchecksummed v1 reader (CI gates the v2/v1
//! load-throughput ratio at ≥ 0.8×, the `gksc_load` entry of
//! `BENCH_kernels.json`).
//!
//! CRC-32C is chosen over the IEEE polynomial because both x86-64 (SSE4.2
//! `crc32` instruction) and aarch64 (the `crc` extension's `crc32cx`)
//! implement it in hardware, and the workspace has no registry access for a
//! crc crate.  Following the [`crate::kernels`] idiom, the implementation is
//! selected once per process via CPU-feature detection cached in a
//! [`OnceLock`]:
//!
//! * **x86-64 + SSE4.2** — `_mm_crc32_u64`, 8 bytes per instruction;
//! * **aarch64 + crc** — `__crc32cd`, 8 bytes per instruction;
//! * **fallback** — portable slicing-by-8 over compile-time tables.
//!
//! All three produce the standard CRC-32C value (init `!0`, reflected
//! polynomial `0x82F6_3B78`, final xor `!0`), so files written on one
//! architecture verify on every other.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::sync::OnceLock;

/// Computes the CRC-32C checksum of `bytes`.
///
/// ```
/// // Standard test vector: CRC-32C("123456789") = 0xE3069283.
/// assert_eq!(vecstore::checksum::crc32c(b"123456789"), 0xE306_9283);
/// ```
#[inline]
pub fn crc32c(bytes: &[u8]) -> u32 {
    crc32c_append(!0u32, bytes) ^ !0u32
}

/// Streaming form: folds `bytes` into a running raw state (pre-final-xor).
///
/// Start from `!0`, fold any number of chunks, then xor with `!0` to obtain
/// the value [`crc32c`] would give for the concatenation.  Used by the
/// sectioned writer so tag, length and payload fold into one checksum without
/// materialising their concatenation.
#[inline]
pub fn crc32c_append(state: u32, bytes: &[u8]) -> u32 {
    static IMPL: OnceLock<fn(u32, &[u8]) -> u32> = OnceLock::new();
    (IMPL.get_or_init(detect))(state, bytes)
}

/// Human-readable name of the selected implementation (mirrors
/// `kernels::active_dispatch` for the bench report).
pub fn active_impl() -> &'static str {
    static NAME: OnceLock<&'static str> = OnceLock::new();
    NAME.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("sse4.2") {
            return "sse4.2-crc32";
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("crc") {
            return "armv8-crc32";
        }
        "slicing-by-8"
    })
}

fn detect() -> fn(u32, &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("sse4.2") {
        return x86_append;
    }
    #[cfg(target_arch = "aarch64")]
    if std::arch::is_aarch64_feature_detected!("crc") {
        return aarch64_append;
    }
    soft_append
}

#[cfg(target_arch = "x86_64")]
fn x86_append(state: u32, bytes: &[u8]) -> u32 {
    // SAFETY: `detect` only selects this implementation after
    // `is_x86_feature_detected!("sse4.2")` confirmed the instruction exists.
    unsafe { x86_append_inner(state, bytes) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn x86_append_inner(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = u64::from(state);
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        crc = _mm_crc32_u64(crc, le_u64_chunk(chunk));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    crc
}

#[cfg(target_arch = "aarch64")]
fn aarch64_append(state: u32, bytes: &[u8]) -> u32 {
    // SAFETY: `detect` only selects this implementation after
    // `is_aarch64_feature_detected!("crc")` confirmed the instructions exist.
    unsafe { aarch64_append_inner(state, bytes) }
}

#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "crc")]
unsafe fn aarch64_append_inner(state: u32, bytes: &[u8]) -> u32 {
    use std::arch::aarch64::{__crc32cb, __crc32cd};
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        crc = __crc32cd(crc, le_u64_chunk(chunk));
    }
    for &b in chunks.remainder() {
        crc = __crc32cb(crc, b);
    }
    crc
}

/// Little-endian `u64` from an 8-byte `chunks_exact` window (MSRV-friendly
/// stand-in for `as_chunks`).
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
#[inline(always)]
fn le_u64_chunk(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Reflected CRC-32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// Slicing-by-8 tables: `TABLES[0]` is the classic byte-at-a-time table and
/// `TABLES[j]` advances a byte seen `j` positions earlier, so eight table
/// lookups retire eight input bytes per iteration.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

fn soft_append(state: u32, bytes: &[u8]) -> u32 {
    let mut crc = state;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let low = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        crc = TABLES[7][(low & 0xff) as usize]
            ^ TABLES[6][((low >> 8) & 0xff) as usize]
            ^ TABLES[5][((low >> 16) & 0xff) as usize]
            ^ TABLES[4][(low >> 24) as usize]
            ^ TABLES[3][chunk[4] as usize]
            ^ TABLES[2][chunk[5] as usize]
            ^ TABLES[1][chunk[6] as usize]
            ^ TABLES[0][chunk[7] as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vectors() {
        // Catalogue of parametrised CRC algorithms, CRC-32C entry.
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b""), 0);
        // RFC 3720 (iSCSI) appendix: 32 zero bytes.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        // 32 bytes of 0xFF.
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        // Ascending 0..=31.
        let asc: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&asc), 0x46DD_794E);
    }

    #[test]
    fn software_matches_dispatched_on_all_lengths_and_offsets() {
        // Covers every tail length and unaligned starts; on hardware-capable
        // hosts this cross-checks the accelerated path against the tables.
        let data: Vec<u8> = (0..257u32)
            .map(|i| (i.wrapping_mul(131) >> 3) as u8)
            .collect();
        for start in 0..4 {
            for len in 0..(data.len() - start) {
                let slice = &data[start..start + len];
                let dispatched = crc32c(slice);
                let soft = soft_append(!0, slice) ^ !0;
                assert_eq!(dispatched, soft, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        for split in [0, 1, 7, 8, 9, 500, 999, 1000] {
            let mut state = !0u32;
            state = crc32c_append(state, &data[..split]);
            state = crc32c_append(state, &data[split..]);
            assert_eq!(state ^ !0, crc32c(&data), "split={split}");
        }
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let data: Vec<u8> = (0..64u32).map(|i| (i * 37) as u8).collect();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32c(&corrupt), clean, "byte={byte} bit={bit}");
            }
        }
    }

    #[test]
    fn active_impl_is_stable() {
        assert_eq!(active_impl(), active_impl());
        assert!(!active_impl().is_empty());
    }
}
