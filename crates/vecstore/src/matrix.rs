//! Row-major dense matrix of `f32` vectors.
//!
//! [`VectorSet`] is the canonical container for a descriptor collection.  All
//! clustering algorithms in the workspace take `&VectorSet` and address
//! samples by row index, which keeps membership bookkeeping (`cluster label of
//! sample i`) trivially indexable.

use crate::error::{Error, Result};

/// An owned, row-major `n × d` matrix of `f32` values.
///
/// The storage is a single contiguous `Vec<f32>` so row access is a cheap
/// slice operation and the whole set can be handed to I/O routines without
/// copies.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorSet {
    data: Vec<f32>,
    dim: usize,
}

impl VectorSet {
    /// Creates a vector set from a flat buffer laid out row-major.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] if `data.len()` is not a multiple
    /// of `dim`, and [`Error::EmptyInput`] if `dim == 0`.
    pub fn from_flat(data: Vec<f32>, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::EmptyInput("dimension must be non-zero"));
        }
        if data.len() % dim != 0 {
            return Err(Error::DimensionMismatch {
                expected: dim,
                found: data.len() % dim,
            });
        }
        Ok(Self { data, dim })
    }

    /// Creates a vector set from a list of equally sized rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::EmptyInput`] when `rows` is empty and
    /// [`Error::DimensionMismatch`] when rows disagree in length.
    pub fn from_rows(rows: Vec<Vec<f32>>) -> Result<Self> {
        let first = rows.first().ok_or(Error::EmptyInput("rows"))?;
        let dim = first.len();
        if dim == 0 {
            return Err(Error::EmptyInput("dimension must be non-zero"));
        }
        let mut data = Vec::with_capacity(rows.len() * dim);
        for row in &rows {
            if row.len() != dim {
                return Err(Error::DimensionMismatch {
                    expected: dim,
                    found: row.len(),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { data, dim })
    }

    /// Creates an all-zero vector set with `n` rows of dimensionality `dim`.
    pub fn zeros(n: usize, dim: usize) -> Result<Self> {
        if dim == 0 {
            return Err(Error::EmptyInput("dimension must be non-zero"));
        }
        Ok(Self {
            data: vec![0.0; n * dim],
            dim,
        })
    }

    /// Number of rows (samples).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// `true` when the set holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Dimensionality `d` of every row.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow row `i` as a slice of length [`Self::dim`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`; use [`Self::try_row`] for a fallible
    /// variant.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        let d = self.dim;
        &self.data[i * d..(i + 1) * d]
    }

    /// Fallible row access.
    pub fn try_row(&self, i: usize) -> Result<&[f32]> {
        if i >= self.len() {
            return Err(Error::IndexOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        Ok(self.row(i))
    }

    /// Mutable access to row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        let d = self.dim;
        &mut self.data[i * d..(i + 1) * d]
    }

    /// The whole backing buffer, row-major.
    #[inline]
    pub fn as_flat(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the set and returns the backing buffer.
    pub fn into_flat(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over rows in index order.
    pub fn rows(&self) -> impl ExactSizeIterator<Item = &[f32]> + '_ {
        self.data.chunks_exact(self.dim)
    }

    /// Returns a new set containing the rows selected by `indices`, in order.
    ///
    /// Duplicate indices are allowed (the row is copied twice), which the
    /// bootstrap-style samplers rely on.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] for any out-of-range index.
    pub fn gather(&self, indices: &[usize]) -> Result<Self> {
        let mut data = Vec::with_capacity(indices.len() * self.dim);
        for &i in indices {
            if i >= self.len() {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    len: self.len(),
                });
            }
            data.extend_from_slice(self.row(i));
        }
        Ok(Self {
            data,
            dim: self.dim,
        })
    }

    /// Appends a row to the set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DimensionMismatch`] when the row length differs from
    /// [`Self::dim`].
    pub fn push_row(&mut self, row: &[f32]) -> Result<()> {
        if row.len() != self.dim {
            return Err(Error::DimensionMismatch {
                expected: self.dim,
                found: row.len(),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Splits the set into two: rows `[0, at)` and rows `[at, n)`.
    ///
    /// Used by the harness to carve a query set off a base set.
    ///
    /// # Errors
    ///
    /// Returns [`Error::IndexOutOfBounds`] when `at > self.len()`.
    pub fn split_at(&self, at: usize) -> Result<(Self, Self)> {
        if at > self.len() {
            return Err(Error::IndexOutOfBounds {
                index: at,
                len: self.len(),
            });
        }
        let head = Self {
            data: self.data[..at * self.dim].to_vec(),
            dim: self.dim,
        };
        let tail = Self {
            data: self.data[at * self.dim..].to_vec(),
            dim: self.dim,
        };
        Ok((head, tail))
    }

    /// Computes the arithmetic mean of all rows (the global centroid).
    ///
    /// Returns `None` for an empty set.
    pub fn mean(&self) -> Option<Vec<f32>> {
        if self.is_empty() {
            return None;
        }
        let n = self.len() as f64;
        let mut acc = vec![0.0f64; self.dim];
        for row in self.rows() {
            for (a, &x) in acc.iter_mut().zip(row) {
                *a += f64::from(x);
            }
        }
        Some(acc.into_iter().map(|a| (a / n) as f32).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> VectorSet {
        VectorSet::from_rows(vec![
            vec![1.0, 2.0, 3.0],
            vec![4.0, 5.0, 6.0],
            vec![7.0, 8.0, 9.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let vs = sample();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs.dim(), 3);
        assert_eq!(vs.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(vs.as_flat().len(), 9);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let err = VectorSet::from_rows(vec![vec![1.0, 2.0], vec![1.0]]).unwrap_err();
        assert!(matches!(err, Error::DimensionMismatch { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(
            VectorSet::from_rows(vec![]).unwrap_err(),
            Error::EmptyInput(_)
        ));
        assert!(matches!(
            VectorSet::from_rows(vec![vec![]]).unwrap_err(),
            Error::EmptyInput(_)
        ));
    }

    #[test]
    fn from_flat_checks_divisibility() {
        assert!(VectorSet::from_flat(vec![0.0; 10], 3).is_err());
        let vs = VectorSet::from_flat(vec![0.0; 12], 3).unwrap();
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn from_flat_rejects_zero_dim() {
        assert!(VectorSet::from_flat(vec![], 0).is_err());
    }

    #[test]
    fn zeros_has_expected_shape() {
        let vs = VectorSet::zeros(5, 4).unwrap();
        assert_eq!(vs.len(), 5);
        assert_eq!(vs.dim(), 4);
        assert!(vs.as_flat().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn try_row_bounds() {
        let vs = sample();
        assert!(vs.try_row(2).is_ok());
        assert!(matches!(
            vs.try_row(3).unwrap_err(),
            Error::IndexOutOfBounds { index: 3, len: 3 }
        ));
    }

    #[test]
    fn row_mut_writes_through() {
        let mut vs = sample();
        vs.row_mut(0)[1] = 42.0;
        assert_eq!(vs.row(0), &[1.0, 42.0, 3.0]);
    }

    #[test]
    fn gather_selects_and_duplicates() {
        let vs = sample();
        let g = vs.gather(&[2, 0, 0]).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.row(0), vs.row(2));
        assert_eq!(g.row(1), vs.row(0));
        assert_eq!(g.row(2), vs.row(0));
        assert!(vs.gather(&[5]).is_err());
    }

    #[test]
    fn push_row_validates_dim() {
        let mut vs = sample();
        assert!(vs.push_row(&[0.0, 0.0]).is_err());
        vs.push_row(&[0.5, 0.5, 0.5]).unwrap();
        assert_eq!(vs.len(), 4);
    }

    #[test]
    fn split_at_partitions() {
        let vs = sample();
        let (a, b) = vs.split_at(1).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 2);
        assert_eq!(b.row(0), vs.row(1));
        assert!(vs.split_at(4).is_err());
    }

    #[test]
    fn split_at_edges() {
        let vs = sample();
        let (a, b) = vs.split_at(0).unwrap();
        assert_eq!(a.len(), 0);
        assert_eq!(b.len(), 3);
        let (a, b) = vs.split_at(3).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn mean_is_componentwise_average() {
        let vs = sample();
        let m = vs.mean().unwrap();
        assert_eq!(m, vec![4.0, 5.0, 6.0]);
        let empty = VectorSet::zeros(0, 3).unwrap();
        assert!(empty.mean().is_none());
    }

    #[test]
    fn rows_iterator_matches_row_access() {
        let vs = sample();
        let collected: Vec<&[f32]> = vs.rows().collect();
        assert_eq!(collected.len(), 3);
        for (i, r) in collected.iter().enumerate() {
            assert_eq!(*r, vs.row(i));
        }
    }
}
