//! Fault-injection test support: readers and writers that corrupt on purpose.
//!
//! The durability claims of the GKSC v2 container ([`crate::io`]) are only as
//! good as the adversarial inputs they are tested against.  This module
//! provides deterministic corruption adapters used by the fault-injection
//! suites (and usable by downstream crates' tests) to drive the **"no panic,
//! no garbage"** invariant: every injected corruption must surface as a typed
//! [`crate::error::StoreError`], never as a panic, an allocation abort, or a
//! silently wrong artefact.
//!
//! * [`FaultyReader`] wraps any [`Read`] and injects truncation at an exact
//!   byte, a single bit-flip at an exact byte, or pathologically short reads.
//! * [`FaultyWriter`] wraps any [`Write`] and fails (or silently drops bytes)
//!   after an exact byte count, modelling a crash or a full disk mid-save.
//! * [`corrupt`] applies a [`Fault`] to an in-memory image, for sweeps that
//!   mutate a saved file byte by byte.
//!
//! The adapters live in the library (not `#[cfg(test)]`) so integration tests
//! and downstream crates can reuse them; they have no unsafe code and no
//! cost when unused.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::io::{Read, Write};

/// A deterministic corruption to inject into a byte stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Deliver only the first `n` bytes, then report end-of-file.
    Truncate(usize),
    /// Flip bit `bit` (0–7) of byte `byte`, delivering everything else
    /// unchanged.
    FlipBit {
        /// Byte offset of the corrupted byte.
        byte: usize,
        /// Bit index within the byte (0 = least significant).
        bit: u8,
    },
    /// Deliver the stream unmodified (the control arm of a sweep).
    None,
}

/// Applies `fault` to an in-memory file image, returning the corrupted copy.
///
/// Offsets beyond the image are clamped: truncation past the end is a no-op,
/// and a bit-flip past the end returns the image unchanged (sweeps over
/// sampled offsets need not bounds-check).
pub fn corrupt(image: &[u8], fault: Fault) -> Vec<u8> {
    match fault {
        Fault::Truncate(n) => image[..n.min(image.len())].to_vec(),
        Fault::FlipBit { byte, bit } => {
            let mut out = image.to_vec();
            if let Some(b) = out.get_mut(byte) {
                *b ^= 1 << (bit & 7);
            }
            out
        }
        Fault::None => image.to_vec(),
    }
}

/// A [`Read`] adapter that injects a [`Fault`] and/or pathologically short
/// reads into the wrapped stream.
///
/// Short reads (`max_chunk`) exercise the framing code's handling of partial
/// `read` returns — a correct reader must loop, not assume one call fills the
/// buffer.
pub struct FaultyReader<R> {
    inner: R,
    fault: Fault,
    /// Bytes delivered so far (pre-corruption position in the stream).
    pos: usize,
    /// Upper bound on bytes returned per `read` call (`usize::MAX` = off).
    max_chunk: usize,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner`, injecting `fault`.
    pub fn new(inner: R, fault: Fault) -> Self {
        Self {
            inner,
            fault,
            pos: 0,
            max_chunk: usize::MAX,
        }
    }

    /// Limits every `read` call to at most `max_chunk` bytes, simulating a
    /// drip-feeding transport.  `max_chunk` is clamped to at least 1.
    pub fn with_short_reads(mut self, max_chunk: usize) -> Self {
        self.max_chunk = max_chunk.max(1);
        self
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let mut limit = buf.len().min(self.max_chunk);
        if let Fault::Truncate(n) = self.fault {
            limit = limit.min(n.saturating_sub(self.pos));
            if limit == 0 {
                return Ok(0);
            }
        }
        let got = self.inner.read(&mut buf[..limit])?;
        if let Fault::FlipBit { byte, bit } = self.fault {
            if byte >= self.pos && byte < self.pos + got {
                buf[byte - self.pos] ^= 1 << (bit & 7);
            }
        }
        self.pos += got;
        Ok(got)
    }
}

/// A [`Write`] adapter that models a crash or full disk: after `limit` bytes
/// every further write fails with [`std::io::ErrorKind::WriteZero`] (or, in
/// silent mode, is dropped while reporting success — the torn-write case a
/// checksummed format must catch on read-back).
pub struct FaultyWriter<W> {
    inner: W,
    limit: usize,
    written: usize,
    silent: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, failing after `limit` bytes.
    pub fn new(inner: W, limit: usize) -> Self {
        Self {
            inner,
            limit,
            written: 0,
            silent: false,
        }
    }

    /// Switches to silent mode: bytes past the limit are dropped while the
    /// writer keeps reporting success, producing a torn file.
    pub fn silently(mut self) -> Self {
        self.silent = true;
        self
    }

    /// Bytes actually forwarded to the wrapped writer.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Consumes the adapter, returning the wrapped writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let room = self.limit.saturating_sub(self.written);
        if room == 0 {
            return if self.silent {
                Ok(buf.len())
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "injected write failure",
                ))
            };
        }
        let n = self.inner.write(&buf[..buf.len().min(room)])?;
        self.written += n;
        Ok(if self.silent && n == room {
            buf.len()
        } else {
            n
        })
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn corrupt_truncates_flips_and_passes_through() {
        let image: Vec<u8> = (0..16).collect();
        assert_eq!(corrupt(&image, Fault::Truncate(4)), vec![0, 1, 2, 3]);
        assert_eq!(corrupt(&image, Fault::Truncate(999)), image);
        let flipped = corrupt(&image, Fault::FlipBit { byte: 3, bit: 0 });
        assert_eq!(flipped[3], 2);
        assert_eq!(&flipped[..3], &image[..3]);
        assert_eq!(corrupt(&image, Fault::FlipBit { byte: 99, bit: 0 }), image);
        assert_eq!(corrupt(&image, Fault::None), image);
    }

    #[test]
    fn faulty_reader_truncates_at_exact_byte() {
        let data: Vec<u8> = (0..100).collect();
        for cut in [0usize, 1, 37, 99, 100, 150] {
            let mut out = Vec::new();
            FaultyReader::new(Cursor::new(&data), Fault::Truncate(cut))
                .read_to_end(&mut out)
                .unwrap();
            assert_eq!(out, &data[..cut.min(data.len())], "cut={cut}");
        }
    }

    #[test]
    fn faulty_reader_flips_exactly_one_bit_across_chunk_sizes() {
        let data: Vec<u8> = (0..64).collect();
        for chunk in [1usize, 3, 8, 64] {
            let mut out = Vec::new();
            FaultyReader::new(Cursor::new(&data), Fault::FlipBit { byte: 17, bit: 5 })
                .with_short_reads(chunk)
                .read_to_end(&mut out)
                .unwrap();
            let diffs: Vec<usize> = (0..data.len()).filter(|&i| out[i] != data[i]).collect();
            assert_eq!(diffs, vec![17], "chunk={chunk}");
            assert_eq!(out[17], data[17] ^ (1 << 5));
        }
    }

    #[test]
    fn short_reads_never_exceed_chunk() {
        let data = vec![7u8; 40];
        let mut reader = FaultyReader::new(Cursor::new(&data), Fault::None).with_short_reads(3);
        let mut buf = [0u8; 16];
        let mut total = 0;
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            assert!(n <= 3);
            total += n;
        }
        assert_eq!(total, data.len());
    }

    #[test]
    fn faulty_writer_fails_after_limit() {
        let mut w = FaultyWriter::new(Vec::new(), 10);
        w.write_all(&[1; 6]).unwrap();
        let err = w.write_all(&[2; 6]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WriteZero);
        assert_eq!(w.written(), 10);
        assert_eq!(w.into_inner().len(), 10);
    }

    #[test]
    fn silent_faulty_writer_produces_torn_file() {
        let mut w = FaultyWriter::new(Vec::new(), 10).silently();
        w.write_all(&[3; 25]).unwrap();
        assert_eq!(w.written(), 10);
        assert_eq!(w.into_inner(), vec![3; 10]);
    }
}
