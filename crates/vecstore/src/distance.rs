//! Distance kernels.
//!
//! All algorithms in the paper operate on squared Euclidean distance; the
//! average-distortion measure (Eqn. 4) is likewise defined on squared
//! distances, so [`l2_sq`] is the workhorse of the whole workspace.  The
//! kernel is written with a 4-way unrolled accumulator which the compiler
//! auto-vectorises; a naive reference implementation is kept for testing.

/// Squared Euclidean distance between two equally sized slices.
///
/// # Panics
///
/// Debug-asserts that `a.len() == b.len()`; in release builds the shorter
/// length wins (both callers in this workspace always pass equal lengths).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        let d0 = a[j] - b[j];
        let d1 = a[j + 1] - b[j + 1];
        let d2 = a[j + 2] - b[j + 2];
        let d3 = a[j + 3] - b[j + 3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        let d = a[j] - b[j];
        acc += d * d;
    }
    acc
}

/// Naive reference implementation of [`l2_sq`], used by tests.
#[inline]
pub fn l2_sq_reference(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance (square root of [`l2_sq`]).
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let chunks = n / 4;
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    for i in 0..chunks {
        let j = i * 4;
        acc0 += a[j] * b[j];
        acc1 += a[j + 1] * b[j + 1];
        acc2 += a[j + 2] * b[j + 2];
        acc3 += a[j + 3] * b[j + 3];
    }
    let mut acc = (acc0 + acc1) + (acc2 + acc3);
    for j in chunks * 4..n {
        acc += a[j] * b[j];
    }
    acc
}

/// Squared ℓ² norm of a slice.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Cosine distance `1 - cos(a, b)`; returns `1.0` when either vector is zero.
///
/// Not used by the clustering algorithms themselves (they are ℓ²-based) but
/// provided for the GloVe-like workloads where cosine recall is a common
/// sanity metric.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let na = norm_sq(a).sqrt();
    let nb = norm_sq(b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// Squared Euclidean distance computed through the inner-product expansion
/// `‖x-c‖² = ‖x‖² - 2·x·c + ‖c‖²`, given pre-computed squared norms.
///
/// The assignment step of Lloyd/Elkan/Hamerly uses this form because the
/// sample norms are constant across iterations.  Negative results caused by
/// floating-point cancellation are clamped to zero.
#[inline]
pub fn l2_sq_via_dot(x: &[f32], c: &[f32], x_norm_sq: f32, c_norm_sq: f32) -> f32 {
    let d = x_norm_sq - 2.0 * dot(x, c) + c_norm_sq;
    if d < 0.0 {
        0.0
    } else {
        d
    }
}

/// Metric selector used by the public clustering APIs.
///
/// The paper evaluates exclusively in ℓ² space; [`Metric::SquaredEuclidean`]
/// is therefore the default everywhere.  [`Metric::Cosine`] is provided for
/// completeness when the library is used on normalised embeddings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (the paper's setting).
    #[default]
    SquaredEuclidean,
    /// Cosine distance `1 - cos`.
    Cosine,
}

impl Metric {
    /// Evaluates the metric on a pair of vectors.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredEuclidean => l2_sq(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_matches_reference_on_odd_lengths() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 128, 129] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..len).map(|i| (len - i) as f32 * 0.25).collect();
            let fast = l2_sq(&a, &b);
            let slow = l2_sq_reference(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                "len={len}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn l2_sq_zero_on_identical() {
        let a = vec![1.5f32; 77];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_l2_sq() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(l2_sq(&a, &b), 25.0);
        assert_eq!(l2(&a, &b), 5.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
        assert_eq!(norm_sq(&a), 55.0);
    }

    #[test]
    fn cosine_distance_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let c = [2.0, 0.0];
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_distance(&a, &c).abs() < 1e-6);
        // zero vector convention
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn l2_sq_via_dot_matches_direct() {
        let x = [1.0, -2.0, 3.5, 0.25];
        let c = [0.5, 0.5, -1.0, 2.0];
        let d1 = l2_sq(&x, &c);
        let d2 = l2_sq_via_dot(&x, &c, norm_sq(&x), norm_sq(&c));
        assert!((d1 - d2).abs() < 1e-4);
    }

    #[test]
    fn l2_sq_via_dot_clamps_negative() {
        // identical vectors with a slightly inflated norm to force cancellation
        let x = [1.0f32; 8];
        let d = l2_sq_via_dot(&x, &x, norm_sq(&x) - 1e-3, norm_sq(&x));
        assert!(d >= 0.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Metric::SquaredEuclidean.distance(&a, &b), 2.0);
        assert!((Metric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(Metric::default(), Metric::SquaredEuclidean);
    }
}
