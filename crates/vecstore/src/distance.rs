//! Distance kernels.
//!
//! All algorithms in the paper operate on squared Euclidean distance; the
//! average-distortion measure (Eqn. 4) is likewise defined on squared
//! distances, so [`l2_sq`] is the workhorse of the whole workspace.
//!
//! # Kernel dispatch design
//!
//! The functions in this module are thin wrappers over the
//! [`crate::kernels`] subsystem, which holds one [`crate::kernels::Kernels`]
//! table of function pointers per instruction-set level:
//!
//! * `avx2+fma` on x86-64 (8-lane `f32` FMA), selected at runtime with
//!   `is_x86_feature_detected!`;
//! * `neon` on aarch64 (4-lane `f32` FMA), selected with
//!   `is_aarch64_feature_detected!`;
//! * `scalar`, the portable 4-way unrolled fallback (also the testing
//!   reference baseline, see [`l2_sq_reference`] for the naive ground truth).
//!
//! Detection runs **once per process**: the chosen table is cached in a
//! `OnceLock`, so a call here costs one atomic load plus one indirect call.
//! For tight loops that score one query against many candidates, prefer the
//! **batched one-to-many API** ([`crate::kernels::l2_sq_one_to_many`],
//! [`crate::kernels::l2_sq_one_to_many_indexed`],
//! [`crate::kernels::l2_sq_one_to_many_cached`]): it resolves the dispatch
//! once per block, keeps the query hot across candidates, and the
//! norm-cached variant turns each evaluation into a single dot product via
//! `‖x−c‖² = ‖x‖² − 2·x·c + ‖c‖²`.
//!
//! SIMD results differ from the scalar path only by floating-point
//! reassociation; the property suite pins all levels to the naive reference
//! within 1e-3 relative tolerance across all remainder lane counts.

use crate::kernels;

/// Squared Euclidean distance between two equally sized slices.
///
/// # Panics
///
/// Debug-asserts that `a.len() == b.len()`; in release builds the shorter
/// length wins (both callers in this workspace always pass equal lengths).
#[inline]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    (kernels::active().l2_sq)(a, b)
}

/// Naive reference implementation of [`l2_sq`], used by tests.
#[inline]
pub fn l2_sq_reference(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance (square root of [`l2_sq`]).
#[inline]
pub fn l2(a: &[f32], b: &[f32]) -> f32 {
    l2_sq(a, b).sqrt()
}

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    (kernels::active().dot)(a, b)
}

/// Mixed-precision dot product between an `f64` accumulator vector and an
/// `f32` row — the `D_r · x` product at the heart of every boost-k-means
/// `ΔI` evaluation (see `gkmeans::ClusterState`).
#[inline]
pub fn dot_f64_f32(a: &[f64], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    (kernels::active().dot_f64_f32)(a, b)
}

/// Squared ℓ² norm of a slice.
#[inline]
pub fn norm_sq(a: &[f32]) -> f32 {
    (kernels::active().dot)(a, a)
}

/// Cosine distance `1 - cos(a, b)`; returns `1.0` when either vector is zero.
///
/// Computed in a **single fused pass** producing `a·b`, `‖a‖²` and `‖b‖²`
/// together, instead of the three separate passes the naive formulation
/// needs.  For normalised-embedding workloads where the norms are already
/// cached, use [`cosine_distance_cached`].
///
/// Not used by the clustering algorithms themselves (they are ℓ²-based) but
/// provided for the GloVe-like workloads where cosine recall is a common
/// sanity metric.
#[inline]
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let f = (kernels::active().fused_dot_norms)(a, b);
    let na = f.norm_a_sq.sqrt();
    let nb = f.norm_b_sq.sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - f.dot / (na * nb)
}

/// Norm-cached cosine distance: one dot product given pre-computed squared
/// norms (`crate::Norms` caches exactly these).  Returns `1.0` when either
/// cached norm is zero.
#[inline]
pub fn cosine_distance_cached(a: &[f32], b: &[f32], norm_a_sq: f32, norm_b_sq: f32) -> f32 {
    if norm_a_sq == 0.0 || norm_b_sq == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (norm_a_sq.sqrt() * norm_b_sq.sqrt())
}

/// Squared Euclidean distance computed through the inner-product expansion
/// `‖x-c‖² = ‖x‖² - 2·x·c + ‖c‖²`, given pre-computed squared norms.
///
/// The assignment step of Lloyd/Elkan/Hamerly uses this form because the
/// sample norms are constant across iterations.  Negative results caused by
/// floating-point cancellation are clamped to zero.
#[inline]
pub fn l2_sq_via_dot(x: &[f32], c: &[f32], x_norm_sq: f32, c_norm_sq: f32) -> f32 {
    let d = x_norm_sq - 2.0 * dot(x, c) + c_norm_sq;
    if d < 0.0 {
        0.0
    } else {
        d
    }
}

/// Metric selector used by the public clustering APIs.
///
/// The paper evaluates exclusively in ℓ² space; [`Metric::SquaredEuclidean`]
/// is therefore the default everywhere.  [`Metric::Cosine`] is provided for
/// completeness when the library is used on normalised embeddings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Metric {
    /// Squared Euclidean distance (the paper's setting).
    #[default]
    SquaredEuclidean,
    /// Cosine distance `1 - cos`.
    Cosine,
}

impl Metric {
    /// Evaluates the metric on a pair of vectors.
    #[inline]
    pub fn distance(&self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::SquaredEuclidean => l2_sq(a, b),
            Metric::Cosine => cosine_distance(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_sq_matches_reference_on_odd_lengths() {
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 13, 128, 129] {
            let a: Vec<f32> = (0..len).map(|i| i as f32 * 0.5).collect();
            let b: Vec<f32> = (0..len).map(|i| (len - i) as f32 * 0.25).collect();
            let fast = l2_sq(&a, &b);
            let slow = l2_sq_reference(&a, &b);
            assert!(
                (fast - slow).abs() <= 1e-3 * slow.max(1.0),
                "len={len}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn l2_sq_zero_on_identical() {
        let a = vec![1.5f32; 77];
        assert_eq!(l2_sq(&a, &a), 0.0);
    }

    #[test]
    fn l2_is_sqrt_of_l2_sq() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(l2_sq(&a, &b), 25.0);
        assert_eq!(l2(&a, &b), 5.0);
    }

    #[test]
    fn dot_and_norm() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(dot(&a, &b), 35.0);
        assert_eq!(norm_sq(&a), 55.0);
    }

    #[test]
    fn dot_f64_f32_matches_widened_dot() {
        for len in [0usize, 1, 3, 4, 7, 8, 9, 64, 129] {
            let a: Vec<f64> = (0..len).map(|i| i as f64 * 0.25 - 3.0).collect();
            let b: Vec<f32> = (0..len).map(|i| (i as f32 * 0.37).sin()).collect();
            let fast = dot_f64_f32(&a, &b);
            let slow: f64 = a.iter().zip(&b).map(|(x, &y)| x * f64::from(y)).sum();
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.abs().max(1.0),
                "len={len}: {fast} vs {slow}"
            );
        }
    }

    #[test]
    fn cosine_distance_basics() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        let c = [2.0, 0.0];
        assert!((cosine_distance(&a, &b) - 1.0).abs() < 1e-6);
        assert!(cosine_distance(&a, &c).abs() < 1e-6);
        // zero vector convention
        assert_eq!(cosine_distance(&a, &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn cached_cosine_matches_direct() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32 * 0.3).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32 * 0.7).cos()).collect();
        let direct = cosine_distance(&a, &b);
        let cached = cosine_distance_cached(&a, &b, norm_sq(&a), norm_sq(&b));
        assert!((direct - cached).abs() < 1e-5, "{direct} vs {cached}");
        assert_eq!(cosine_distance_cached(&a, &b, 0.0, norm_sq(&b)), 1.0);
    }

    #[test]
    fn l2_sq_via_dot_matches_direct() {
        let x = [1.0, -2.0, 3.5, 0.25];
        let c = [0.5, 0.5, -1.0, 2.0];
        let d1 = l2_sq(&x, &c);
        let d2 = l2_sq_via_dot(&x, &c, norm_sq(&x), norm_sq(&c));
        assert!((d1 - d2).abs() < 1e-4);
    }

    #[test]
    fn l2_sq_via_dot_clamps_negative() {
        // identical vectors with a slightly inflated norm to force cancellation
        let x = [1.0f32; 8];
        let d = l2_sq_via_dot(&x, &x, norm_sq(&x) - 1e-3, norm_sq(&x));
        assert!(d >= 0.0);
    }

    #[test]
    fn metric_dispatch() {
        let a = [1.0, 0.0];
        let b = [0.0, 1.0];
        assert_eq!(Metric::SquaredEuclidean.distance(&a, &b), 2.0);
        assert!((Metric::Cosine.distance(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(Metric::default(), Metric::SquaredEuclidean);
    }
}
