//! Reproducible sampling and shuffling utilities.
//!
//! Clustering experiments in the paper rely on several forms of randomness:
//! random KNN-graph initialisation (Alg. 3 line 4), the random visit order of
//! boost k-means, mini-batch sub-sampling, and the random query subset used to
//! estimate VLAD10M recall (Sec. 5.1).  Centralising the helpers here keeps
//! every harness run reproducible from a single `u64` seed.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::error::{Error, Result};
use crate::matrix::VectorSet;

/// Creates the workspace-standard RNG from a seed.
///
/// Every public API in the workspace that needs randomness takes a `u64` seed
/// and builds its RNG through this function so results are reproducible across
/// crates.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Returns `count` distinct indices drawn uniformly from `0..n`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `count > n`.
pub fn sample_distinct(rng: &mut impl Rng, n: usize, count: usize) -> Result<Vec<usize>> {
    if count > n {
        return Err(Error::InvalidParameter(format!(
            "cannot draw {count} distinct indices from a population of {n}"
        )));
    }
    // For small ratios use rejection sampling; otherwise shuffle a full range.
    if count * 4 <= n {
        let mut chosen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let idx = rng.gen_range(0..n);
            if chosen.insert(idx) {
                out.push(idx);
            }
        }
        Ok(out)
    } else {
        let mut all: Vec<usize> = (0..n).collect();
        all.shuffle(rng);
        all.truncate(count);
        Ok(all)
    }
}

/// Returns a uniformly shuffled visit order `0..n`.
pub fn shuffled_order(rng: &mut impl Rng, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    order
}

/// Draws `count` indices uniformly **with replacement** from `0..n`.
///
/// # Errors
///
/// Returns [`Error::EmptyInput`] when `n == 0` and `count > 0`.
pub fn sample_with_replacement(rng: &mut impl Rng, n: usize, count: usize) -> Result<Vec<usize>> {
    if n == 0 && count > 0 {
        return Err(Error::EmptyInput("population"));
    }
    Ok((0..count).map(|_| rng.gen_range(0..n)).collect())
}

/// Extracts a uniformly sampled subset of `count` rows as a new [`VectorSet`].
///
/// # Errors
///
/// Propagates [`sample_distinct`] validation errors.
pub fn subsample(data: &VectorSet, count: usize, seed: u64) -> Result<VectorSet> {
    let mut rng = rng_from_seed(seed);
    let idx = sample_distinct(&mut rng, data.len(), count)?;
    data.gather(&idx)
}

/// Splits a dataset into a base set and a query set of `queries` rows chosen
/// uniformly at random (without replacement).  Returns `(base, query)`.
///
/// # Errors
///
/// Returns [`Error::InvalidParameter`] when `queries >= data.len()`.
pub fn split_base_query(
    data: &VectorSet,
    queries: usize,
    seed: u64,
) -> Result<(VectorSet, VectorSet)> {
    if queries >= data.len() {
        return Err(Error::InvalidParameter(format!(
            "query count {queries} must be smaller than the dataset size {}",
            data.len()
        )));
    }
    let mut rng = rng_from_seed(seed);
    let mut order = shuffled_order(&mut rng, data.len());
    let query_idx: Vec<usize> = order.drain(..queries).collect();
    let base_idx = order;
    Ok((data.gather(&base_idx)?, data.gather(&query_idx)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = rng_from_seed(7);
        for &(n, c) in &[(100usize, 10usize), (100, 90), (5, 5), (1, 1), (10, 0)] {
            let s = sample_distinct(&mut rng, n, c).unwrap();
            assert_eq!(s.len(), c);
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), c, "duplicates for n={n}, c={c}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn sample_distinct_rejects_oversized_request() {
        let mut rng = rng_from_seed(7);
        assert!(sample_distinct(&mut rng, 3, 4).is_err());
    }

    #[test]
    fn shuffled_order_is_a_permutation() {
        let mut rng = rng_from_seed(42);
        let order = shuffled_order(&mut rng, 50);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn with_replacement_allows_duplicates_and_checks_empty() {
        let mut rng = rng_from_seed(3);
        let s = sample_with_replacement(&mut rng, 2, 100).unwrap();
        assert_eq!(s.len(), 100);
        assert!(s.iter().all(|&i| i < 2));
        assert!(sample_with_replacement(&mut rng, 0, 1).is_err());
        assert!(sample_with_replacement(&mut rng, 0, 0).unwrap().is_empty());
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut a = rng_from_seed(123);
        let mut b = rng_from_seed(123);
        assert_eq!(
            sample_distinct(&mut a, 1000, 20).unwrap(),
            sample_distinct(&mut b, 1000, 20).unwrap()
        );
    }

    #[test]
    fn subsample_extracts_rows() {
        let vs = VectorSet::from_rows((0..10).map(|i| vec![i as f32, 0.0]).collect()).unwrap();
        let sub = subsample(&vs, 4, 9).unwrap();
        assert_eq!(sub.len(), 4);
        assert_eq!(sub.dim(), 2);
        // every sampled row must exist in the original
        for row in sub.rows() {
            assert!(vs.rows().any(|r| r == row));
        }
    }

    #[test]
    fn split_base_query_partitions_without_overlap() {
        let vs = VectorSet::from_rows((0..20).map(|i| vec![i as f32]).collect::<Vec<_>>()).unwrap();
        let (base, query) = split_base_query(&vs, 5, 11).unwrap();
        assert_eq!(base.len(), 15);
        assert_eq!(query.len(), 5);
        for q in query.rows() {
            assert!(!base.rows().any(|b| b == q), "query row leaked into base");
        }
        assert!(split_base_query(&vs, 20, 11).is_err());
    }
}
