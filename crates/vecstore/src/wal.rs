//! The GKSL write-ahead log: CRC-32C-per-record mutation journalling.
//!
//! This is the io-layer's durability primitive for *mutable* artefacts: a
//! checkpointed container (GKSC, [`crate::io`]) plus a GKSL segment of
//! journalled mutations equals the live state.  Every record is acknowledged
//! only after an fsync, so an acknowledged mutation survives any crash; on
//! restart the segment's valid prefix is replayed over the checkpoint.
//!
//! # Segment layout
//!
//! ```text
//! header (24 bytes):
//!   offset  size  field
//!        0     4  magic  "GKSL"
//!        4     4  version (little-endian u32, currently 1)
//!        8     4  dim     (payload schema hint, e.g. the vector dimension)
//!       12     8  start_seq (sequence number of the first record)
//!       20     4  CRC-32C over bytes 0..20
//! record (repeated until end of file):
//!        0     4  len        (payload length in bytes)
//!        4     4  len_check  (bitwise complement of len)
//!        8   len  payload  = seq u64 ‖ body bytes
//!    8+len     4  CRC-32C over the payload
//! ```
//!
//! # Torn tail vs. interior corruption
//!
//! Recovery must distinguish two very different failure classes:
//!
//! * a **torn tail** — the process died mid-append, so the file ends inside
//!   the final record.  Nothing after the last complete record was ever
//!   acknowledged, so replay *drops the tail* and recovery is clean;
//! * **interior corruption** — a storage fault flipped bytes inside the
//!   acknowledged prefix.  Acknowledged data is damaged, so replay must fail
//!   with a typed [`StoreError`], never silently drop or misparse.
//!
//! The length field is what makes the two provably separable.  Truncation
//! removes bytes but never alters them, so a record header whose `len` and
//! `len_check` agree is trustworthy: if the declared record extends past the
//! end of the file, the file was truncated → torn tail.  A bit flip anywhere
//! in the length pair breaks the complement relation (→ typed corruption),
//! and a flip anywhere in the payload or CRC of a fully-present record
//! breaks the record checksum (→ typed corruption).  The fault-injection
//! suite sweeps every truncation point and every single-bit flip over a
//! journal to pin the dichotomy exhaustively.
//!
//! Sequence numbers are dense and monotone: record `i` of a segment must
//! carry `start_seq + i`.  A gap or repeat inside a valid-checksum prefix is
//! a framing bug or forged record, reported as [`StoreError::Invariant`].
//!
//! # Fsync discipline
//!
//! [`WalWriter::append`] buffers; [`WalWriter::sync`] flushes and fsyncs.
//! Callers acknowledge a mutation only after `sync` returns, and may batch
//! many appends per sync (group commit) — the bench suite measures the
//! resulting throughput as `mutate_throughput`.  Checkpoint truncation
//! ([`WalWriter::reset`]) rides [`crate::io::atomic_write`], so a crash
//! during truncation leaves either the old journal or a fresh empty one,
//! never a torn hybrid.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use crate::checksum::crc32c;
use crate::error::{Error, Result, StoreError};
use crate::io::atomic_write;

/// Leading magic of a GKSL segment.
pub const WAL_MAGIC: [u8; 4] = *b"GKSL";
/// Current GKSL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the fixed segment header in bytes.
pub const WAL_HEADER_LEN: usize = 24;
/// Per-record overhead: length pair before the payload, CRC after it.
pub const WAL_RECORD_OVERHEAD: usize = 12;
/// Sanity bound on a single record payload (256 MiB).  A declared length
/// beyond this is a corrupt length field, not a big record.
pub const MAX_WAL_RECORD: u64 = 1 << 28;

const HEADER_SECTION: &str = "GKSL header";
const RECORD_SECTION: &str = "GKSL record";

/// Optional observability instruments for a [`WalWriter`].
///
/// Defaults to all-disabled handles (every record call is a branch on
/// `None`), so an uninstrumented writer pays nothing.  Attach live handles
/// with [`WalWriter::set_obs`]; the instruments are a pure side channel —
/// they never alter what is written or when it is synced.
#[derive(Clone, Default)]
pub struct WalObs {
    /// Latency of one [`WalWriter::append`] (encode + buffered write), ns.
    pub append_nanos: obs::HistogramHandle,
    /// Latency of one [`WalWriter::sync`] (flush + fsync), nanoseconds.
    pub sync_nanos: obs::HistogramHandle,
    /// Journal depth: appends not yet covered by a sync (unacknowledgeable).
    pub depth: obs::GaugeHandle,
}

impl WalObs {
    /// Registers the canonical GKSL instruments on `handle` (all no-ops when
    /// the handle is disabled): `wal_append_nanos`, `wal_fsync_nanos` and
    /// `wal_unsynced_records`.
    pub fn register(handle: &obs::ObsHandle) -> WalObs {
        WalObs {
            append_nanos: handle.histogram(
                "wal_append_nanos",
                "Latency of one journal append (encode + buffered write)",
            ),
            sync_nanos: handle.histogram(
                "wal_fsync_nanos",
                "Latency of one journal sync (flush + fsync)",
            ),
            depth: handle.gauge(
                "wal_unsynced_records",
                "Journal depth: appends not yet covered by an fsync",
            ),
        }
    }
}

/// One replayed journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Dense monotone sequence number assigned at append time.
    pub seq: u64,
    /// Opaque mutation payload (the caller's encoding).
    pub body: Vec<u8>,
}

/// Outcome of replaying a GKSL image: the valid prefix, fully decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalReplay {
    /// Schema hint stored in the header (e.g. vector dimensionality).
    pub dim: u32,
    /// Sequence number of the segment's first record.
    pub start_seq: u64,
    /// Every intact record, in sequence order.
    pub records: Vec<WalRecord>,
    /// Bytes of the valid prefix (header plus intact records).  Recovery
    /// truncates the file to this length before appending again.
    pub valid_len: u64,
    /// True when a torn tail (an incomplete final record, or a header cut
    /// short before any record was acknowledged) was dropped.
    pub torn: bool,
}

impl WalReplay {
    /// The sequence number the next appended record must carry.
    pub fn next_seq(&self) -> u64 {
        match self.records.last() {
            Some(r) => r.seq + 1,
            None => self.start_seq,
        }
    }
}

/// Encodes the 24-byte segment header.
fn header_bytes(dim: u32, start_seq: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..4].copy_from_slice(&WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..12].copy_from_slice(&dim.to_le_bytes());
    h[12..20].copy_from_slice(&start_seq.to_le_bytes());
    let crc = crc32c(&h[..20]);
    h[20..24].copy_from_slice(&crc.to_le_bytes());
    h
}

/// Encodes one record (length pair, payload, CRC) for appending.
pub fn encode_record(seq: u64, body: &[u8]) -> Vec<u8> {
    let len = (8 + body.len()) as u32;
    let mut out = Vec::with_capacity(WAL_RECORD_OVERHEAD + body.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&(!len).to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(body);
    let payload_start = out.len() - len as usize;
    let crc = crc32c(&out[payload_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(a)
}

fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(a)
}

/// Replays a GKSL image: decodes the valid prefix, drops a torn tail, and
/// reports interior corruption as the typed [`StoreError`] taxonomy.
///
/// An image shorter than the header (including an empty file — a journal
/// created but never fsynced) recovers as an empty, torn segment: nothing in
/// it was ever acknowledged.
///
/// # Errors
///
/// * [`StoreError::BadMagic`] / [`StoreError::UnsupportedVersion`] /
///   [`StoreError::ChecksumMismatch`] when the header is present but damaged;
/// * [`StoreError::ChecksumMismatch`] when a fully-present record fails its
///   CRC;
/// * [`StoreError::Invariant`] when a record's length pair disagrees (a
///   corrupt length field) or sequence numbers are not dense and monotone;
/// * [`StoreError::Oversized`] when a declared record length exceeds
///   [`MAX_WAL_RECORD`].
pub fn replay_wal(bytes: &[u8]) -> Result<WalReplay> {
    if bytes.len() < WAL_HEADER_LEN {
        // A header cut short: truncation of a valid segment, or a crash
        // before the header ever hit the disk.  Either way no record was
        // acknowledged, so recovery is empty (and flagged torn so the
        // recovery path rewrites a fresh header).
        return Ok(WalReplay {
            dim: 0,
            start_seq: 0,
            records: Vec::new(),
            valid_len: 0,
            torn: true,
        });
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(StoreError::BadMagic {
            found: [bytes[0], bytes[1], bytes[2], bytes[3]],
        }
        .into());
    }
    let version = le_u32(bytes, 4);
    if version != WAL_VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            max_supported: WAL_VERSION,
        }
        .into());
    }
    let stored_crc = le_u32(bytes, 20);
    let computed = crc32c(&bytes[..20]);
    if stored_crc != computed {
        return Err(StoreError::ChecksumMismatch {
            section: HEADER_SECTION.to_string(),
            offset: 20,
            stored: stored_crc,
            computed,
        }
        .into());
    }
    let dim = le_u32(bytes, 8);
    let start_seq = le_u64(bytes, 12);

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = false;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // Not even a full length pair: the append died mid-header.
            torn = true;
            break;
        }
        let len = le_u32(bytes, pos);
        let len_check = le_u32(bytes, pos + 4);
        if len != !len_check {
            // Truncation removes bytes, never alters them — a broken
            // complement can only come from corruption.
            return Err(StoreError::Invariant {
                section: RECORD_SECTION.to_string(),
                detail: format!(
                    "length {len:#010x} at byte {pos} disagrees with its complement \
                     {len_check:#010x} (corrupt length field)"
                ),
            }
            .into());
        }
        if u64::from(len) > MAX_WAL_RECORD {
            return Err(StoreError::Oversized {
                section: RECORD_SECTION.to_string(),
                offset: pos as u64,
                declared: u64::from(len),
                limit: MAX_WAL_RECORD,
            }
            .into());
        }
        if len < 8 {
            return Err(StoreError::Invariant {
                section: RECORD_SECTION.to_string(),
                detail: format!(
                    "record at byte {pos} declares {len} payload bytes, too short for a \
                     sequence number"
                ),
            }
            .into());
        }
        let full = 8 + len as usize + 4;
        if remaining < full {
            // Trustworthy length (the pair agrees), but the record runs past
            // the end of the file: a torn append.  Nothing in it was acked.
            torn = true;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        let stored = le_u32(bytes, pos + 8 + len as usize);
        let computed = crc32c(payload);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch {
                section: RECORD_SECTION.to_string(),
                offset: (pos + 8 + len as usize) as u64,
                stored,
                computed,
            }
            .into());
        }
        let seq = le_u64(payload, 0);
        let expected = start_seq + records.len() as u64;
        if seq != expected {
            return Err(StoreError::Invariant {
                section: RECORD_SECTION.to_string(),
                detail: format!(
                    "record at byte {pos} carries sequence {seq}, expected {expected} \
                     (sequence numbers must be dense and monotone)"
                ),
            }
            .into());
        }
        records.push(WalRecord {
            seq,
            body: payload[8..].to_vec(),
        });
        pos += full;
    }
    Ok(WalReplay {
        dim,
        start_seq,
        records,
        valid_len: pos.min(bytes.len()) as u64,
        torn,
    })
}

/// An open, appendable GKSL segment.
///
/// Created fresh with [`WalWriter::create`], or positioned after the valid
/// prefix of an existing journal with [`WalWriter::recover`] (which truncates
/// a torn tail first, so appends never follow garbage).
pub struct WalWriter {
    writer: BufWriter<File>,
    path: PathBuf,
    dim: u32,
    next_seq: u64,
    /// Appends since the last sync — callers must not acknowledge them yet.
    unsynced: u64,
    /// Side-channel instruments (all-disabled unless [`WalWriter::set_obs`]).
    obs: WalObs,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("dim", &self.dim)
            .field("next_seq", &self.next_seq)
            .field("unsynced", &self.unsynced)
            .finish()
    }
}

fn open_append(path: &Path) -> Result<File> {
    Ok(OpenOptions::new().append(true).open(path)?)
}

/// Fsyncs the directory containing `path` so a fresh journal's directory
/// entry is durable (best-effort on platforms without directory fsync).
fn sync_parent_dir(path: &Path) {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl WalWriter {
    /// Creates a fresh (empty) journal at `path` whose first record will
    /// carry `start_seq`.  The header is written atomically and fsynced
    /// before this returns, so the journal either exists completely or not
    /// at all.
    pub fn create(path: impl AsRef<Path>, dim: u32, start_seq: u64) -> Result<WalWriter> {
        let path = path.as_ref().to_path_buf();
        let header = header_bytes(dim, start_seq);
        atomic_write(&path, |w| {
            w.write_all(&header)?;
            Ok(())
        })?;
        sync_parent_dir(&path);
        let file = open_append(&path)?;
        Ok(WalWriter {
            writer: BufWriter::new(file),
            path,
            dim,
            next_seq: start_seq,
            unsynced: 0,
            obs: WalObs::default(),
        })
    }

    /// Opens the journal at `path` for appending, replaying it first.
    ///
    /// * A missing or headerless (torn-before-first-ack) journal is replaced
    ///   by a fresh one starting at `fallback_start_seq`.
    /// * A torn tail is truncated away (and fsynced) before the writer is
    ///   positioned, so subsequent appends never land after garbage.
    /// * Interior corruption propagates as the typed error from
    ///   [`replay_wal`] — recovery must not guess at damaged acknowledged
    ///   data.
    ///
    /// Returns the replayed valid prefix together with the positioned writer.
    pub fn recover(
        path: impl AsRef<Path>,
        expected_dim: u32,
        fallback_start_seq: u64,
    ) -> Result<(WalReplay, WalWriter)> {
        let path = path.as_ref().to_path_buf();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let replay = replay_wal(&bytes)?;
        if replay.valid_len == 0 {
            // Missing file or torn header: nothing acknowledged, start over.
            let writer = WalWriter::create(&path, expected_dim, fallback_start_seq)?;
            let replay = WalReplay {
                dim: expected_dim,
                start_seq: fallback_start_seq,
                records: Vec::new(),
                valid_len: WAL_HEADER_LEN as u64,
                torn: replay.torn,
            };
            return Ok((replay, writer));
        }
        if replay.dim != expected_dim {
            return Err(StoreError::Invariant {
                section: HEADER_SECTION.to_string(),
                detail: format!(
                    "journal dimension {} does not match the checkpoint's {expected_dim}",
                    replay.dim
                ),
            }
            .into());
        }
        if replay.torn || replay.valid_len < bytes.len() as u64 {
            let file = OpenOptions::new().write(true).open(&path)?;
            file.set_len(replay.valid_len)?;
            file.sync_all()?;
        }
        let next_seq = replay.next_seq();
        let file = open_append(&path)?;
        let writer = WalWriter {
            writer: BufWriter::new(file),
            path,
            dim: replay.dim,
            next_seq,
            unsynced: 0,
            obs: WalObs::default(),
        };
        Ok((replay, writer))
    }

    /// Appends one record carrying `body` and returns its sequence number.
    ///
    /// The record is **not durable yet**: callers must [`WalWriter::sync`]
    /// before acknowledging it (many appends may share one sync — group
    /// commit).
    pub fn append(&mut self, body: &[u8]) -> Result<u64> {
        if 8 + body.len() as u64 > MAX_WAL_RECORD {
            return Err(Error::InvalidParameter(format!(
                "WAL record body of {} bytes exceeds the {MAX_WAL_RECORD}-byte record limit",
                body.len()
            )));
        }
        let seq = self.next_seq;
        let started = self
            .obs
            .append_nanos
            .is_enabled()
            .then(std::time::Instant::now);
        let record = encode_record(seq, body);
        self.writer.write_all(&record)?;
        if let Some(t) = started {
            self.obs.append_nanos.record_duration(t.elapsed());
        }
        self.next_seq += 1;
        self.unsynced += 1;
        self.obs.depth.set(self.unsynced as i64);
        Ok(seq)
    }

    /// Flushes buffered appends and fsyncs the journal.  After this returns,
    /// every appended record survives a crash and may be acknowledged.
    pub fn sync(&mut self) -> Result<()> {
        let started = self
            .obs
            .sync_nanos
            .is_enabled()
            .then(std::time::Instant::now);
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        if let Some(t) = started {
            self.obs.sync_nanos.record_duration(t.elapsed());
        }
        self.unsynced = 0;
        self.obs.depth.set(0);
        Ok(())
    }

    /// Checkpoint truncation: atomically replaces the journal with a fresh
    /// empty segment whose first record will carry `start_seq`.  Called
    /// after the checkpoint holding every journalled mutation up to
    /// `start_seq` has itself been atomically published — a crash between
    /// the two leaves an over-complete journal (replay skips already-applied
    /// records), never a gap.
    pub fn reset(&mut self, start_seq: u64) -> Result<()> {
        self.writer.flush()?;
        let header = header_bytes(self.dim, start_seq);
        atomic_write(&self.path, |w| {
            w.write_all(&header)?;
            Ok(())
        })?;
        sync_parent_dir(&self.path);
        let file = open_append(&self.path)?;
        self.writer = BufWriter::new(file);
        self.next_seq = start_seq;
        self.unsynced = 0;
        self.obs.depth.set(0);
        Ok(())
    }

    /// The sequence number the next [`WalWriter::append`] will assign.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends not yet covered by a [`WalWriter::sync`] (unacknowledgeable).
    pub fn unsynced(&self) -> u64 {
        self.unsynced
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Attaches observability instruments.  A metrics side channel only:
    /// the journal bytes and sync points are identical with or without it.
    pub fn set_obs(&mut self, obs: WalObs) {
        self.obs = obs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gksl-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn journal_image(bodies: &[&[u8]], start_seq: u64) -> Vec<u8> {
        let mut image = header_bytes(7, start_seq).to_vec();
        for (i, body) in bodies.iter().enumerate() {
            image.extend_from_slice(&encode_record(start_seq + i as u64, body));
        }
        image
    }

    #[test]
    fn round_trip_preserves_records_and_sequences() {
        let image = journal_image(&[b"alpha", b"", b"gamma-longer-body"], 40);
        let replay = replay_wal(&image).unwrap();
        assert_eq!(replay.dim, 7);
        assert_eq!(replay.start_seq, 40);
        assert!(!replay.torn);
        assert_eq!(replay.valid_len, image.len() as u64);
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[0].seq, 40);
        assert_eq!(replay.records[0].body, b"alpha");
        assert_eq!(replay.records[1].body, b"");
        assert_eq!(replay.records[2].seq, 42);
        assert_eq!(replay.next_seq(), 43);
    }

    #[test]
    fn every_truncation_point_recovers_a_clean_prefix() {
        let bodies: Vec<&[u8]> = vec![b"one", b"two-longer", b"three", b"4"];
        let image = journal_image(&bodies, 0);
        let mut record_ends = vec![WAL_HEADER_LEN];
        for body in &bodies {
            record_ends.push(record_ends.last().unwrap() + WAL_RECORD_OVERHEAD + 8 + body.len());
        }
        for cut in 0..=image.len() {
            let replay = replay_wal(&image[..cut]).unwrap_or_else(|e| {
                panic!("truncation to {cut} bytes must recover, got error: {e}")
            });
            // The recovered prefix is exactly the records whose bytes are
            // entirely within the cut.
            let expected = record_ends
                .iter()
                .filter(|&&e| e > WAL_HEADER_LEN && e <= cut)
                .count();
            assert_eq!(replay.records.len(), expected, "cut at {cut}");
            for (i, r) in replay.records.iter().enumerate() {
                assert_eq!(r.body, bodies[i], "cut at {cut}, record {i}");
            }
            // Torn iff the cut is not at a record boundary.
            let at_boundary = cut >= WAL_HEADER_LEN && record_ends.contains(&cut);
            assert_eq!(replay.torn, !at_boundary, "cut at {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_typed_corruption() {
        let image = journal_image(&[b"first", b"second", b"third"], 9);
        for byte in 0..image.len() {
            for bit in 0..8 {
                let mut evil = image.clone();
                evil[byte] ^= 1 << bit;
                let got = replay_wal(&evil);
                match got {
                    Err(e) => assert!(
                        e.is_corruption(),
                        "flip at byte {byte} bit {bit}: error is not corruption: {e}"
                    ),
                    Ok(r) => panic!(
                        "flip at byte {byte} bit {bit} went undetected ({} records)",
                        r.records.len()
                    ),
                }
            }
        }
    }

    #[test]
    fn header_damage_is_classified() {
        let image = journal_image(&[b"x"], 0);

        let mut bad_magic = image.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            replay_wal(&bad_magic).unwrap_err(),
            Error::Store(StoreError::BadMagic { .. })
        ));

        // Version and CRC must agree for UnsupportedVersion to be reported
        // (otherwise the CRC catches it first as generic corruption).
        let mut future = header_bytes(7, 0).to_vec();
        future[4..8].copy_from_slice(&9u32.to_le_bytes());
        let crc = crc32c(&future[..20]);
        future[20..24].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            replay_wal(&future).unwrap_err(),
            Error::Store(StoreError::UnsupportedVersion { found: 9, .. })
        ));
    }

    #[test]
    fn short_and_empty_images_recover_empty_and_torn() {
        for cut in 0..WAL_HEADER_LEN {
            let image = journal_image(&[b"x"], 0);
            let replay = replay_wal(&image[..cut]).unwrap();
            assert!(replay.records.is_empty());
            assert!(replay.torn);
            assert_eq!(replay.valid_len, 0);
        }
    }

    #[test]
    fn oversized_and_undersized_lengths_are_typed() {
        let mut image = header_bytes(0, 0).to_vec();
        let huge = (MAX_WAL_RECORD + 1) as u32;
        image.extend_from_slice(&huge.to_le_bytes());
        image.extend_from_slice(&(!huge).to_le_bytes());
        assert!(matches!(
            replay_wal(&image).unwrap_err(),
            Error::Store(StoreError::Oversized { .. })
        ));

        let mut image = header_bytes(0, 0).to_vec();
        let tiny = 4u32; // < 8: no room for a sequence number
        image.extend_from_slice(&tiny.to_le_bytes());
        image.extend_from_slice(&(!tiny).to_le_bytes());
        image.extend_from_slice(&[0u8; 8]); // payload + crc space
        assert!(matches!(
            replay_wal(&image).unwrap_err(),
            Error::Store(StoreError::Invariant { .. })
        ));
    }

    #[test]
    fn sequence_gaps_and_repeats_are_invariant_violations() {
        // Records 0, 2 (gap).
        let mut image = header_bytes(0, 0).to_vec();
        image.extend_from_slice(&encode_record(0, b"a"));
        image.extend_from_slice(&encode_record(2, b"b"));
        let err = replay_wal(&image).unwrap_err();
        assert!(
            matches!(err, Error::Store(StoreError::Invariant { .. })),
            "{err}"
        );

        // Start_seq mismatch: header says 5, first record says 0.
        let mut image = header_bytes(0, 5).to_vec();
        image.extend_from_slice(&encode_record(0, b"a"));
        assert!(replay_wal(&image).is_err());
    }

    #[test]
    fn writer_appends_are_replayable_and_resumable() {
        let dir = tempdir("writer");
        let path = dir.join("j.gksl");
        let mut w = WalWriter::create(&path, 3, 0).unwrap();
        assert_eq!(w.append(b"one").unwrap(), 0);
        assert_eq!(w.append(b"two").unwrap(), 1);
        assert_eq!(w.unsynced(), 2);
        w.sync().unwrap();
        assert_eq!(w.unsynced(), 0);
        drop(w);

        let (replay, mut w) = WalWriter::recover(&path, 3, 0).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.torn);
        assert_eq!(w.next_seq(), 2);
        assert_eq!(w.append(b"three").unwrap(), 2);
        w.sync().unwrap();
        drop(w);

        let (replay, _w) = WalWriter::recover(&path, 3, 0).unwrap();
        assert_eq!(replay.records.len(), 3);
        assert_eq!(replay.records[2].body, b"three");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_truncates_a_torn_tail_before_appending() {
        let dir = tempdir("torn");
        let path = dir.join("j.gksl");
        let mut w = WalWriter::create(&path, 1, 0).unwrap();
        w.append(b"kept").unwrap();
        w.append(b"torn-away").unwrap();
        w.sync().unwrap();
        drop(w);
        // Tear the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let (replay, mut w) = WalWriter::recover(&path, 1, 0).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(w.next_seq(), 1);
        // Appending after recovery lands right after the valid prefix.
        w.append(b"fresh").unwrap();
        w.sync().unwrap();
        drop(w);
        let (replay, _w) = WalWriter::recover(&path, 1, 0).unwrap();
        assert!(!replay.torn);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].body, b"fresh");
        assert_eq!(replay.records[1].seq, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_handles_missing_and_headerless_files() {
        let dir = tempdir("missing");
        let path = dir.join("absent.gksl");
        let (replay, w) = WalWriter::recover(&path, 2, 17).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(w.next_seq(), 17);
        drop(w);
        // The fresh header is durable and carries the fallback start_seq.
        let (replay, _w) = WalWriter::recover(&path, 2, 99).unwrap();
        assert_eq!(replay.start_seq, 17);

        // A zero-length file (created, never written) also recovers fresh.
        let empty = dir.join("empty.gksl");
        std::fs::write(&empty, b"").unwrap();
        let (replay, _w) = WalWriter::recover(&empty, 2, 5).unwrap();
        assert!(replay.records.is_empty());
        assert_eq!(replay.start_seq, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recover_rejects_dimension_mismatch() {
        let dir = tempdir("dim");
        let path = dir.join("j.gksl");
        drop(WalWriter::create(&path, 4, 0).unwrap());
        let err = WalWriter::recover(&path, 5, 0).unwrap_err();
        assert!(
            matches!(err, Error::Store(StoreError::Invariant { .. })),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reset_truncates_and_restarts_the_sequence() {
        let dir = tempdir("reset");
        let path = dir.join("j.gksl");
        let mut w = WalWriter::create(&path, 2, 0).unwrap();
        for i in 0..5u64 {
            w.append(format!("r{i}").as_bytes()).unwrap();
        }
        w.sync().unwrap();
        w.reset(5).unwrap();
        assert_eq!(w.next_seq(), 5);
        w.append(b"after-checkpoint").unwrap();
        w.sync().unwrap();
        drop(w);
        let (replay, _w) = WalWriter::recover(&path, 2, 0).unwrap();
        assert_eq!(replay.start_seq, 5);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].seq, 5);
        assert_eq!(replay.records[0].body, b"after-checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn instruments_record_appends_syncs_and_depth() {
        let dir = tempdir("obs");
        let plain_path = dir.join("plain.gksl");
        let obs_path = dir.join("observed.gksl");
        let handle = obs::ObsHandle::enabled();

        let mut plain = WalWriter::create(&plain_path, 1, 0).unwrap();
        let mut observed = WalWriter::create(&obs_path, 1, 0).unwrap();
        observed.set_obs(WalObs::register(&handle));
        for w in [&mut plain, &mut observed] {
            w.append(b"a").unwrap();
            w.append(b"bb").unwrap();
        }

        let gauge = |snap: &obs::RegistrySnapshot| match snap.get("wal_unsynced_records") {
            Some(e) => match e.value {
                obs::MetricValue::Gauge(v) => v,
                _ => panic!("wrong kind"),
            },
            None => panic!("gauge not registered"),
        };
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.histogram("wal_append_nanos").unwrap().count(), 2);
        assert_eq!(snap.histogram("wal_fsync_nanos").unwrap().count(), 0);
        assert_eq!(gauge(&snap), 2, "two appends pending a sync");

        plain.sync().unwrap();
        observed.sync().unwrap();
        let snap = handle.snapshot().unwrap();
        assert_eq!(snap.histogram("wal_fsync_nanos").unwrap().count(), 1);
        assert_eq!(gauge(&snap), 0, "sync drains the journal depth");

        // Side channel only: the journal bytes are identical either way.
        assert_eq!(
            std::fs::read(&plain_path).unwrap(),
            std::fs::read(&obs_path).unwrap(),
            "instrumentation must not alter what is written"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_body_is_rejected_at_append() {
        let dir = tempdir("bigbody");
        let path = dir.join("j.gksl");
        let mut w = WalWriter::create(&path, 0, 0).unwrap();
        // Don't allocate 256 MiB in a unit test; the check is arithmetic.
        // MAX_WAL_RECORD bounds 8 + body.len(), so a body of exactly
        // MAX_WAL_RECORD - 7 bytes is the smallest rejected size.
        let result = w.append(&vec![0u8; (MAX_WAL_RECORD - 7) as usize]);
        assert!(matches!(result.unwrap_err(), Error::InvalidParameter(_)));
        std::fs::remove_dir_all(&dir).ok();
    }
}
