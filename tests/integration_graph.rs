//! Integration tests of the KNN-graph machinery across crates: Alg. 3
//! construction, NN-Descent, exact ground truth and the recall/co-occurrence
//! metrics, all on the synthetic paper workloads.

use gkm::prelude::*;

#[test]
fn alg3_graph_recall_improves_monotonically_enough_over_rounds() {
    // Fig. 2: recall climbs (and distortion falls) as τ grows.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 2_000, 3);
    let exact = exact_graph(&w.data, 5);

    let mut distortions = Vec::new();
    let params = GkParams::default()
        .kappa(5)
        .xi(25)
        .tau(6)
        .seed(7)
        .record_trace(false);
    let (graph, stats) = KnnGraphBuilder::new(params)
        .graph_k(5)
        .build_with_observer(&w.data, |info| distortions.push(info.distortion));

    assert_eq!(stats.rounds, 6);
    assert_eq!(distortions.len(), 6);
    // distortion at the last round must be below the first round (Fig. 2 trend)
    assert!(distortions[5] < distortions[0]);

    let recall = graph_recall_at_1(&graph, &exact);
    assert!(recall > 0.5, "final recall {recall}");
}

#[test]
fn alg3_and_nn_descent_graphs_are_both_usable_and_costs_are_comparable() {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 2_500, 5);
    let exact = exact_graph(&w.data, 10);

    let (gk_graph, _) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(10)
            .xi(25)
            .tau(6)
            .seed(9)
            .record_trace(false),
    )
    .graph_k(10)
    .build(&w.data);
    let nnd_graph = nn_descent(
        &w.data,
        &NnDescentParams {
            k: 10,
            seed: 9,
            ..Default::default()
        },
    );

    let gk_recall = graph_recall_at_1(&gk_graph, &exact);
    let nnd_recall = graph_recall_at_1(&nnd_graph, &exact);
    // Both must be far better than random; NN-Descent typically reaches higher
    // recall (the paper acknowledges this: Tab. 2 reports 0.40 vs 0.08) while
    // Alg. 3 is cheaper and still sufficient to drive clustering.
    assert!(gk_recall > 0.4, "Alg.3 recall {gk_recall}");
    assert!(nnd_recall > 0.6, "NN-Descent recall {nnd_recall}");
}

#[test]
fn cooccurrence_statistic_reproduces_figure1_shape() {
    // Fig. 1: the probability that a sample's rank-r neighbour shares its
    // cluster is far above the random-collision probability and decays with r.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 2_000, 11);
    let k = w.data.len() / 50; // cluster size ≈ 50, as in Fig. 1
    let clustering = LloydKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(10)
            .seed(13)
            .record_trace(false),
    )
    .fit(&w.data);

    let exact = exact_graph(&w.data, 20);
    let probs = cooccurrence_by_rank(&exact, &clustering.labels, 20);
    assert_eq!(probs.len(), 20);

    let random = eval::cooccurrence::random_collision_probability(&clustering.labels, k);
    assert!(
        probs[0] > 10.0 * random,
        "rank-1 co-occurrence {} should dwarf the random collision rate {random}",
        probs[0]
    );
    // decaying trend: the first ranks co-occur more often than the last ranks
    let head: f64 = probs[..5].iter().sum::<f64>() / 5.0;
    let tail: f64 = probs[15..].iter().sum::<f64>() / 5.0;
    assert!(head >= tail, "head {head} vs tail {tail}");
}

#[test]
fn two_means_tree_partition_is_balanced_on_paper_workloads() {
    let w = Workload::generate_with_n(PaperDataset::Glove1M, 2_048, 17);
    let labels = gkmeans::two_means::TwoMeansTree::new(19).partition(&w.data, 64);
    let mut sizes = vec![0usize; 64];
    for &l in &labels {
        sizes[l] += 1;
    }
    let min = *sizes.iter().min().unwrap();
    let max = *sizes.iter().max().unwrap();
    assert!(min >= 1);
    // equal-size adjustment keeps the partition within a small factor
    assert!(max <= min * 4, "unbalanced partition: min {min}, max {max}");
}

#[test]
fn graph_io_round_trips_through_fvecs_for_external_tools() {
    // The harness can export synthetic workloads in the TexMex format so the
    // original C++ implementations can be run on identical data.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 500, 23);
    let mut buf = Vec::new();
    vecstore::io::write_fvecs_to(&mut buf, &w.data).unwrap();
    let back = vecstore::io::read_fvecs_from(std::io::Cursor::new(buf)).unwrap();
    assert_eq!(back, w.data);
}
