//! End-to-end integration tests of the GK-means pipeline across crates:
//! datagen → gkmeans (graph construction + clustering) → eval.

use gkm::prelude::*;

fn workload(n: usize, dataset: PaperDataset, seed: u64) -> Workload {
    Workload::generate_with_n(dataset, n, seed)
}

#[test]
fn full_pipeline_on_sift_like_data_beats_random_partition() {
    let w = workload(3_000, PaperDataset::Sift100K, 1);
    let k = 30;
    let params = GkParams::default()
        .kappa(10)
        .xi(30)
        .tau(4)
        .iterations(10)
        .seed(2);
    let outcome = GkMeansPipeline::new(params).cluster(&w.data, k);

    assert_eq!(outcome.clustering.labels.len(), w.data.len());
    assert_eq!(outcome.clustering.k(), k);
    assert!(outcome.clustering.labels.iter().all(|&l| l < k));

    // Compare against a fixed random partition of the same data.
    let random_labels: Vec<usize> = (0..w.data.len()).map(|i| i % k).collect();
    let mut random_centroids = VectorSet::zeros(k, w.data.dim()).unwrap();
    baselines::common::recompute_centroids(&w.data, &random_labels, &mut random_centroids);
    let random_e = average_distortion(&w.data, &random_labels, &random_centroids);
    let gk_e = average_distortion(
        &w.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    assert!(
        gk_e < random_e * 0.7,
        "GK-means ({gk_e}) should clearly beat a random partition ({random_e})"
    );
}

#[test]
fn pipeline_quality_tracks_boost_kmeans_and_beats_minibatch() {
    // The paper's central quality claim (Fig. 5): GK-means is close to BKM and
    // clearly better than Mini-Batch at the same iteration budget.
    let w = workload(2_500, PaperDataset::Glove1M, 3);
    let k = 25;
    let iterations = 12;

    // Seed chosen for the workspace RNG (offline xoshiro-based StdRng): the
    // GK-means-vs-BKM gap fluctuates a few percent across seeds.
    // κ and τ stay in the same proportion to k as the paper's setup (κ = 50 at
    // k = 10 000 with a τ = 10 graph); at this reduced scale a too-small κ
    // starves the candidate sets and the comparison stops being meaningful.
    let gk = GkMeansPipeline::new(
        GkParams::default()
            .kappa(25)
            .xi(40)
            .tau(8)
            .iterations(iterations)
            .seed(7)
            .record_trace(false),
    )
    .cluster(&w.data, k);
    let gk_e = average_distortion(&w.data, &gk.clustering.labels, &gk.clustering.centroids);

    let bkm = BoostKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(7)
            .record_trace(false),
    )
    .fit(&w.data);
    let bkm_e = average_distortion(&w.data, &bkm.labels, &bkm.centroids);

    let mb = MiniBatchKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(7)
            .record_trace(false),
    )
    .batch_size(256)
    .fit(&w.data);
    let mb_e = average_distortion(&w.data, &mb.labels, &mb.centroids);

    assert!(
        gk_e <= bkm_e * 1.20 + 1e-9,
        "GK-means ({gk_e}) should stay within ~20% of BKM ({bkm_e})"
    );
    assert!(
        gk_e < mb_e,
        "GK-means ({gk_e}) should beat Mini-Batch ({mb_e})"
    );
}

#[test]
fn pipeline_candidate_checks_are_independent_of_k() {
    // Fig. 6(b): the per-iteration cost of GK-means is bounded by n·κ whatever
    // the cluster count, unlike Lloyd / BKM whose cost is n·k.
    let w = workload(2_000, PaperDataset::Vlad10M, 7);
    let kappa = 10usize;
    let params = GkParams::default()
        .kappa(kappa)
        .xi(30)
        .tau(3)
        .iterations(5)
        .seed(9)
        .record_trace(false);

    let small = GkMeansPipeline::new(params).cluster(&w.data, 16);
    let large = GkMeansPipeline::new(params).cluster(&w.data, 256);

    let per_iter_small =
        small.clustering.distance_evals as f64 / small.clustering.iterations.max(1) as f64;
    let per_iter_large =
        large.clustering.distance_evals as f64 / large.clustering.iterations.max(1) as f64;
    let kappa_bound = (w.data.len() * kappa) as f64;
    assert!(
        per_iter_small <= kappa_bound,
        "small-k run exceeded n·kappa: {per_iter_small}"
    );
    assert!(
        per_iter_large <= kappa_bound,
        "large-k run exceeded n·kappa: {per_iter_large}"
    );
    // and the large-k run is far below Lloyd's n·k cost per iteration
    assert!(
        per_iter_large < (w.data.len() * 256) as f64 / 4.0,
        "per-iteration checks too close to exhaustive: {per_iter_large}"
    );
}

#[test]
fn kgraph_plus_gkmeans_configuration_works() {
    // Fig. 4's "KGraph+GK-means" run: the graph is supplied by NN-Descent.
    let w = workload(2_000, PaperDataset::Sift100K, 11);
    let k = 20;
    let graph = nn_descent(
        &w.data,
        &NnDescentParams {
            k: 10,
            seed: 3,
            ..Default::default()
        },
    );
    let outcome = GkMeansPipeline::new(
        GkParams::default()
            .kappa(10)
            .iterations(10)
            .seed(3)
            .record_trace(false),
    )
    .cluster_with_graph(&w.data, k, graph, std::time::Duration::from_secs(0));
    assert_eq!(outcome.clustering.k(), k);
    let e = average_distortion(
        &w.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    assert!(e.is_finite() && e > 0.0);
}

#[test]
fn graph_built_by_pipeline_supports_ann_search() {
    // Sec. 4.3: the same graph doubles as an ANN index.
    let w = workload(2_500, PaperDataset::Sift100K, 13);
    let (base, queries) = w.data.split_at(2_400).unwrap();
    let (graph, _) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(10)
            .xi(25)
            .tau(5)
            .seed(17)
            .record_trace(false),
    )
    .graph_k(10)
    .build(&base);
    let gt = exact_ground_truth(&base, &queries, 5);
    let report = evaluate_anns(
        &base,
        &graph,
        &queries,
        &gt,
        5,
        SearchParams::default().ef(64).entry_points(16).seed(19),
    );
    assert!(
        report.stats.recall > 0.5,
        "ANN recall through the Alg.3 graph too low: {}",
        report.stats.recall
    );
    assert!(report.stats.avg_distance_evals < base.len() as f64 * 0.5);
}

#[test]
fn trace_supports_distortion_vs_iteration_and_vs_time_plots() {
    // Fig. 5 plots need both axes from the same run.
    let w = workload(2_000, PaperDataset::Gist1M, 21);
    let outcome = GkMeansPipeline::new(
        GkParams::default()
            .kappa(10)
            .xi(25)
            .tau(3)
            .iterations(8)
            .seed(23),
    )
    .cluster(&w.data, 20);
    let trace = &outcome.clustering.trace;
    assert!(!trace.is_empty());
    for w2 in trace.windows(2) {
        assert!(w2[1].iteration > w2[0].iteration);
        assert!(w2[1].elapsed_secs >= w2[0].elapsed_secs);
        assert!(w2[1].distortion <= w2[0].distortion + 1e-6);
    }
}
