//! Failure-injection tests: corrupted files, mismatched shapes and degenerate
//! inputs must surface as errors (or documented panics), never as silent
//! wrong answers or memory blow-ups.

use std::io::Cursor;

use gkm::prelude::*;
use knn_graph::io::{read_graph_from, write_graph_to};
use vecstore::io::{read_fvecs_from, read_ivecs_from, write_fvecs_to};

// ---------------------------------------------------------------- file I/O

#[test]
fn truncated_fvecs_payload_is_an_error() {
    let data = VectorSet::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
    let mut buf = Vec::new();
    write_fvecs_to(&mut buf, &data).unwrap();
    for cut in [1, 5, buf.len() - 3] {
        let err = read_fvecs_from(Cursor::new(&buf[..cut]));
        assert!(err.is_err(), "truncation at {cut} bytes must fail");
    }
}

#[test]
fn absurd_fvecs_dimension_header_is_rejected_without_allocation() {
    // dimension header claims ~1 billion floats per row
    let mut buf = Vec::new();
    buf.extend_from_slice(&(1_000_000_000i32).to_le_bytes());
    buf.extend_from_slice(&[0u8; 64]);
    assert!(read_fvecs_from(Cursor::new(buf)).is_err());
}

#[test]
fn negative_or_zero_dimension_headers_are_rejected() {
    for dim in [-1i32, 0i32] {
        let mut buf = Vec::new();
        buf.extend_from_slice(&dim.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(
            read_fvecs_from(Cursor::new(buf.clone())).is_err(),
            "dim {dim} accepted"
        );
        assert!(
            read_ivecs_from(Cursor::new(buf)).is_err(),
            "ivecs dim {dim} accepted"
        );
    }
}

#[test]
fn corrupted_graph_file_is_an_error() {
    let data = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
    let graph = exact_graph(&data, 2);
    let mut buf = Vec::new();
    write_graph_to(&mut buf, &graph).unwrap();
    // a valid round trip first, so the corruption below is the only variable
    let back = read_graph_from(Cursor::new(buf.clone())).unwrap();
    assert_eq!(back.len(), 3);
    // truncated payload
    assert!(read_graph_from(Cursor::new(&buf[..buf.len() / 2])).is_err());
    // garbage header
    assert!(read_graph_from(Cursor::new(vec![0xFFu8; 16])).is_err());
}

// ------------------------------------------------------- shape mismatches

#[test]
#[should_panic(expected = "KNN graph covers")]
fn clustering_with_a_graph_of_the_wrong_size_panics() {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_200, 1);
    let (small, _) = w.data.split_at(600).unwrap();
    let graph = exact_graph(&small, 5);
    let _ = GkMeans::new(GkParams::default().kappa(5).iterations(2)).fit(&w.data, 10, &graph);
}

#[test]
fn mismatched_query_dimensionality_is_rejected_by_ground_truth() {
    let base = VectorSet::from_rows(vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
    let queries = VectorSet::from_rows(vec![vec![0.0, 0.0, 0.0]]).unwrap();
    let result = std::panic::catch_unwind(|| exact_ground_truth(&base, &queries, 1));
    assert!(
        result.is_err(),
        "dimensionality mismatch must not pass silently"
    );
}

// --------------------------------------------------------- degenerate data

#[test]
fn all_identical_points_cluster_without_crashing() {
    let data = VectorSet::from_rows(vec![vec![3.0, 3.0, 3.0]; 200]).unwrap();
    let params = GkParams::default()
        .kappa(5)
        .xi(20)
        .tau(2)
        .iterations(3)
        .seed(3)
        .record_trace(false);
    let outcome = GkMeansPipeline::new(params).cluster(&data, 4);
    assert_eq!(outcome.clustering.labels.len(), 200);
    let e = average_distortion(
        &data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    assert!(
        e.abs() < 1e-6,
        "identical points must have zero distortion, got {e}"
    );

    for result in [
        LloydKMeans::new(KMeansConfig::with_k(4).max_iters(3).seed(1)).fit(&data),
        BoostKMeans::new(KMeansConfig::with_k(4).max_iters(3).seed(1)).fit(&data),
        HierarchicalKMeans::new(KMeansConfig::with_k(4).seed(1)).fit(&data),
        ApproximateKMeans::new(KMeansConfig::with_k(4).max_iters(3).seed(1)).fit(&data),
    ] {
        assert_eq!(result.labels.len(), 200);
        assert!(result.labels.iter().all(|&l| l < result.k()));
    }
}

#[test]
fn k_equal_to_n_gives_singleton_clusters_with_zero_distortion() {
    let w = Workload::generate_with_n(PaperDataset::Glove1M, 1_000, 9);
    let (data, _) = w.data.split_at(64).unwrap();
    let result = BoostKMeans::new(KMeansConfig::with_k(64).max_iters(5).seed(2)).fit(&data);
    assert_eq!(result.non_empty_clusters(), 64);
    assert!(result.distortion(&data) < 1e-6);
}

#[test]
fn graph_construction_on_fewer_samples_than_xi_still_works() {
    // n < ξ means a single construction cluster: Alg. 3 degrades to brute
    // force over the whole (tiny) set, which must still produce a full graph.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_000, 11);
    let (tiny, _) = w.data.split_at(30).unwrap();
    let (graph, stats) = KnnGraphBuilder::new(
        GkParams::default()
            .xi(50)
            .tau(2)
            .kappa(5)
            .seed(4)
            .record_trace(false),
    )
    .graph_k(5)
    .build(&tiny);
    assert_eq!(graph.len(), 30);
    assert!(stats.refine_distance_evals > 0);
    let exact = exact_graph(&tiny, 5);
    let recall = graph_recall_at_1(&graph, &exact);
    assert!(
        recall > 0.95,
        "single-cluster construction must be near exact, got {recall}"
    );
}

#[test]
fn zero_queries_and_zero_k_are_handled_by_the_searcher() {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_000, 13);
    let (base, _) = w.data.split_at(300).unwrap();
    let graph = exact_graph(&base, 5);
    let searcher = GraphSearcher::new(&base, &graph, SearchParams::default());
    assert!(searcher.search(base.row(0), 0).is_empty());
    let no_queries = VectorSet::zeros(0, base.dim()).unwrap();
    let truth = exact_ground_truth(&base, &no_queries, 1);
    assert!(truth.is_empty());
}

#[test]
fn invalid_parameters_are_rejected_before_any_work() {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_000, 17);
    assert!(GkParams::default()
        .kappa(0)
        .validate(w.data.len(), 10)
        .is_err());
    assert!(GkParams::default()
        .xi(1)
        .validate(w.data.len(), 10)
        .is_err());
    assert!(GkParams::default()
        .tau(0)
        .validate(w.data.len(), 10)
        .is_err());
    assert!(GkParams::default().validate(0, 10).is_err());
    assert!(GkParams::default().validate(100, 0).is_err());
    assert!(GkParams::default().validate(100, 101).is_err());
    assert!(KMeansConfig::with_k(5).tol(f64::NAN).validate(100).is_err());
}
