//! Integration tests of the ANN-search path and the evaluation/reporting
//! utilities on paper-style workloads.

use gkm::prelude::*;

#[test]
fn ann_search_recall_improves_with_ef_on_gk_graph() {
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 3_000, 31);
    let (base, queries) = w.data.split_at(2_900).unwrap();
    let (graph, _) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(10)
            .xi(25)
            .tau(5)
            .seed(3)
            .record_trace(false),
    )
    .graph_k(10)
    .build(&base);
    let gt = exact_ground_truth(&base, &queries, 10);

    let low = evaluate_anns(
        &base,
        &graph,
        &queries,
        &gt,
        10,
        SearchParams::default().ef(8).entry_points(16).seed(1),
    );
    let high = evaluate_anns(
        &base,
        &graph,
        &queries,
        &gt,
        10,
        SearchParams::default().ef(128).entry_points(16).seed(1),
    );
    assert!(
        high.stats.recall >= low.stats.recall - 0.02,
        "ef=128 {} vs ef=8 {}",
        high.stats.recall,
        low.stats.recall
    );
    assert!(high.stats.avg_distance_evals > low.stats.avg_distance_evals);
    assert!(
        high.stats.recall > 0.45,
        "recall at ef=128: {}",
        high.stats.recall
    );
}

#[test]
fn exact_graph_search_is_an_upper_bound_for_approximate_graph_search() {
    let w = Workload::generate_with_n(PaperDataset::Glove1M, 2_000, 37);
    let (base, queries) = w.data.split_at(1_950).unwrap();
    let gt = exact_ground_truth(&base, &queries, 5);

    let exact = exact_graph(&base, 10);
    let (approx, _) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(10)
            .xi(25)
            .tau(3)
            .seed(41)
            .record_trace(false),
    )
    .graph_k(10)
    .build(&base);

    let params = SearchParams::default().ef(64).entry_points(16).seed(43);
    let on_exact = evaluate_anns(&base, &exact, &queries, &gt, 5, params);
    let on_approx = evaluate_anns(&base, &approx, &queries, &gt, 5, params);
    assert!(
        on_exact.stats.recall >= on_approx.stats.recall - 0.05,
        "exact-graph search ({}) should not trail approximate-graph search ({})",
        on_exact.stats.recall,
        on_approx.stats.recall
    );
}

#[test]
fn graph_and_ivf_reports_are_comparable_on_the_same_ground_truth() {
    // One GK-means pipeline run feeds *both* serving paths: its graph drives
    // the greedy graph searcher, its clustering becomes the IVF index.  Both
    // evaluations consume the identical exact ground truth and produce the
    // shared `SearchReport`, so the numbers are directly comparable.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 2_200, 61);
    let (base, queries) = w.data.split_at(2_150).unwrap();
    let gt = exact_ground_truth(&base, &queries, 10);

    let params = GkParams::default()
        .kappa(10)
        .xi(25)
        .tau(4)
        .iterations(8)
        .seed(11)
        .record_trace(false);
    let outcome = GkMeansPipeline::new(params).cluster(&base, 24);
    let graph = outcome.graph;
    let clustering = &outcome.clustering;

    let graph_report = evaluate_anns(
        &base,
        &graph,
        &queries,
        &gt,
        10,
        SearchParams::default().ef(64).entry_points(16).seed(5),
    );

    let index = IvfIndex::build(&base, &clustering.centroids, &clustering.labels).unwrap();
    let ivf_report = evaluate_ivf(
        &index,
        &queries,
        &gt,
        10,
        IvfSearchParams::default().nprobe(6).threads(1),
    );

    // Both paths must be genuinely serving: sub-brute-force cost, usable
    // recall, and a full-probe IVF run is exact by construction.
    assert!(
        graph_report.stats.recall > 0.4,
        "{}",
        graph_report.stats.recall
    );
    assert!(ivf_report.stats.recall > 0.4, "{}", ivf_report.stats.recall);
    assert!(ivf_report.stats.avg_distance_evals < base.len() as f64 * 0.9);
    let exact = evaluate_ivf(
        &index,
        &queries,
        &gt,
        10,
        IvfSearchParams::default().nprobe(index.nlist()).threads(1),
    );
    assert_eq!(exact.stats.recall, 1.0);
}

#[test]
fn report_tables_and_series_render_for_harness_output() {
    let mut table = Table::new(
        "Tab. 2 (miniature)",
        &["method", "init", "iter", "total", "E"],
    );
    table.row(&[
        "GK-means".into(),
        "2.7".into(),
        "2.5".into(),
        "5.2".into(),
        "0.619".into(),
    ]);
    table.row(&[
        "closure".into(),
        "0.9".into(),
        "9.6".into(),
        "10.5".into(),
        "0.700".into(),
    ]);
    let rendered = table.render();
    assert!(rendered.contains("GK-means"));
    assert!(rendered.contains("0.619"));

    let mut series = Series::new("GK-means", "tau", "recall");
    for (i, r) in [0.1, 0.4, 0.62, 0.71].iter().enumerate() {
        series.push((i + 1) as f64, *r);
    }
    let csv = series.to_csv();
    assert!(csv.contains("tau,recall"));
    assert_eq!(csv.lines().count(), 2 + 4);
}

#[test]
fn phase_timer_supports_table2_style_accounting() {
    let mut timer = PhaseTimer::new();
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 1_000, 47);
    let graph = timer.phase("graph", || {
        KnnGraphBuilder::new(
            GkParams::default()
                .kappa(8)
                .xi(20)
                .tau(2)
                .seed(5)
                .record_trace(false),
        )
        .graph_k(8)
        .build(&w.data)
        .0
    });
    let clustering = timer.phase("cluster", || {
        GkMeans::new(
            GkParams::default()
                .kappa(8)
                .iterations(5)
                .seed(5)
                .record_trace(false),
        )
        .fit(&w.data, 10, &graph)
    });
    assert_eq!(clustering.k(), 10);
    assert!(timer.get("graph").is_some());
    assert!(timer.get("cluster").is_some());
    assert!(timer.total() >= timer.get("graph").unwrap());
}

#[test]
fn distortion_helpers_agree_between_eval_and_baselines() {
    let w = Workload::generate_with_n(PaperDataset::Gist1M, 800, 53);
    let clustering = LloydKMeans::new(
        KMeansConfig::with_k(8)
            .max_iters(5)
            .seed(3)
            .record_trace(false),
    )
    .fit(&w.data);
    let via_eval = average_distortion(&w.data, &clustering.labels, &clustering.centroids);
    let via_baselines = clustering.distortion(&w.data);
    assert!((via_eval - via_baselines).abs() < 1e-9);
}
