//! Property-based tests for the extension modules: NSW construction, the
//! KD-tree forest, AKM, HKM and the parallel graph builder.
//!
//! These complement `property_invariants.rs` (which covers the core data
//! structures of the paper's own pipeline) with invariants of the comparator
//! implementations added on top.

use proptest::prelude::*;

use gkm::prelude::*;
use gkmeans::ParallelKnnGraphBuilder;
use knn_graph::nsw::truncate_to_k;
use vecstore::distance::l2_sq;

/// Strategy: a clustered dataset of `groups` latent blobs in `dim` dimensions.
fn clustered_rows() -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2usize..6, 2usize..5, 30usize..90).prop_flat_map(|(groups, dim, n)| {
        proptest::collection::vec(
            (
                0..groups,
                proptest::collection::vec(-1.0f32..1.0, dim..=dim),
            ),
            n..=n,
        )
        .prop_map(move |samples| {
            samples
                .into_iter()
                .map(|(g, noise)| {
                    noise
                        .into_iter()
                        .enumerate()
                        .map(|(d, x)| (g * 7 + d) as f32 * 8.0 + x)
                        .collect()
                })
                .collect()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // ------------------------------------------------------------------- NSW
    #[test]
    fn nsw_graph_edges_store_true_distances_and_respect_degree(rows in clustered_rows(), seed in 0u64..1000) {
        let data = VectorSet::from_rows(rows).unwrap();
        let graph = nsw_build(&data, &NswParams::with_m(4).seed(seed));
        prop_assert_eq!(graph.len(), data.len());
        for (i, list) in graph.iter() {
            prop_assert!(list.len() <= 8, "degree bound violated");
            let mut prev = 0.0f32;
            for nb in list.as_slice() {
                prop_assert!(nb.id as usize != i, "self loop");
                let expect = l2_sq(data.row(i), data.row(nb.id as usize));
                prop_assert!((nb.dist - expect).abs() <= 1e-4 * expect.max(1.0));
                prop_assert!(nb.dist >= prev, "list not sorted");
                prev = nb.dist;
            }
        }
        // truncation keeps prefixes
        let truncated = truncate_to_k(&graph, 2);
        for (i, list) in truncated.iter() {
            let full: Vec<u32> = graph.neighbors(i).ids().collect();
            let cut: Vec<u32> = list.ids().collect();
            prop_assert!(cut.len() <= 2);
            prop_assert_eq!(&full[..cut.len()], &cut[..]);
        }
    }

    // ------------------------------------------------------------- KD forest
    #[test]
    fn kd_forest_with_full_budget_finds_the_exact_nearest(rows in clustered_rows(), seed in 0u64..1000) {
        let data = VectorSet::from_rows(rows).unwrap();
        let forest = KdTreeForest::build(&data, &KdForestParams::with_trees(3).seed(seed));
        // query a handful of the base points: the top hit must be the point itself
        for i in (0..data.len()).step_by(data.len() / 5 + 1) {
            let hit = forest.nearest(&data, data.row(i), data.len());
            prop_assert_eq!(hit.dist, 0.0);
        }
        // and an off-base query must return the true nearest neighbour
        let mut q = data.row(0).to_vec();
        q[0] += 0.25;
        let hit = forest.nearest(&data, &q, data.len());
        let exact = (0..data.len())
            .min_by(|&a, &b| l2_sq(&q, data.row(a)).partial_cmp(&l2_sq(&q, data.row(b))).unwrap())
            .unwrap();
        prop_assert!((hit.dist - l2_sq(&q, data.row(exact))).abs() <= 1e-5);
    }

    #[test]
    fn kd_forest_results_are_sorted_and_within_budget(rows in clustered_rows(), checks in 4usize..40) {
        let data = VectorSet::from_rows(rows).unwrap();
        let forest = KdTreeForest::build(&data, &KdForestParams::default().seed(7));
        let (hits, stats) = forest.knn(&data, data.row(1), 3, checks);
        prop_assert!(!hits.is_empty());
        for w in hits.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        // the distance-eval budget is an upper bound (±1 for the fallback path)
        prop_assert!(stats.distance_evals <= checks as u64 + 1);
    }

    // ------------------------------------------------------------------- HKM
    #[test]
    fn hkm_produces_a_valid_partition_of_exactly_k(rows in clustered_rows(), k in 2usize..10, seed in 0u64..1000) {
        let data = VectorSet::from_rows(rows).unwrap();
        let k = k.min(data.len());
        let result = HierarchicalKMeans::new(KMeansConfig::with_k(k).seed(seed)).branching(3).fit(&data);
        prop_assert_eq!(result.labels.len(), data.len());
        prop_assert!(result.k() <= k);
        prop_assert!(result.labels.iter().all(|&l| l < result.k()));
        prop_assert_eq!(result.cluster_sizes().iter().sum::<usize>(), data.len());
        // on non-degenerate data the requested k is reached exactly
        prop_assert_eq!(result.k(), k);
    }

    // ------------------------------------------------------------------- AKM
    #[test]
    fn akm_labels_are_valid_and_distortion_finite(rows in clustered_rows(), seed in 0u64..1000) {
        let data = VectorSet::from_rows(rows).unwrap();
        let k = 4usize.min(data.len());
        let result = ApproximateKMeans::new(
            KMeansConfig::with_k(k).max_iters(6).seed(seed).record_trace(false),
        )
        .max_checks(8)
        .fit(&data);
        prop_assert!(result.labels.iter().all(|&l| l < k));
        let e = result.distortion(&data);
        prop_assert!(e.is_finite() && e >= 0.0);
    }

    // ------------------------------------------------------- parallel builder
    #[test]
    fn parallel_and_sequential_builders_agree(rows in clustered_rows(), seed in 0u64..1000) {
        let data = VectorSet::from_rows(rows).unwrap();
        let params = GkParams::default().xi(10).tau(2).kappa(4).seed(seed).record_trace(false);
        let (seq, _) = KnnGraphBuilder::new(params).graph_k(4).build(&data);
        let (par, _) = ParallelKnnGraphBuilder::new(params).graph_k(4).build(&data);
        for i in 0..data.len() {
            prop_assert_eq!(
                seq.neighbors(i).ids().collect::<Vec<_>>(),
                par.neighbors(i).ids().collect::<Vec<_>>()
            );
        }
    }

    // ----------------------------------------------------- internal metrics
    #[test]
    fn ari_of_identical_partitions_is_one(rows in clustered_rows(), k in 2usize..8) {
        let data = VectorSet::from_rows(rows).unwrap();
        let labels: Vec<usize> = (0..data.len()).map(|i| i % k).collect();
        let ari = eval::adjusted_rand_index(&labels, &labels);
        prop_assert!((ari - 1.0).abs() < 1e-9);
    }

    #[test]
    fn davies_bouldin_is_non_negative(rows in clustered_rows(), k in 2usize..6) {
        let data = VectorSet::from_rows(rows).unwrap();
        let k = k.min(data.len());
        let labels: Vec<usize> = (0..data.len()).map(|i| i % k).collect();
        let mut centroids = VectorSet::zeros(k, data.dim()).unwrap();
        baselines::common::recompute_centroids(&data, &labels, &mut centroids);
        prop_assert!(eval::davies_bouldin(&data, &labels, &centroids) >= 0.0);
        let s = eval::sampled_silhouette(&data, &labels, 16, 3);
        prop_assert!((-1.0..=1.0).contains(&s));
    }
}

#[test]
fn nsw_graph_feeds_gkmeans_like_any_other_supplier() {
    // The integration the paper implies for third-party graphs: any
    // construction method can supply the graph for Alg. 2.
    let w = Workload::generate_with_n(PaperDataset::Sift100K, 2_000, 31);
    let nsw = nsw_build(&w.data, &NswParams::with_m(10).seed(5));
    let graph = truncate_to_k(&nsw, 10);
    let outcome = GkMeansPipeline::new(
        GkParams::default()
            .kappa(10)
            .iterations(8)
            .seed(5)
            .record_trace(false),
    )
    .cluster_with_graph(&w.data, 20, graph, std::time::Duration::ZERO);
    assert_eq!(outcome.clustering.k(), 20);
    let e = average_distortion(
        &w.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    assert!(e.is_finite() && e > 0.0);
}
