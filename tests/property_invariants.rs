//! Property-based tests (proptest) of the core data structures and the
//! algorithmic invariants the paper's algorithms rely on.

use proptest::prelude::*;

use gkm::prelude::*;
use gkmeans::two_means::TwoMeansTree;
use knn_graph::{KnnGraph, NeighborList};
use vecstore::distance::{dot, l2_sq, l2_sq_reference, norm_sq};

/// Strategy: a small dense dataset as (rows, dim).
fn dataset(max_n: usize, max_dim: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    (2usize..max_dim).prop_flat_map(move |dim| {
        proptest::collection::vec(
            proptest::collection::vec(-100.0f32..100.0, dim..=dim),
            4..max_n,
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------------------------------------------------------- vecstore
    #[test]
    fn l2_sq_matches_reference(a in proptest::collection::vec(-1e3f32..1e3, 0..64),
                               b in proptest::collection::vec(-1e3f32..1e3, 0..64)) {
        let n = a.len().min(b.len());
        let fast = l2_sq(&a[..n], &b[..n]);
        let slow = l2_sq_reference(&a[..n], &b[..n]);
        prop_assert!((fast - slow).abs() <= 1e-2 * slow.abs().max(1.0));
    }

    #[test]
    fn l2_sq_is_symmetric_and_non_negative(v in proptest::collection::vec(-50.0f32..50.0, 1..32),
                                           w in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let n = v.len().min(w.len());
        let d1 = l2_sq(&v[..n], &w[..n]);
        let d2 = l2_sq(&w[..n], &v[..n]);
        prop_assert!(d1 >= 0.0);
        prop_assert!((d1 - d2).abs() <= 1e-3 * d1.max(1.0));
    }

    #[test]
    fn norm_is_dot_with_self(v in proptest::collection::vec(-10.0f32..10.0, 0..48)) {
        prop_assert!((norm_sq(&v) - dot(&v, &v)).abs() < 1e-3);
    }

    #[test]
    fn fvecs_round_trip_preserves_data(rows in dataset(12, 8)) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let mut buf = Vec::new();
        vecstore::io::write_fvecs_to(&mut buf, &vs).unwrap();
        let back = vecstore::io::read_fvecs_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, vs);
    }

    #[test]
    fn native_round_trip_preserves_data(rows in dataset(12, 8)) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let mut buf = Vec::new();
        vecstore::io::write_native_to(&mut buf, &vs).unwrap();
        let back = vecstore::io::read_native_from(std::io::Cursor::new(buf)).unwrap();
        prop_assert_eq!(back, vs);
    }

    // --------------------------------------------------------------- knn-graph
    #[test]
    fn neighbor_list_is_always_sorted_bounded_and_deduped(
        cap in 1usize..8,
        inserts in proptest::collection::vec((0u32..32, 0.0f32..100.0), 0..64),
    ) {
        let mut list = NeighborList::with_capacity(cap);
        for (id, d) in inserts {
            list.insert(Neighbor::new(id, d));
        }
        prop_assert!(list.len() <= cap);
        let entries = list.as_slice();
        for w in entries.windows(2) {
            prop_assert!(w[0].dist <= w[1].dist);
        }
        let mut ids: Vec<u32> = list.ids().collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), list.len(), "duplicate ids retained");
    }

    #[test]
    fn exact_graph_lists_hold_the_true_nearest(rows in dataset(20, 6)) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = 3.min(vs.len() - 1).max(1);
        let graph = exact_graph(&vs, k);
        // For every sample, the first entry of its list must be a global
        // minimiser of the distance over all other samples.
        for i in 0..vs.len() {
            let Some(first) = graph.neighbors(i).as_slice().first() else { continue };
            let best = (0..vs.len())
                .filter(|&j| j != i)
                .map(|j| l2_sq(vs.row(i), vs.row(j)))
                .fold(f32::INFINITY, f32::min);
            prop_assert!((first.dist - best).abs() <= 1e-3 * best.max(1.0));
        }
    }

    #[test]
    fn graph_update_pair_never_breaks_invariants(
        n in 3usize..20,
        k in 1usize..5,
        edges in proptest::collection::vec((0usize..20, 0usize..20, 0.0f32..10.0), 0..64),
    ) {
        let mut g = KnnGraph::empty(n, k);
        for (i, j, d) in edges {
            if i < n && j < n {
                g.update_pair(i, j, d);
            }
        }
        for (i, list) in g.iter() {
            prop_assert!(list.len() <= k);
            prop_assert!(list.ids().all(|id| (id as usize) < n && id as usize != i));
        }
    }

    // ----------------------------------------------------------------- gkmeans
    #[test]
    fn delta_i_matches_objective_difference(rows in dataset(16, 5), seed in 0u64..1000) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = 3.min(vs.len());
        let labels: Vec<usize> = (0..vs.len()).map(|i| i % k).collect();
        let mut state = ClusterState::from_labels(&vs, labels, k);
        let i = (seed as usize) % vs.len();
        let v = (seed as usize / 7) % k;
        let delta = state.delta_move(i, vs.row(i), v);
        let before = state.objective();
        state.apply_move(i, vs.row(i), v);
        let after = state.objective();
        prop_assert!((delta - (after - before)).abs() <= 1e-4 * before.abs().max(1.0));
    }

    #[test]
    fn cluster_state_sizes_and_cache_stay_consistent(
        rows in dataset(16, 4),
        moves in proptest::collection::vec((0usize..16, 0usize..3), 0..32),
    ) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = 3.min(vs.len());
        let labels: Vec<usize> = (0..vs.len()).map(|i| i % k).collect();
        let mut state = ClusterState::from_labels(&vs, labels, k);
        for (i, v) in moves {
            let i = i % vs.len();
            let v = v % k;
            state.apply_move(i, vs.row(i), v);
        }
        let total: usize = (0..k).map(|r| state.size(r)).sum();
        prop_assert_eq!(total, vs.len());
        prop_assert!(state.norm_cache_drift() < 1e-6);
        prop_assert!(state.objective().is_finite());
    }

    #[test]
    fn two_means_tree_partitions_are_complete_and_balanced(rows in dataset(40, 5), k in 2usize..6) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = k.min(vs.len());
        let labels = TwoMeansTree::new(1).partition(&vs, k);
        prop_assert_eq!(labels.len(), vs.len());
        let mut sizes = vec![0usize; k];
        for &l in &labels {
            prop_assert!(l < k);
            sizes[l] += 1;
        }
        prop_assert!(sizes.iter().all(|&s| s >= 1));
        // equal-size adjustment: max/min ratio stays small
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max <= min.max(1) * 4, "sizes {:?}", sizes);
    }

    // --------------------------------------------------------------- baselines
    #[test]
    fn lloyd_distortion_never_increases_along_the_trace(rows in dataset(30, 4), k in 2usize..5) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = k.min(vs.len());
        let c = LloydKMeans::new(KMeansConfig::with_k(k).max_iters(6).seed(7)).fit(&vs);
        let trace: Vec<f64> = c.trace.iter().map(|t| t.distortion).collect();
        for w in trace.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-5);
        }
    }

    #[test]
    fn every_label_vector_is_a_partition(rows in dataset(24, 4), k in 2usize..5) {
        let vs = VectorSet::from_rows(rows).unwrap();
        let k = k.min(vs.len());
        let cfg = KMeansConfig::with_k(k).max_iters(4).seed(11).record_trace(false);
        for clustering in [
            LloydKMeans::new(cfg).fit(&vs),
            BoostKMeans::new(cfg).fit(&vs),
            ClosureKMeans::new(cfg).fit(&vs),
            BisectingKMeans::new(cfg).fit(&vs),
        ] {
            prop_assert_eq!(clustering.labels.len(), vs.len());
            prop_assert!(clustering.labels.iter().all(|&l| l < clustering.k()));
            prop_assert_eq!(clustering.cluster_sizes().iter().sum::<usize>(), vs.len());
        }
    }
}
