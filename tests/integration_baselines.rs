//! Cross-crate integration tests of the baseline k-means variants on the
//! synthetic paper workloads: every variant must produce a valid clustering,
//! and the qualitative relationships the paper reports must hold.

use gkm::prelude::*;

fn workload(n: usize, seed: u64) -> Workload {
    Workload::generate_with_n(PaperDataset::Sift100K, n, seed)
}

/// Runs one variant and returns (distortion, per-iteration distance evals).
fn run(name: &str, data: &VectorSet, k: usize, iters: usize, seed: u64) -> (f64, f64) {
    let cfg = KMeansConfig::with_k(k)
        .max_iters(iters)
        .seed(seed)
        .record_trace(false);
    let c: Clustering = match name {
        "lloyd" => LloydKMeans::new(cfg).fit(data),
        "lloyd++" => LloydKMeans::new(cfg)
            .with_seeding(Seeding::KMeansPlusPlus)
            .fit(data),
        "elkan" => ElkanKMeans::new(cfg).fit(data),
        "hamerly" => HamerlyKMeans::new(cfg).fit(data),
        "minibatch" => MiniBatchKMeans::new(cfg).batch_size(256).fit(data),
        "closure" => ClosureKMeans::new(cfg).fit(data),
        "bisecting" => BisectingKMeans::new(cfg).fit(data),
        "bkm" => BoostKMeans::new(cfg).fit(data),
        other => panic!("unknown variant {other}"),
    };
    assert_eq!(c.labels.len(), data.len(), "{name}: wrong label count");
    assert!(
        c.labels.iter().all(|&l| l < c.k()),
        "{name}: label out of range"
    );
    assert_eq!(
        c.cluster_sizes().iter().sum::<usize>(),
        data.len(),
        "{name}: sizes do not sum to n"
    );
    let e = average_distortion(data, &c.labels, &c.centroids);
    assert!(e.is_finite() && e >= 0.0, "{name}: bad distortion {e}");
    (e, c.distance_evals as f64 / c.iterations.max(1) as f64)
}

#[test]
fn every_baseline_produces_a_valid_clustering() {
    let w = workload(2_000, 1);
    for name in [
        "lloyd",
        "lloyd++",
        "elkan",
        "hamerly",
        "minibatch",
        "closure",
        "bisecting",
        "bkm",
    ] {
        let (e, _) = run(name, &w.data, 20, 8, 3);
        assert!(e > 0.0, "{name} reported zero distortion on noisy data");
    }
}

#[test]
fn exact_accelerations_match_lloyd_quality() {
    let w = workload(2_500, 5);
    let (lloyd_e, _) = run("lloyd", &w.data, 25, 12, 7);
    let (elkan_e, _) = run("elkan", &w.data, 25, 12, 7);
    let (hamerly_e, _) = run("hamerly", &w.data, 25, 12, 7);
    assert!(
        (elkan_e - lloyd_e).abs() <= 0.1 * lloyd_e,
        "elkan {elkan_e} vs lloyd {lloyd_e}"
    );
    assert!(
        (hamerly_e - lloyd_e).abs() <= 0.1 * lloyd_e,
        "hamerly {hamerly_e} vs lloyd {lloyd_e}"
    );
}

#[test]
fn boost_kmeans_reaches_lower_or_equal_distortion_than_lloyd() {
    // The Sec. 3.1 claim that motivates building GK-means on BKM.
    let w = workload(3_000, 9);
    let (lloyd_e, _) = run("lloyd", &w.data, 30, 15, 11);
    let (bkm_e, _) = run("bkm", &w.data, 30, 15, 11);
    assert!(
        bkm_e <= lloyd_e * 1.05,
        "BKM ({bkm_e}) should not be worse than Lloyd ({lloyd_e})"
    );
}

#[test]
fn minibatch_is_cheapest_but_lossiest() {
    // Fig. 7's qualitative finding.
    let w = workload(2_500, 13);
    let (lloyd_e, lloyd_cost) = run("lloyd", &w.data, 25, 10, 17);
    let (mb_e, mb_cost) = run("minibatch", &w.data, 25, 10, 17);
    assert!(
        mb_cost < lloyd_cost,
        "mini-batch must be cheaper per iteration"
    );
    assert!(
        mb_e >= lloyd_e * 0.95,
        "mini-batch should not beat full k-means on distortion (mb {mb_e} vs lloyd {lloyd_e})"
    );
}

#[test]
fn closure_kmeans_cost_is_sublinear_in_k() {
    // Fig. 6(b): closure k-means' per-iteration cost grows clearly sublinearly
    // in k (its candidate sets come from fixed-size neighbourhood groups),
    // whereas Lloyd's cost is linear in k.  k grows 8× here.
    let w = workload(2_500, 19);
    let (_, cost_small) = run("closure", &w.data, 16, 6, 23);
    let (_, cost_large) = run("closure", &w.data, 128, 6, 23);
    assert!(
        cost_large < cost_small * 6.5,
        "closure k-means per-iteration cost grew at least linearly: {cost_small} -> {cost_large}"
    );
    let (_, lloyd_small) = run("lloyd", &w.data, 16, 6, 23);
    let (_, lloyd_large) = run("lloyd", &w.data, 128, 6, 23);
    assert!(
        lloyd_large > lloyd_small * 6.5,
        "lloyd per-iteration cost must grow ~linearly with k: {lloyd_small} -> {lloyd_large}"
    );
    // and closure's growth factor must be clearly below Lloyd's
    let closure_growth = cost_large / cost_small;
    let lloyd_growth = lloyd_large / lloyd_small;
    assert!(
        closure_growth < lloyd_growth * 0.9,
        "closure growth {closure_growth:.2} vs lloyd growth {lloyd_growth:.2}"
    );
}

#[test]
fn seeding_strategies_are_all_usable_on_paper_workloads() {
    let w = workload(1_500, 29);
    for seeding in [
        Seeding::Random,
        Seeding::KMeansPlusPlus,
        Seeding::Parallel { rounds: 3 },
    ] {
        let c = LloydKMeans::new(
            KMeansConfig::with_k(15)
                .max_iters(5)
                .seed(31)
                .record_trace(false),
        )
        .with_seeding(seeding)
        .fit(&w.data);
        assert_eq!(c.k(), 15);
        assert!(c.non_empty_clusters() >= 14);
    }
}
