//! Visual-vocabulary construction: the large-`k` scenario that motivates the
//! paper (Sec. 1 cites vocabulary construction for image retrieval).
//!
//! Local descriptors are clustered into a large number of "visual words"; the
//! cluster count `k` is a significant fraction of `n`, which is exactly the
//! regime where traditional k-means becomes infeasible (Tab. 2 partitions 10M
//! descriptors into 1M clusters).  This example builds a vocabulary from a
//! SIFT-like workload and reports the quantisation quality.
//!
//! ```bash
//! cargo run --release --example visual_vocabulary
//! ```

use gkm::prelude::*;

fn main() {
    // Descriptor collection (SIFT-like, clustered).
    let n = 20_000;
    let workload = Workload::generate_with_n(PaperDataset::Sift1M, n, 7);

    // A vocabulary of n/20 visual words, mirroring the paper's regime where
    // the cluster count is a significant fraction of the collection size.
    let k = n / 20;
    println!("building a {k}-word visual vocabulary from {n} SIFT-like descriptors…");

    let params = GkParams::default()
        .kappa(20)
        .xi(50)
        .tau(5)
        .iterations(12)
        .seed(3)
        .record_trace(false);
    let outcome = GkMeansPipeline::new(params).cluster(&workload.data, k);

    let distortion = average_distortion(
        &workload.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    let sizes = outcome.clustering.cluster_sizes();
    let max_size = sizes.iter().copied().max().unwrap_or(0);
    let empty = sizes.iter().filter(|&&s| s == 0).count();
    println!("vocabulary built in {:?}", outcome.total_time());
    println!("  quantisation error (E)     : {distortion:.4}");
    println!("  non-empty visual words     : {}/{k}", k - empty);
    println!("  largest word occupancy     : {max_size}");
    println!(
        "  comparisons per descriptor  : {:.1} (vs {} for exhaustive assignment)",
        outcome.clustering.distance_evals as f64
            / (workload.data.len() * outcome.clustering.iterations) as f64,
        k
    );

    // Quantise a few held-out descriptors against the vocabulary using the
    // KNN graph the pipeline already built (Sec. 4.3: the graph doubles as an
    // ANN index).
    let queries = Workload::generate_with_n(PaperDataset::Sift1M, 100, 99).data;
    let searcher = GraphSearcher::new(
        &workload.data,
        &outcome.graph,
        SearchParams::default().ef(32).seed(5),
    );
    let mut assigned = 0usize;
    for q in queries.rows() {
        let hits = searcher.search(q, 1);
        if let Some(nearest) = hits.first() {
            let word = outcome.clustering.labels[nearest.id as usize];
            assigned += usize::from(word < k);
        }
    }
    println!("  held-out descriptors quantised via the graph: {assigned}/100");
}
