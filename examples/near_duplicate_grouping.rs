//! Near-duplicate grouping: the "large-scale image linking" scenario the
//! paper's introduction motivates (Sec. 1 cites web-scale photo hash
//! clustering).
//!
//! A collection of global image descriptors (VLAD-like) contains small bursts
//! of near-duplicates — re-posts, crops, re-encodes of the same photo — buried
//! among unrelated images.  Grouping them is a clustering problem where `k`
//! is enormous (most clusters should contain a single image, duplicates form
//! tiny clusters), which is exactly the regime where GK-means' independence
//! from `k` matters.
//!
//! The example plants synthetic duplicate bursts, clusters with GK-means at a
//! `k` close to the expected number of distinct photos, and measures how many
//! planted bursts end up intact inside a single cluster.
//!
//! ```bash
//! cargo run --release --example near_duplicate_grouping
//! ```

use gkm::prelude::*;
use rand::Rng;
use vecstore::sample::rng_from_seed;

/// Adds `bursts` groups of `copies` near-duplicates to the tail of `base`,
/// each a jittered copy of a randomly chosen base image.  Returns the new
/// collection and, for every burst, the indices of its members.
fn plant_duplicates(
    base: &VectorSet,
    bursts: usize,
    copies: usize,
    jitter: f32,
    seed: u64,
) -> (VectorSet, Vec<Vec<usize>>) {
    let mut rng = rng_from_seed(seed);
    let mut data = base.clone();
    let mut groups = Vec::with_capacity(bursts);
    for _ in 0..bursts {
        let original = rng.gen_range(0..base.len());
        let mut members = vec![original];
        for _ in 0..copies {
            let mut row = base.row(original).to_vec();
            for v in &mut row {
                *v += rng.gen_range(-jitter..jitter);
            }
            members.push(data.len());
            data.push_row(&row).expect("same dimensionality");
        }
        groups.push(members);
    }
    (data, groups)
}

fn main() {
    // A photo collection of VLAD-like global descriptors.
    let distinct = 6_000;
    let workload = Workload::generate_with_n(PaperDataset::Vlad10M, distinct, 11);
    println!(
        "collection: {distinct} distinct VLAD-like descriptors (dim {})",
        workload.data.dim()
    );

    // Plant 150 duplicate bursts of 4 copies each.
    let (data, bursts) = plant_duplicates(&workload.data, 150, 4, 0.01, 13);
    println!(
        "planted {} near-duplicate bursts ({} images total)",
        bursts.len(),
        data.len()
    );

    // Cluster with k close to the number of distinct photos.  At this k a
    // Lloyd iteration would need n·k ≈ {15k × 5k} distance evaluations; the
    // graph-guided iteration needs n·κ.
    let k = distinct / 3;
    let params = GkParams::default()
        .kappa(12)
        .xi(40)
        .tau(5)
        .iterations(8)
        .seed(17)
        .record_trace(false);
    let outcome = GkMeansPipeline::new(params).cluster(&data, k);
    println!(
        "clustered into {k} groups in {:?} ({:.1} comparisons per image per iteration)",
        outcome.total_time(),
        outcome.clustering.distance_evals as f64
            / (data.len() * outcome.clustering.iterations.max(1)) as f64
    );

    // How many planted bursts stayed together?
    let labels = &outcome.clustering.labels;
    let mut intact = 0usize;
    let mut split = 0usize;
    for members in &bursts {
        let first = labels[members[0]];
        if members.iter().all(|&m| labels[m] == first) {
            intact += 1;
        } else {
            split += 1;
        }
    }
    println!(
        "duplicate bursts kept in one cluster: {intact}/{}",
        bursts.len()
    );
    println!("duplicate bursts split across clusters: {split}");

    // A random grouping of the same data would almost never keep a burst
    // together; report that baseline for contrast.
    let random_prob = (1.0 / k as f64).powi(4);
    println!(
        "(probability a 5-image burst stays together under random assignment: {:.2e})",
        random_prob
    );

    assert!(
        intact * 2 > bursts.len(),
        "expected most planted bursts to be grouped, got {intact}/{}",
        bursts.len()
    );
}
