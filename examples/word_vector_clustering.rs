//! Word-vector clustering: the Glove1M scenario (Tab. 1, Fig. 5(c)/(d)).
//!
//! Clusters GloVe-like word embeddings and compares the quality/efficiency
//! trade-off of GK-means against boost k-means, closure k-means and
//! Mini-Batch — a miniature of the paper's Fig. 5 study on one dataset.
//!
//! ```bash
//! cargo run --release --example word_vector_clustering
//! ```

use gkm::prelude::*;

fn main() {
    let n = 8_000;
    let k = 80;
    let iterations = 12;
    let workload = Workload::generate_with_n(PaperDataset::Glove1M, n, 11);
    println!(
        "clustering {n} GloVe-like word vectors ({}d) into {k} groups",
        workload.data.dim()
    );

    let mut table = Table::new(
        "Fig. 5-style comparison (Glove-like)",
        &["method", "E", "time", "comparisons"],
    );

    // GK-means (graph built by Alg. 3).
    let outcome = GkMeansPipeline::new(
        GkParams::default()
            .kappa(20)
            .xi(40)
            .tau(5)
            .iterations(iterations)
            .seed(2)
            .record_trace(false),
    )
    .cluster(&workload.data, k);
    table.row(&[
        "GK-means".into(),
        format!(
            "{:.4}",
            average_distortion(
                &workload.data,
                &outcome.clustering.labels,
                &outcome.clustering.centroids
            )
        ),
        format!("{:.2?}", outcome.total_time()),
        outcome.clustering.distance_evals.to_string(),
    ]);

    // Boost k-means (quality reference).
    let bkm = BoostKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(2)
            .record_trace(false),
    )
    .fit(&workload.data);
    table.row(&[
        "boost k-means".into(),
        format!(
            "{:.4}",
            average_distortion(&workload.data, &bkm.labels, &bkm.centroids)
        ),
        format!("{:.2?}", bkm.total_time()),
        bkm.distance_evals.to_string(),
    ]);

    // Closure k-means (the strongest prior fast baseline).
    let closure = ClosureKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(2)
            .record_trace(false),
    )
    .fit(&workload.data);
    table.row(&[
        "closure k-means".into(),
        format!(
            "{:.4}",
            average_distortion(&workload.data, &closure.labels, &closure.centroids)
        ),
        format!("{:.2?}", closure.total_time()),
        closure.distance_evals.to_string(),
    ]);

    // Mini-Batch (fast but lossy).
    let minibatch = MiniBatchKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(2)
            .record_trace(false),
    )
    .batch_size(512)
    .fit(&workload.data);
    table.row(&[
        "Mini-Batch".into(),
        format!(
            "{:.4}",
            average_distortion(&workload.data, &minibatch.labels, &minibatch.centroids)
        ),
        format!("{:.2?}", minibatch.total_time()),
        minibatch.distance_evals.to_string(),
    ]);

    // Traditional k-means.
    let lloyd = LloydKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(iterations)
            .seed(2)
            .record_trace(false),
    )
    .fit(&workload.data);
    table.row(&[
        "k-means".into(),
        format!(
            "{:.4}",
            average_distortion(&workload.data, &lloyd.labels, &lloyd.centroids)
        ),
        format!("{:.2?}", lloyd.total_time()),
        lloyd.distance_evals.to_string(),
    ]);

    print!("{}", table.render());
}
