//! Scalability demo: how the clustering cost grows with the cluster count
//! `k` — a miniature of Fig. 6(b).
//!
//! Traditional k-means and boost k-means scale linearly with `k`; GK-means and
//! closure k-means stay nearly flat because each sample is only compared to a
//! candidate set that does not grow with `k`.
//!
//! ```bash
//! cargo run --release --example scalability_demo
//! ```

use gkm::prelude::*;

fn main() {
    let n = 10_000;
    let iterations = 10;
    let workload = Workload::generate_with_n(PaperDataset::Vlad10M, n, 5);
    println!(
        "scalability in k on {n} VLAD-like vectors ({}d), {iterations} iterations",
        workload.data.dim()
    );

    let mut table = Table::new(
        "Fig. 6(b)-style sweep: time vs cluster count",
        &["k", "GK-means", "closure", "k-means", "BKM", "Mini-Batch"],
    );

    for k in [64usize, 128, 256, 512] {
        let gk = GkMeansPipeline::new(
            GkParams::default()
                .kappa(20)
                .xi(50)
                .tau(4)
                .iterations(iterations)
                .seed(1)
                .record_trace(false),
        )
        .cluster(&workload.data, k);

        let closure = ClosureKMeans::new(
            KMeansConfig::with_k(k)
                .max_iters(iterations)
                .seed(1)
                .record_trace(false),
        )
        .fit(&workload.data);

        let lloyd = LloydKMeans::new(
            KMeansConfig::with_k(k)
                .max_iters(iterations)
                .seed(1)
                .record_trace(false),
        )
        .fit(&workload.data);

        let bkm = BoostKMeans::new(
            KMeansConfig::with_k(k)
                .max_iters(iterations)
                .seed(1)
                .record_trace(false),
        )
        .fit(&workload.data);

        let minibatch = MiniBatchKMeans::new(
            KMeansConfig::with_k(k)
                .max_iters(iterations)
                .seed(1)
                .record_trace(false),
        )
        .batch_size(512)
        .fit(&workload.data);

        table.row(&[
            k.to_string(),
            format!("{:.2?}", gk.total_time()),
            format!("{:.2?}", closure.total_time()),
            format!("{:.2?}", lloyd.total_time()),
            format!("{:.2?}", bkm.total_time()),
            format!("{:.2?}", minibatch.total_time()),
        ]);
    }
    print!("{}", table.render());
    println!("(expected shape: the first two columns stay nearly flat as k doubles;");
    println!(" the k-means/BKM columns roughly double with k — Fig. 6(b).)");
}
