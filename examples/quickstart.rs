//! Quickstart: cluster a synthetic SIFT-like workload with GK-means and
//! compare the result against plain Lloyd k-means.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use gkm::prelude::*;

fn main() {
    // 1. Generate a small SIFT-like workload (stand-in for SIFT100K, see
    //    DESIGN.md §2 for the substitution rationale).
    let n = 10_000;
    let workload = Workload::generate_with_n(PaperDataset::Sift100K, n, 42);
    println!(
        "dataset: {} samples x {} dims ({} latent groups)",
        workload.data.len(),
        workload.data.dim(),
        workload.spec.components
    );

    let k = 100;

    // 2. GK-means: build the KNN graph with Alg. 3, then cluster with Alg. 2.
    let params = GkParams::default()
        .kappa(20)
        .xi(50)
        .tau(5)
        .iterations(15)
        .seed(1);
    let outcome = GkMeansPipeline::new(params).cluster(&workload.data, k);
    let gk_distortion = average_distortion(
        &workload.data,
        &outcome.clustering.labels,
        &outcome.clustering.centroids,
    );
    println!(
        "GK-means : E = {:.4}   graph {:.2?} + init {:.2?} + iter {:.2?}   candidate checks {}",
        gk_distortion,
        outcome.graph_time,
        outcome.clustering.init_time,
        outcome.clustering.iter_time,
        outcome.clustering.distance_evals
    );

    // 3. Traditional k-means on the same data for comparison.
    let lloyd = LloydKMeans::new(
        KMeansConfig::with_k(k)
            .max_iters(15)
            .seed(1)
            .record_trace(false),
    )
    .fit(&workload.data);
    let lloyd_distortion = average_distortion(&workload.data, &lloyd.labels, &lloyd.centroids);
    println!(
        "k-means  : E = {:.4}   init {:.2?} + iter {:.2?}   distance evals {}",
        lloyd_distortion, lloyd.init_time, lloyd.iter_time, lloyd.distance_evals
    );

    let speedup = lloyd.distance_evals as f64 / outcome.clustering.distance_evals.max(1) as f64;
    println!(
        "GK-means used {speedup:.1}x fewer sample-to-cluster comparisons at {:.1}% relative distortion",
        100.0 * gk_distortion / lloyd_distortion
    );
}
