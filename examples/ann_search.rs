//! ANN search with the Alg. 3 graph (the Sec. 4.3 claim).
//!
//! Builds the KNN graph with the paper's construction algorithm and with
//! NN-Descent, then measures recall@10 and query throughput of greedy graph
//! search over both — showing that the cheap clustering-driven graph is a
//! usable ANN index.
//!
//! ```bash
//! cargo run --release --example ann_search
//! ```

use gkm::prelude::*;
use std::time::Instant;

fn main() {
    let n = 15_000;
    let queries_n = 200;
    let workload = Workload::generate_with_n(PaperDataset::Sift1M, n + queries_n, 23);
    let (base, queries) = workload.data.split_at(n).expect("split");
    println!("ANN search on {n} SIFT-like base vectors, {queries_n} queries, recall@10");

    println!("computing exact ground truth (brute force, evaluation only)…");
    let ground_truth = exact_ground_truth(&base, &queries, 10);

    // Graph from the paper's Alg. 3.
    let t = Instant::now();
    let (gk_graph, _) = KnnGraphBuilder::new(
        GkParams::default()
            .kappa(20)
            .xi(50)
            .tau(8)
            .seed(3)
            .record_trace(false),
    )
    .graph_k(20)
    .build(&base);
    let gk_build = t.elapsed();

    // Graph from NN-Descent (the KGraph baseline).
    let t = Instant::now();
    let nnd_graph = nn_descent(
        &base,
        &NnDescentParams {
            k: 20,
            seed: 3,
            ..Default::default()
        },
    );
    let nnd_build = t.elapsed();

    let mut table = Table::new(
        "graph-based ANN search (recall@10)",
        &[
            "graph",
            "build",
            "ef",
            "recall",
            "avg ms/query",
            "dist evals/query",
        ],
    );
    for (name, graph, build) in [
        ("Alg.3 (GK-means)", &gk_graph, gk_build),
        ("NN-Descent", &nnd_graph, nnd_build),
    ] {
        for ef in [16usize, 64, 128] {
            let report = evaluate_anns(
                &base,
                graph,
                &queries,
                &ground_truth,
                10,
                SearchParams::default().ef(ef).entry_points(16).seed(9),
            );
            table.row(&[
                name.into(),
                format!("{build:.2?}"),
                ef.to_string(),
                format!("{:.3}", report.stats.recall),
                format!("{:.3}", report.stats.avg_query_ms),
                format!("{:.0}", report.stats.avg_distance_evals),
            ]);
        }
    }
    print!("{}", table.render());
}
